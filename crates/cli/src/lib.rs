//! # rlcut-cli — command-line driver
//!
//! ```text
//! rlcut info      <edge-list>
//! rlcut partition <edge-list> --out <plan> [options]
//! rlcut evaluate  <edge-list> --plan <plan> [options]
//! rlcut serve     <durable-dir> [--lookups N] [options]
//! ```
//!
//! Works on plain SNAP/LAW-style edge lists. `partition` geo-distributes
//! the graph over the 8-region EC2 environment (or a uniform `--dcs N`
//! one), runs the chosen method, prints the objective, and persists the
//! master assignment with `geopart::plan_io`. `evaluate` re-loads a plan
//! and scores it, so plans can be compared across runs and methods.
//! `serve` boots the placement-serving daemon from a durable directory
//! written by `partition --durable-dir` — no retraining — and answers a
//! batch of routing lookups against the recovered plan.
//!
//! Logic lives here (string-in/string-out) so it is unit-testable; the
//! binary in `main.rs` is a thin shell.

use std::path::PathBuf;
use std::time::Duration;

use geobase::ginger::GingerConfig;
use geograph::locality::LocalityConfig;
use geograph::GeoGraph;
use geopart::{HybridState, TrafficProfile};
use geosim::{CloudEnv, Datacenter};
use rlcut::RlCutConfig;

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    Info { graph: PathBuf },
    Partition { graph: PathBuf, out: Option<PathBuf>, options: Options },
    Evaluate { graph: PathBuf, plan: PathBuf, options: Options },
    Serve { store: PathBuf, lookups: u64, options: Options },
}

/// Options shared by `partition` and `evaluate`.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Partitioning method (partition only).
    pub method: Method,
    /// Custom environment file (overrides --dcs and the EC2 preset).
    pub env_file: Option<PathBuf>,
    /// Number of DCs; 0 = the 8-region EC2 preset.
    pub dcs: usize,
    /// Budget as a fraction of the centralization cost.
    pub budget_frac: f64,
    /// Required optimization overhead in milliseconds (0 = unconstrained).
    pub topt_ms: u64,
    pub threads: usize,
    pub seed: u64,
    /// WAL + snapshot directory (partition with rlcut only): first run
    /// creates it, later runs recover the pipeline and train another
    /// window on top of it.
    pub durable_dir: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            method: Method::RlCut,
            env_file: None,
            dcs: 0,
            budget_frac: 0.4,
            topt_ms: 0,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            seed: 42,
            durable_dir: None,
        }
    }
}

/// Supported partitioning methods.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    RlCut,
    Ginger,
    HashPl,
    Natural,
}

impl Method {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "rlcut" => Ok(Method::RlCut),
            "ginger" => Ok(Method::Ginger),
            "hashpl" => Ok(Method::HashPl),
            "natural" => Ok(Method::Natural),
            other => Err(format!("unknown method {other:?} (rlcut|ginger|hashpl|natural)")),
        }
    }
}

pub const USAGE: &str = "\
usage:
  rlcut info      <edge-list>
  rlcut partition <edge-list> [--out plan.txt] [--method rlcut|ginger|hashpl|natural]
                  [--dcs N | --env dcs.txt] [--budget-frac F] [--topt-ms N]
                  [--threads N] [--seed N] [--durable-dir DIR]
  rlcut evaluate  <edge-list> --plan plan.txt [--dcs N | --env dcs.txt] [--seed N]
  rlcut serve     <durable-dir> [--lookups N] [--dcs N | --env dcs.txt]";

/// Parses the argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut iter = args.iter();
    let sub = iter.next().ok_or_else(|| USAGE.to_string())?;
    let graph = PathBuf::from(iter.next().ok_or("missing <edge-list> argument")?.clone());
    let mut out = None;
    let mut plan = None;
    let mut lookups = 100_000u64;
    let mut options = Options::default();
    while let Some(flag) = iter.next() {
        let mut value = || -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--out" => out = Some(PathBuf::from(value()?.clone())),
            "--plan" => plan = Some(PathBuf::from(value()?.clone())),
            "--method" => options.method = Method::parse(value()?)?,
            "--dcs" => options.dcs = value()?.parse().map_err(|e| format!("--dcs: {e}"))?,
            "--env" => options.env_file = Some(PathBuf::from(value()?.clone())),
            "--budget-frac" => {
                options.budget_frac = value()?.parse().map_err(|e| format!("--budget-frac: {e}"))?
            }
            "--topt-ms" => {
                options.topt_ms = value()?.parse().map_err(|e| format!("--topt-ms: {e}"))?
            }
            "--threads" => {
                options.threads = value()?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--seed" => options.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--durable-dir" => options.durable_dir = Some(PathBuf::from(value()?.clone())),
            "--lookups" => lookups = value()?.parse().map_err(|e| format!("--lookups: {e}"))?,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    match sub.as_str() {
        "info" => Ok(Command::Info { graph }),
        "partition" => Ok(Command::Partition { graph, out, options }),
        "evaluate" => {
            let plan = plan.ok_or("evaluate needs --plan <file>")?;
            Ok(Command::Evaluate { graph, plan, options })
        }
        "serve" => Ok(Command::Serve { store: graph, lookups, options }),
        other => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

fn build_env(options: &Options) -> Result<CloudEnv, String> {
    if let Some(path) = &options.env_file {
        return geosim::env_io::read_env(path).map_err(|e| format!("{}: {e}", path.display()));
    }
    // The plan machinery's replica sets are u64 bitmasks: --dcs past that
    // limit must be a CLI error, not the CloudEnv constructor's assert.
    if options.dcs > geograph::MAX_DCS {
        return Err(format!(
            "--dcs {} exceeds the supported maximum of {}",
            options.dcs,
            geograph::MAX_DCS
        ));
    }
    Ok(if options.dcs == 0 {
        geosim::regions::ec2_eight_regions()
    } else {
        CloudEnv::new(
            (0..options.dcs)
                .map(|i| Datacenter::from_gb_units(&format!("dc{i}"), 0.5, 2.5, 0.10))
                .collect(),
        )
    })
}

fn load_geo(path: &std::path::Path, env: &CloudEnv, seed: u64) -> Result<GeoGraph, String> {
    let graph = geograph::io::read_edge_list(path).map_err(|e| e.to_string())?;
    let mut locality = LocalityConfig::paper_default(seed);
    if env.num_dcs() != 8 {
        locality = LocalityConfig::uniform(env.num_dcs(), seed);
    }
    Ok(GeoGraph::from_graph(graph, &locality))
}

/// Runs a command, returning the report text.
pub fn run(command: Command) -> Result<String, String> {
    match command {
        Command::Info { graph } => {
            let g = geograph::io::read_edge_list(&graph).map_err(|e| e.to_string())?;
            let stats = geograph::degree::DegreeStats::compute(&g);
            let theta = geograph::degree::suggest_theta(&g, 0.05);
            Ok(format!(
                "graph      : {:?}\nvertices   : {}\nedges      : {}\nmax in/out : {} / {}\n\
                 mean in    : {:.2}\np99 in     : {}\ntop-1% edge share: {:.1}%\n\
                 suggested θ (5% high-degree): {theta}",
                graph,
                g.num_vertices(),
                g.num_edges(),
                stats.max_in,
                stats.max_out,
                stats.mean_in,
                stats.p99_in,
                stats.top1pct_edge_share * 100.0,
            ))
        }
        Command::Partition { graph, out, options } => {
            if options.durable_dir.is_some() && options.method != Method::RlCut {
                return Err("--durable-dir requires --method rlcut".to_string());
            }
            let env = build_env(&options)?;
            let geo = load_geo(&graph, &env, options.seed)?;
            let budget = geosim::cost::default_budget(
                &env,
                &geo.locations,
                &geo.data_sizes,
                options.budget_frac,
            );
            let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
            let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            let start = std::time::Instant::now();
            let mut durable_note: Option<String> = None;
            let masters: Vec<geograph::DcId> = match options.method {
                Method::Natural => geo.locations.clone(),
                Method::HashPl => {
                    geobase::hashpl(&geo, &env, theta, profile.clone(), 10.0, options.seed)
                        .core()
                        .masters()
                        .to_vec()
                }
                Method::Ginger => geobase::ginger(
                    &geo,
                    &env,
                    GingerConfig::new(theta, options.seed),
                    profile.clone(),
                    10.0,
                )
                .core()
                .masters()
                .to_vec(),
                Method::RlCut => {
                    let mut config = RlCutConfig::new(budget)
                        .with_seed(options.seed)
                        .with_threads(options.threads);
                    if options.topt_ms > 0 {
                        config = config.with_t_opt(Duration::from_millis(options.topt_ms));
                    }
                    if let Some(dir) = &options.durable_dir {
                        let (masters, note) =
                            durable_partition(dir, &geo, &env, config, &options, profile.clone())?;
                        durable_note = Some(note);
                        masters
                    } else {
                        rlcut::partition(&geo, &env, profile.clone(), 10.0, &config)
                            .state
                            .core()
                            .masters()
                            .to_vec()
                    }
                }
            };
            let overhead = start.elapsed();
            // Methods produce the masters, but the final scoring state is
            // still built from them — keep any defect (a baseline emitting
            // an out-of-range DC) a typed error rather than a panic.
            let state = HybridState::try_from_masters(&geo, &env, masters, theta, profile, 10.0)
                .map_err(|e| format!("{:?} produced an invalid plan: {e}", options.method))?;
            let obj = state.objective(&env);
            let mut report = format!(
                "method        : {:?}\nvertices/edges: {} / {}\nDCs           : {}\n\
                 transfer time : {:.6e} s/iteration\ntotal cost    : ${:.6} (budget ${budget:.6}, {})\n\
                 replication λ : {:.2}\noverhead      : {:?}",
                options.method,
                geo.num_vertices(),
                geo.num_edges(),
                env.num_dcs(),
                obj.transfer_time,
                obj.total_cost(),
                if obj.total_cost() <= budget { "OK" } else { "EXCEEDED" },
                state.core().replication_factor(),
                overhead,
            );
            if let Some(note) = durable_note {
                report.push_str(&format!("\ndurable dir   : {note}"));
            }
            if let Some(path) = out {
                geopart::plan_io::save_assignment(state.core().masters(), &path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                report.push_str(&format!("\nplan written  : {path:?}"));
            }
            Ok(report)
        }
        Command::Evaluate { graph, plan, options } => {
            let env = build_env(&options)?;
            let geo = load_geo(&graph, &env, options.seed)?;
            // The checked loader validates length and every DC id against
            // the environment, naming file and line; try_from_masters keeps
            // any remaining plan defect a typed error rather than a panic.
            let masters =
                geopart::plan_io::load_assignment_for(&plan, geo.num_vertices(), env.num_dcs())
                    .map_err(|e| format!("{}: {e}", plan.display()))?;
            let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
            let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            let state = HybridState::try_from_masters(&geo, &env, masters, theta, profile, 10.0)
                .map_err(|e| format!("{}: {e}", plan.display()))?;
            let obj = state.objective(&env);
            let algo = geoengine::Algorithm::pagerank();
            let report = geoengine::execute_plan(&geo, &env, state.core(), None, &algo);
            Ok(format!(
                "plan          : {plan:?}\ntransfer time : {:.6e} s/iteration (static model)\n\
                 PR execution  : {:.6e} s total over {} iterations\nmovement cost : ${:.6}\n\
                 runtime cost  : ${:.6}\nreplication λ : {:.2}\nWAN/iteration : {:.1} KB",
                obj.transfer_time,
                report.transfer_time,
                report.iterations,
                obj.movement_cost,
                obj.runtime_cost,
                state.core().replication_factor(),
                state.core().wan_bytes_per_iteration() / 1024.0,
            ))
        }
        Command::Serve { store, lookups, options } => {
            let env = build_env(&options)?;
            let (server, boot) = geoserve::PlacementServer::boot_from_store(&store, &env)
                .map_err(|e| format!("{}: {e}", store.display()))?;
            let mut reader = server.reader();
            let n = {
                let guard = reader.pin();
                if guard.num_vertices() == 0 {
                    return Err(format!("{}: recovered an empty graph", store.display()));
                }
                guard.num_vertices() as u64
            };
            // A deterministic full-period probe stream (Weyl sequence), so
            // repeated invocations route the identical lookups.
            let mut out = Vec::new();
            let mut per_dc = vec![0u64; env.num_dcs()];
            let batch_size = 1024;
            let mut batch: Vec<geograph::VertexId> = Vec::with_capacity(batch_size);
            let start = std::time::Instant::now();
            let mut served = 0u64;
            while served < lookups {
                batch.clear();
                let take = batch_size.min((lookups - served) as usize);
                for i in 0..take as u64 {
                    batch.push((((served + i).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % n) as u32);
                }
                reader.lookup_many(&batch, &mut out);
                for &m in &out {
                    per_dc[m as usize] += 1;
                }
                served += take as u64;
            }
            let elapsed = start.elapsed();
            let rate = served as f64 / elapsed.as_secs_f64().max(1e-9);
            let dist = per_dc
                .iter()
                .enumerate()
                .map(|(d, &c)| format!("{d}:{:.1}%", 100.0 * c as f64 / served.max(1) as f64))
                .collect::<Vec<_>>()
                .join(" ");
            Ok(format!(
                "store         : {}\nserved window : {} ({} replayed{})\nmasters fnv   : {:#018x}\n\
                 epoch         : {}\nlookups       : {served} ({rate:.0}/s)\nmaster mix    : {dist}",
                store.display(),
                boot.window,
                boot.replayed_windows,
                if boot.rolled_back { ", uncommitted tail ignored" } else { "" },
                boot.masters_fnv,
                server.published_epoch(),
            ))
        }
    }
}

/// Runs the partition as one committed window of the durable pipeline.
/// A fresh directory is created at genesis; an existing one is recovered
/// (rolling back any uncommitted tail) and trained one window further, so
/// repeated invocations against the same directory keep refining the same
/// crash-safe placement.
fn durable_partition(
    dir: &std::path::Path,
    geo: &GeoGraph,
    env: &CloudEnv,
    config: RlCutConfig,
    options: &Options,
    profile: TrafficProfile,
) -> Result<(Vec<geograph::DcId>, String), String> {
    let t_opt = if options.topt_ms > 0 {
        Duration::from_millis(options.topt_ms)
    } else {
        Duration::from_secs(60)
    };
    let (mut durable, provenance) = if dir.join("wal").is_dir() {
        let (d, summary) =
            rlcut::DurableAdaptive::recover(dir, config, Some(options.budget_frac), env, 1)
                .map_err(|e| format!("{}: recovery failed: {e}", dir.display()))?;
        if d.geo().num_vertices() != geo.num_vertices() {
            return Err(format!(
                "{}: durable state holds {} vertices but the graph has {}",
                dir.display(),
                d.geo().num_vertices(),
                geo.num_vertices()
            ));
        }
        let note = format!(
            "recovered at window {} ({} replayed{})",
            summary.next_window,
            summary.replayed_windows,
            if summary.rolled_back { ", tail rolled back" } else { "" }
        );
        (d, note)
    } else {
        let d = rlcut::DurableAdaptive::create(
            dir,
            config,
            Some(options.budget_frac),
            geo.clone(),
            env,
            1,
        )
        .map_err(|e| format!("{}: {e}", dir.display()))?;
        (d, "created".to_string())
    };
    durable
        .window(env, None, &[], &[], profile, 10.0, t_opt)
        .map_err(|e| format!("{}: {e}", dir.display()))?;
    let committed = durable.next_window() - 1;
    let (core, _) = durable
        .inner()
        .carried_parts()
        .ok_or_else(|| format!("{}: committed window carried no state", dir.display()))?;
    let note = format!("{} ({provenance}; window {committed} committed)", dir.display());
    Ok((core.masters().to_vec(), note))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_info() {
        let cmd = parse_args(&args(&["info", "g.txt"])).unwrap();
        assert_eq!(cmd, Command::Info { graph: PathBuf::from("g.txt") });
    }

    #[test]
    fn parse_partition_with_flags() {
        let cmd = parse_args(&args(&[
            "partition",
            "g.txt",
            "--out",
            "p.txt",
            "--method",
            "ginger",
            "--dcs",
            "4",
            "--budget-frac",
            "0.2",
            "--threads",
            "2",
            "--seed",
            "7",
        ]))
        .unwrap();
        let Command::Partition { graph, out, options } = cmd else { panic!() };
        assert_eq!(graph, PathBuf::from("g.txt"));
        assert_eq!(out, Some(PathBuf::from("p.txt")));
        assert_eq!(options.method, Method::Ginger);
        assert_eq!(options.dcs, 4);
        assert_eq!(options.budget_frac, 0.2);
        assert_eq!(options.threads, 2);
        assert_eq!(options.seed, 7);
    }

    #[test]
    fn parse_durable_dir() {
        let cmd = parse_args(&args(&["partition", "g.txt", "--durable-dir", "state.d"])).unwrap();
        let Command::Partition { options, .. } = cmd else { panic!() };
        assert_eq!(options.durable_dir, Some(PathBuf::from("state.d")));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["bogus", "g.txt"])).is_err());
        assert!(parse_args(&args(&["evaluate", "g.txt"])).is_err(), "evaluate needs --plan");
        assert!(parse_args(&args(&["partition", "g.txt", "--method", "magic"])).is_err());
        assert!(parse_args(&args(&["partition", "g.txt", "--seed"])).is_err());
    }

    #[test]
    fn file_errors_name_the_offending_file() {
        let err = run(Command::Info { graph: PathBuf::from("/no/such/graph.txt") }).unwrap_err();
        assert!(err.contains("graph.txt"), "error must name the file: {err}");

        let dir = std::env::temp_dir().join("rlcut_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let env_path = dir.join("bad_env.txt");
        std::fs::write(&env_path, "us-east NaN 2.5 0.1\n").unwrap();
        let options = Options { env_file: Some(env_path), ..Options::default() };
        let err =
            run(Command::Partition { graph: PathBuf::from("unused.txt"), out: None, options })
                .unwrap_err();
        assert!(err.contains("bad_env.txt") && err.contains("line 1"), "{err}");
    }

    #[test]
    fn oversized_dcs_is_a_typed_error() {
        // --dcs past the bitmask replica-set limit must come back through
        // the CLI error plumbing, not the CloudEnv constructor's assert.
        let options = Options { dcs: geograph::MAX_DCS + 1, ..Options::default() };
        let err =
            run(Command::Partition { graph: PathBuf::from("unused.txt"), out: None, options })
                .unwrap_err();
        assert!(err.contains("--dcs") && err.contains("64"), "{err}");
    }

    fn demo_graph_file(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rlcut_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let g = geograph::generators::erdos_renyi(300, 2400, 3);
        geograph::io::write_edge_list(&g, &path).unwrap();
        path
    }

    #[test]
    fn info_runs() {
        let path = demo_graph_file("info.txt");
        let report = run(Command::Info { graph: path }).unwrap();
        assert!(report.contains("vertices   : 300"));
        assert!(report.contains("suggested θ"));
    }

    #[test]
    fn partition_and_evaluate_round_trip() {
        let graph = demo_graph_file("pipeline.txt");
        let plan = std::env::temp_dir().join("rlcut_cli_tests/pipeline.plan");
        let mut options = Options { topt_ms: 100, threads: 2, ..Default::default() };
        options.method = Method::RlCut;
        let report = run(Command::Partition {
            graph: graph.clone(),
            out: Some(plan.clone()),
            options: options.clone(),
        })
        .unwrap();
        assert!(report.contains("OK"), "partition over budget?\n{report}");
        let eval = run(Command::Evaluate { graph, plan, options }).unwrap();
        assert!(eval.contains("replication λ"));
        assert!(eval.contains("PR execution"));
    }

    #[test]
    fn evaluate_rejects_mismatched_plan() {
        let graph = demo_graph_file("mismatch.txt");
        let plan = std::env::temp_dir().join("rlcut_cli_tests/short.plan");
        geopart::plan_io::save_assignment(&[0, 1, 2], &plan).unwrap();
        let err = run(Command::Evaluate { graph, plan, options: Options::default() }).unwrap_err();
        assert!(
            err.contains("short.plan") && err.contains("3 entries") && err.contains("300"),
            "{err}"
        );
    }

    #[test]
    fn evaluate_rejects_out_of_range_dc_naming_file_and_line() {
        let graph = demo_graph_file("badplan_graph.txt");
        let plan = std::env::temp_dir().join("rlcut_cli_tests/badplan.plan");
        // 300 masters for the 300-vertex demo graph, one of them (vertex 7,
        // file line 9 behind the header) outside the default 8-DC env.
        let mut masters = vec![0 as geopart::DcId; 300];
        masters[7] = 9;
        geopart::plan_io::save_assignment(&masters, &plan).unwrap();
        let err = run(Command::Evaluate { graph, plan, options: Options::default() }).unwrap_err();
        assert!(
            err.contains("badplan.plan") && err.contains("line 9") && err.contains("DC id 9"),
            "{err}"
        );
    }

    #[test]
    fn durable_partition_creates_then_recovers() {
        let graph = demo_graph_file("durable.txt");
        let dir = std::env::temp_dir().join("rlcut_cli_tests/durable_state.d");
        let _ = std::fs::remove_dir_all(&dir);
        let options = Options {
            topt_ms: 100,
            threads: 2,
            durable_dir: Some(dir.clone()),
            ..Default::default()
        };

        // First invocation: genesis + window 0 committed to the WAL.
        let report =
            run(Command::Partition { graph: graph.clone(), out: None, options: options.clone() })
                .unwrap();
        assert!(report.contains("created; window 0 committed"), "{report}");
        assert!(dir.join("wal").is_dir(), "first run must leave a WAL behind");

        // Second invocation recovers the pipeline and trains window 1.
        let report =
            run(Command::Partition { graph, out: None, options: options.clone() }).unwrap();
        assert!(report.contains("recovered at window 1"), "{report}");
        assert!(report.contains("window 1 committed"), "{report}");

        // A different graph against the same state directory is refused.
        let other = demo_graph_file("durable_other.txt");
        let big = geograph::generators::erdos_renyi(301, 2400, 3);
        geograph::io::write_edge_list(&big, &other).unwrap();
        let err = run(Command::Partition { graph: other, out: None, options: options.clone() })
            .unwrap_err();
        assert!(err.contains("301"), "vertex-count mismatch must be typed: {err}");

        // `serve` boots the committed plan out of the same directory —
        // no graph file, no retraining — and answers lookups from it.
        let report = run(Command::Serve { store: dir.clone(), lookups: 5_000, options }).unwrap();
        assert!(report.contains("served window : 2"), "{report}");
        assert!(report.contains("lookups       : 5000"), "{report}");
        assert!(report.contains("epoch         : 1"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_serve() {
        let cmd = parse_args(&args(&["serve", "state.d", "--lookups", "250000"])).unwrap();
        match cmd {
            Command::Serve { store, lookups, .. } => {
                assert_eq!(store, PathBuf::from("state.d"));
                assert_eq!(lookups, 250_000);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn durable_dir_requires_rlcut() {
        let options = Options {
            method: Method::Ginger,
            durable_dir: Some(PathBuf::from("x.d")),
            ..Default::default()
        };
        let err =
            run(Command::Partition { graph: PathBuf::from("unused.txt"), out: None, options })
                .unwrap_err();
        assert!(err.contains("--durable-dir"), "{err}");
    }

    #[test]
    fn natural_method_has_zero_movement() {
        let graph = demo_graph_file("natural.txt");
        let options = Options { method: Method::Natural, ..Default::default() };
        let report = run(Command::Partition { graph, out: None, options }).unwrap();
        assert!(report.contains("OK"));
    }
}
