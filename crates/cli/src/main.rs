//! The `rlcut` binary — see [`rlcut_cli`] for the command grammar.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rlcut_cli::parse_args(&args).and_then(rlcut_cli::run) {
        Ok(report) => println!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    }
}
