//! Vendored, dependency-free subset of the `criterion` API.
//!
//! The build environment has no access to crates.io; this shim keeps the
//! workspace's `#[bench]`-free Criterion benchmarks compiling and running.
//! Measurement is deliberately simple — warm up, pick an iteration count
//! that fills a fixed measurement window, report the mean wall-clock time
//! per iteration — which is enough to compare hot-path variants (the only
//! thing the repo's benches are used for). No plots, no statistics beyond
//! min/mean, no saved baselines.
//!
//! A positional command-line argument filters benchmarks by substring,
//! mirroring `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark runner.
pub struct Criterion {
    filter: Option<String>,
    /// Target wall-clock time for one measurement window.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI argument is a name filter (cargo bench
        // passes flags like `--bench` too; skip anything dash-prefixed).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, measurement: Duration::from_millis(400) }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.matches(id) {
            return;
        }
        // Warm-up + calibration: one iteration, timed.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let iters = (self.measurement.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        b.iters = iters;
        f(&mut b);
        let mean_ns = b.elapsed.as_nanos() as f64 / iters as f64;
        println!("{id:<55} {:>14}/iter  ({iters} iters)", format_ns(mean_ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed measurement window
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Bundles bench functions into a group runner, as `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Emits `main` running the given groups, as `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None, measurement: Duration::from_millis(5) };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c =
            Criterion { filter: Some("match".into()), measurement: Duration::from_millis(5) };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("does_match", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("rmat", 4096);
        assert_eq!(id.id, "rmat/4096");
        assert_eq!(BenchmarkId::from_parameter("8pct").id, "8pct");
    }
}
