//! Vendored, dependency-free subset of the `proptest` API.
//!
//! The build environment has no access to crates.io; this shim implements
//! the surface the workspace's property tests use: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map`, integer-range and tuple strategies,
//! [`collection::vec`], the [`proptest!`] macro, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs' debug output left to the assertion message), and the
//! case stream is deterministic — seeded from the test's name — so failures
//! reproduce exactly across runs and machines.

use rand::prelude::*;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy producing one fixed (cloned) value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — as `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. Each function runs `cases` times with fresh
/// strategy-generated inputs; assertion failures panic immediately (no
/// shrinking), reporting the case number.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                let run = |rng: &mut $crate::TestRng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                };
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&mut rng)));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} of `{}` failed",
                        config.cases,
                        stringify!($name)
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_rng("ranges_and_tuples");
        let strat = (1usize..10, 0u8..4);
        for _ in 0..1000 {
            let (a, b) = strat.generate(&mut rng);
            assert!((1..10).contains(&a) && b < 4);
        }
    }

    #[test]
    fn flat_map_sees_outer_value() {
        let mut rng = crate::test_rng("flat_map");
        let strat = (2usize..10).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        for _ in 0..1000 {
            let (n, k) = strat.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn vec_respects_length_range() {
        let mut rng = crate::test_rng("vec_len");
        let strat = crate::collection::vec(0u32..5, 2..7);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple args, trailing comma.
        #[test]
        fn macro_end_to_end((a, b) in (0u32..100, 0u32..100), c in 1usize..4,) {
            prop_assert!(a < 100);
            prop_assert_ne!(c, 0);
            prop_assert_eq!((a + b) as usize * c / c, (a + b) as usize);
        }
    }
}
