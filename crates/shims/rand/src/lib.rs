//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact surface it uses: [`rngs::SmallRng`] (xoshiro256++
//! seeded via SplitMix64, the same algorithm real `rand` 0.8 uses on
//! 64-bit targets), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is deterministic per seed and platform-independent, which is
//! all the reproduction relies on; no claim is made that the streams match
//! upstream `rand` bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types seedable from a `u64` (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers uniform over the full domain).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Standard-distribution sampling for the value types the workspace draws.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling over a range, unbiased via Lemire rejection.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, n)` without modulo bias.
fn next_below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + next_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64) - (lo as u64) + 1; // never full u64 here
                lo + next_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, usize);

// `u64` ranges need overflow care for the inclusive span; exclusive is safe.
impl SampleRange<u64> for Range<u64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + next_below(rng, self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        match hi.checked_sub(lo).and_then(|s| s.checked_add(1)) {
            Some(span) => lo + next_below(rng, span),
            None => rng.next_u64(), // 0..=u64::MAX
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm `rand` 0.8 uses for `SmallRng` on
    /// 64-bit platforms. Fast, 256-bit state, fine statistical quality.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SmallRng {
        /// Raw xoshiro256++ state, for checkpoint serialization.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds the generator from a previously captured [`state`](Self::state).
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `StdRng` call sites keep working; quality is adequate for
    /// simulation (nothing here is cryptographic).
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers; only `shuffle` is used by the workspace.
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Re-export mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of U[0,1) over 10k draws is ~0.5 ± a few σ.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(9);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice ordered");
    }
}
