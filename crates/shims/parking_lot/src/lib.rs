//! Vendored, dependency-free subset of the `parking_lot` API.
//!
//! The build environment has no access to crates.io; this shim wraps
//! `std::sync` primitives behind `parking_lot`'s panic-free (non-poisoning)
//! interface. Poisoned locks are transparently recovered — a panicked
//! writer's partial state is the caller's problem, exactly as under real
//! `parking_lot`.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning reader-writer lock over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning mutex over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning condition variable over [`std::sync::Condvar`].
///
/// API note: `wait` consumes and returns the guard (`std` style) rather
/// than taking `&mut guard` as real `parking_lot` does — the `&mut` form
/// cannot be built safely on top of `std`'s consuming wait, and every
/// caller in this workspace is vendored alongside the shim.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified, releasing `guard` while parked. Spurious
    /// wakeups are possible; callers re-check their predicate.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// [`Self::wait`] in a loop until `condition` returns `false`.
    pub fn wait_while<'a, T, F: FnMut(&mut T) -> bool>(
        &self,
        guard: MutexGuard<'a, T>,
        condition: F,
    ) -> MutexGuard<'a, T> {
        self.0.wait_while(guard, condition).unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                ready = cvar.wait(ready);
            }
            *ready
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_wait_while_blocks_until_predicate_clears() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*p2;
            let guard = cvar.wait_while(lock.lock(), |n| *n < 3);
            *guard
        });
        let (lock, cvar) = &*pair;
        for _ in 0..3 {
            *lock.lock() += 1;
            cvar.notify_all();
        }
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn read_survives_poison() {
        let lock = std::sync::Arc::new(RwLock::new(7));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.read(), 7);
    }
}
