//! Vendored, dependency-free subset of the `parking_lot` API.
//!
//! The build environment has no access to crates.io; this shim wraps
//! `std::sync` primitives behind `parking_lot`'s panic-free (non-poisoning)
//! interface. Poisoned locks are transparently recovered — a panicked
//! writer's partial state is the caller's problem, exactly as under real
//! `parking_lot`.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning reader-writer lock over [`std::sync::RwLock`].
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning mutex over [`std::sync::Mutex`].
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn read_survives_poison() {
        let lock = std::sync::Arc::new(RwLock::new(7));
        let l2 = lock.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.read(), 7);
    }
}
