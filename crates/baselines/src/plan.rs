//! [`PlanKind`]: one type unifying the three plan models so the experiment
//! harness can compare partitioners on identical terms.

use geoengine::{execute_edgecut, execute_plan, Algorithm, ExecutionReport};
use geograph::GeoGraph;
use geopart::state::Objective;
use geopart::vertexcut::VertexCutState;
use geopart::{EdgeCutState, HybridState};
use geosim::CloudEnv;

/// A partitioning plan of any model.
pub enum PlanKind<'g> {
    Hybrid(HybridState<'g>),
    Vertex(VertexCutState),
    Edge(EdgeCutState),
}

impl<'g> PlanKind<'g> {
    /// The model's name as used in plots/tables.
    pub fn model(&self) -> &'static str {
        match self {
            PlanKind::Hybrid(_) => "hybrid-cut",
            PlanKind::Vertex(_) => "vertex-cut",
            PlanKind::Edge(_) => "edge-cut",
        }
    }

    /// Static objective (expected per-iteration time + job cost).
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        match self {
            PlanKind::Hybrid(s) => s.objective(env),
            PlanKind::Vertex(s) => s.objective(env),
            PlanKind::Edge(s) => s.objective(env),
        }
    }

    /// Replication factor λ (1.0 for edge-cut: vertices are not
    /// replicated, they message instead).
    pub fn replication_factor(&self) -> f64 {
        match self {
            PlanKind::Hybrid(s) => s.core().replication_factor(),
            PlanKind::Vertex(s) => s.replication_factor(),
            PlanKind::Edge(_) => 1.0,
        }
    }

    /// Per-iteration WAN bytes under the expected profile.
    pub fn wan_bytes_per_iteration(&self) -> f64 {
        match self {
            PlanKind::Hybrid(s) => s.core().wan_bytes_per_iteration(),
            PlanKind::Vertex(s) => s.core().wan_bytes_per_iteration(),
            PlanKind::Edge(s) => s.wan_bytes_per_iteration(),
        }
    }

    /// Executes `algo` over this plan with the `geoengine` runner,
    /// attributing traffic per the plan's model.
    pub fn execute(&self, geo: &GeoGraph, env: &CloudEnv, algo: &Algorithm) -> ExecutionReport {
        match self {
            PlanKind::Hybrid(s) => execute_plan(geo, env, s.core(), None, algo),
            PlanKind::Vertex(s) => {
                let in_dcs = s.in_edge_dcs(geo);
                execute_plan(geo, env, s.core(), Some(&in_dcs), algo)
            }
            PlanKind::Edge(s) => execute_edgecut(geo, env, s, algo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geopart::TrafficProfile;
    use geosim::regions::ec2_eight_regions;

    #[test]
    fn dispatch_covers_all_models() {
        let g = rmat(&RmatConfig::social(256, 2048), 9);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(9));
        let env = ec2_eight_regions();
        let algo = Algorithm::pagerank();
        let profile: TrafficProfile = algo.profile(&geo);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);

        let plans = vec![
            PlanKind::Hybrid(crate::hashpl(&geo, &env, theta, profile.clone(), 10.0, 1)),
            PlanKind::Vertex(crate::randpg(&geo, &env, profile.clone(), 10.0, 1)),
            PlanKind::Edge(crate::fennel(
                &geo,
                &env,
                crate::fennel::FennelConfig::default(),
                profile,
                10.0,
            )),
        ];
        for plan in &plans {
            let obj = plan.objective(&env);
            assert!(obj.transfer_time >= 0.0);
            let report = plan.execute(&geo, &env, &algo);
            assert_eq!(report.iterations, 10);
            assert!(plan.replication_factor() >= 1.0);
        }
        assert_eq!(plans[0].model(), "hybrid-cut");
        assert_eq!(plans[1].model(), "vertex-cut");
        assert_eq!(plans[2].model(), "edge-cut");
    }
}
