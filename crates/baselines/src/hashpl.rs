//! HashPL: hash-based hybrid-cut (PowerLyra's default placement [6]).
//!
//! Every vertex's master is `hash(v) mod M`; edge placement then follows
//! the hybrid-cut rules. Balanced and cheap, but blind to both geography
//! and bandwidth heterogeneity — exactly the blind spot the paper's Fig 10
//! exposes.

use geograph::fxhash::mix64;
use geograph::{GeoGraph, VertexId};
use geopart::{DcId, HybridState, TrafficProfile};
use geosim::CloudEnv;

/// Hash-partitions masters over the DCs.
pub fn hashpl<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    theta: usize,
    profile: TrafficProfile,
    num_iterations: f64,
    seed: u64,
) -> HybridState<'g> {
    let m = env.num_dcs() as u64;
    let masters: Vec<DcId> = (0..geo.num_vertices() as VertexId)
        .map(|v| (mix64(v as u64 ^ seed.rotate_left(17)) % m) as DcId)
        .collect();
    HybridState::from_masters(geo, env, masters, theta, profile, num_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(1024, 8192), 3);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(3)), ec2_eight_regions())
    }

    #[test]
    fn lower_replication_than_random_vertex_cut() {
        // The Fig 2 comparison: hybrid-cut HashPL vs vertex-cut RandPG.
        let (geo, env) = setup();
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let hybrid = hashpl(&geo, &env, theta, p.clone(), 10.0, 1);
        let vertex = crate::randpg(&geo, &env, p, 10.0, 1);
        assert!(
            hybrid.core().replication_factor() < vertex.replication_factor(),
            "hybrid λ {} vs vertex λ {}",
            hybrid.core().replication_factor(),
            vertex.replication_factor()
        );
    }

    #[test]
    fn lower_wan_usage_than_random_vertex_cut() {
        let (geo, env) = setup();
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let hybrid = hashpl(&geo, &env, theta, p.clone(), 10.0, 1);
        let vertex = crate::randpg(&geo, &env, p, 10.0, 1);
        assert!(hybrid.core().wan_bytes_per_iteration() < vertex.core().wan_bytes_per_iteration());
    }

    #[test]
    fn balanced_masters() {
        let (geo, env) = setup();
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = hashpl(&geo, &env, theta, p, 10.0, 1);
        let mut per_dc = vec![0u64; env.num_dcs()];
        for &d in s.core().masters() {
            per_dc[d as usize] += 1;
        }
        assert!(geopart::metrics::imbalance(&per_dc) < 1.2);
    }

    #[test]
    fn consistent_state() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        hashpl(&geo, &env, 8, p, 10.0, 5).check_consistency(&env);
    }
}
