//! Leopard: lightweight edge-oriented partitioning and replication for
//! dynamic graphs (Huang & Abadi, VLDB '16 [26]) — an extra dynamic
//! baseline beyond the paper's Exp#5 comparison set.
//!
//! Leopard streams edges: each arriving edge is placed on a partition
//! already holding (a replica of) one of its endpoints, creating a replica
//! for the missing endpoint; a balance penalty keeps partitions even. The
//! assignment never revisits old edges, which is what makes it cheap — and
//! what RLCut's re-optimization beats on quality.

use geograph::{GeoGraph, GraphDelta, VertexId};
use geopart::vertexcut::{MasterRule, VertexCutState};
use geopart::{DcId, TrafficProfile};
use geosim::CloudEnv;

/// Tuning knobs for Leopard.
#[derive(Clone, Copy, Debug)]
pub struct LeopardConfig {
    /// Weight of the balance penalty relative to endpoint locality.
    pub balance_weight: f64,
    /// Maximum replicas per vertex (Leopard caps its replication).
    pub max_replicas: u32,
}

impl Default for LeopardConfig {
    fn default() -> Self {
        LeopardConfig { balance_weight: 0.5, max_replicas: 3 }
    }
}

/// A Leopard instance: streaming state that persists across windows.
#[derive(Clone, Debug)]
pub struct Leopard {
    config: LeopardConfig,
    num_dcs: usize,
    /// DCs holding a copy of each vertex (bitmask; bit of the home DC set
    /// at initialization).
    replicas: Vec<u64>,
    edges_per_dc: Vec<f64>,
    /// Placement of every edge processed so far, in arrival order.
    edge_dcs: Vec<DcId>,
    edges_seen: usize,
}

impl Leopard {
    /// Initializes from natural vertex locations.
    pub fn new(
        num_vertices: usize,
        locations: &[DcId],
        num_dcs: usize,
        config: LeopardConfig,
    ) -> Self {
        assert_eq!(locations.len(), num_vertices);
        Leopard {
            config,
            num_dcs,
            replicas: locations.iter().map(|&d| 1u64 << d).collect(),
            edges_per_dc: vec![0.0; num_dcs],
            edge_dcs: Vec::new(),
            edges_seen: 0,
        }
    }

    /// Streams one edge, returning its placement. New vertex ids grow the
    /// replica table with the given natural location.
    pub fn place_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        natural: impl Fn(VertexId) -> DcId,
    ) -> DcId {
        let needed = u.max(v) as usize + 1;
        while self.replicas.len() < needed {
            let id = self.replicas.len() as VertexId;
            self.replicas.push(1u64 << natural(id));
        }
        let avg = (self.edges_seen as f64 / self.num_dcs as f64).max(1.0);
        let mut best = (0usize, f64::NEG_INFINITY);
        for d in 0..self.num_dcs {
            let bit = 1u64 << d;
            let locality = (self.replicas[u as usize] & bit != 0) as u32 as f64
                + (self.replicas[v as usize] & bit != 0) as u32 as f64;
            let score = locality - self.config.balance_weight * self.edges_per_dc[d] / avg;
            if score > best.1 {
                best = (d, score);
            }
        }
        let d = best.0;
        let bit = 1u64 << d;
        // Replicate missing endpoints at the chosen DC, respecting the cap
        // (over-cap vertices simply have a remote copy serve the edge —
        // the cost shows up as runtime traffic, as in Leopard).
        for x in [u, v] {
            let mask = &mut self.replicas[x as usize];
            if *mask & bit == 0 && mask.count_ones() < self.config.max_replicas {
                *mask |= bit;
            }
        }
        self.edges_per_dc[d] += 1.0;
        self.edge_dcs.push(d as DcId);
        self.edges_seen += 1;
        d as DcId
    }

    /// Streams a window's [`GraphDelta`] — the same delta the incremental
    /// RLCut path consumes. Net-inserted edges are placed in sorted order
    /// through [`Self::place_edge`] (growing the replica table as new ids
    /// appear). Deleted edges are ignored: Leopard's streaming state never
    /// revisits old placements — its replica tables only accumulate — so
    /// deletions affect evaluation replay ([`Self::state`] re-places the
    /// surviving edge set of the new snapshot), not the streaming state.
    pub fn apply_delta(&mut self, delta: &GraphDelta, natural: impl Fn(VertexId) -> DcId) {
        // Vertices whose edges cancelled out still arrive.
        let needed = delta.new_num_vertices();
        while self.replicas.len() < needed {
            let id = self.replicas.len() as VertexId;
            self.replicas.push(1u64 << natural(id));
        }
        for &(u, v) in delta.inserted() {
            self.place_edge(u, v, &natural);
        }
    }

    /// The per-edge placements so far, in arrival order.
    pub fn edge_dcs(&self) -> &[DcId] {
        &self.edge_dcs
    }

    /// Builds the evaluable vertex-cut plan for a graph whose
    /// `graph.edges()` order matches the streaming order.
    ///
    /// Streaming usually does *not* arrive in CSR order, so this re-places
    /// every edge of `geo` through the current replica tables (cheap:
    /// O(E · M)) — the replica state, which is what Leopard accumulates,
    /// drives the placement either way.
    pub fn state(
        &self,
        geo: &GeoGraph,
        env: &CloudEnv,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> VertexCutState {
        let mut shadow = self.clone();
        shadow.edge_dcs.clear();
        shadow.edges_per_dc.iter_mut().for_each(|c| *c = 0.0);
        shadow.edges_seen = 0;
        for (u, v) in geo.graph.edges() {
            shadow.place_edge(u, v, |id| geo.locations[id as usize]);
        }
        VertexCutState::from_edge_assignment(
            geo,
            env,
            &shadow.edge_dcs,
            MasterRule::PreferNatural,
            profile,
            num_iterations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), 15);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(15)), ec2_eight_regions())
    }

    #[test]
    fn respects_replica_cap() {
        let (geo, _env) = setup();
        let mut leopard =
            Leopard::new(geo.num_vertices(), &geo.locations, geo.num_dcs, LeopardConfig::default());
        for (u, v) in geo.graph.edges() {
            leopard.place_edge(u, v, |id| geo.locations[id as usize]);
        }
        for mask in &leopard.replicas {
            assert!(mask.count_ones() <= LeopardConfig::default().max_replicas);
        }
    }

    #[test]
    fn beats_random_vertex_cut_on_wan() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let leopard =
            Leopard::new(geo.num_vertices(), &geo.locations, geo.num_dcs, LeopardConfig::default());
        let plan = leopard.state(&geo, &env, p.clone(), 10.0);
        let random = crate::randpg(&geo, &env, p, 10.0, 15);
        assert!(
            plan.core().wan_bytes_per_iteration() < random.core().wan_bytes_per_iteration(),
            "leopard {} vs random {}",
            plan.core().wan_bytes_per_iteration(),
            random.core().wan_bytes_per_iteration()
        );
    }

    #[test]
    fn balance_penalty_spreads_edges() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let leopard =
            Leopard::new(geo.num_vertices(), &geo.locations, geo.num_dcs, LeopardConfig::default());
        let plan = leopard.state(&geo, &env, p, 10.0);
        let imbalance = geopart::metrics::imbalance(plan.core().edges_per_dc());
        assert!(imbalance < 3.0, "edges per DC too skewed: {imbalance}");
    }

    #[test]
    fn streaming_grows_vertex_table() {
        let mut leopard = Leopard::new(2, &[0, 1], 4, LeopardConfig::default());
        leopard.place_edge(0, 5, |_| 2);
        assert_eq!(leopard.replicas.len(), 6);
        assert!(leopard.replicas[5] & (1 << 2) != 0 || leopard.replicas[5].count_ones() >= 1);
    }

    #[test]
    fn apply_delta_streams_net_inserts_only() {
        use geograph::dynamic::{EdgeEvent, EventKind};
        use geograph::Graph;
        let base = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        let mut leopard = Leopard::new(4, &[0, 1, 2, 3], 4, LeopardConfig::default());
        let ev = |src, dst, t, kind| EdgeEvent { src, dst, timestamp_ms: t, kind };
        let events = vec![
            ev(2, 3, 0, EventKind::Insert),
            ev(5, 0, 1, EventKind::Insert), // grows the vertex table
            ev(5, 0, 2, EventKind::Delete), // cancels: vertex 4..=5 still arrive
            ev(0, 1, 3, EventKind::Insert), // insert-of-existing: no-op
            ev(1, 2, 4, EventKind::Delete), // delete: ignored by streaming state
        ];
        let delta = GraphDelta::from_events(&base, &events);
        let before = leopard.edge_dcs().len();
        leopard.apply_delta(&delta, |_| 0);
        // Exactly the net-inserted edges streamed.
        assert_eq!(leopard.edge_dcs().len() - before, delta.inserted().len());
        assert_eq!(delta.inserted(), &[(2, 3)]);
        // The cancelled-edge vertices still grew the replica table.
        assert_eq!(leopard.replicas.len(), 6);
    }

    #[test]
    fn delta_stream_matches_monolithic_stream() {
        // Streaming a graph in one pass and streaming base + delta must
        // accumulate identical replica state when the arrival order of
        // inserted edges matches (both sorted here).
        let (geo, env) = setup();
        let all_edges: Vec<(geograph::VertexId, geograph::VertexId)> = {
            let mut e: Vec<_> = geo.graph.edges().collect();
            e.sort_unstable();
            e
        };
        let split = all_edges.len() * 7 / 10;
        let natural = |id: geograph::VertexId| geo.locations[id as usize];

        let mut monolithic =
            Leopard::new(geo.num_vertices(), &geo.locations, geo.num_dcs, LeopardConfig::default());
        for &(u, v) in &all_edges {
            monolithic.place_edge(u, v, natural);
        }

        let base = geograph::Graph::from_edges(geo.num_vertices(), &all_edges[..split]);
        use geograph::dynamic::{EdgeEvent, EventKind};
        let events: Vec<EdgeEvent> = all_edges[split..]
            .iter()
            .enumerate()
            .map(|(i, &(src, dst))| EdgeEvent {
                src,
                dst,
                timestamp_ms: i as u64,
                kind: EventKind::Insert,
            })
            .collect();
        let delta = GraphDelta::from_events(&base, &events);
        let mut windowed =
            Leopard::new(geo.num_vertices(), &geo.locations, geo.num_dcs, LeopardConfig::default());
        for &(u, v) in &all_edges[..split] {
            windowed.place_edge(u, v, natural);
        }
        windowed.apply_delta(&delta, natural);
        assert_eq!(monolithic.replicas, windowed.replicas);
        assert_eq!(monolithic.edge_dcs, windowed.edge_dcs);
        // Both evaluate to the same plan over the final graph.
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let a = monolithic.state(&geo, &env, p.clone(), 10.0);
        let b = windowed.state(&geo, &env, p, 10.0);
        assert_eq!(a.edge_dcs(), b.edge_dcs());
    }

    #[test]
    fn deterministic() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let a =
            Leopard::new(geo.num_vertices(), &geo.locations, geo.num_dcs, LeopardConfig::default())
                .state(&geo, &env, p.clone(), 10.0);
        let b =
            Leopard::new(geo.num_vertices(), &geo.locations, geo.num_dcs, LeopardConfig::default())
                .state(&geo, &env, p, 10.0);
        assert_eq!(a.edge_dcs(), b.edge_dcs());
    }
}
