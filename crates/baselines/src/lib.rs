//! # geobase — baseline geo-distributed graph partitioners
//!
//! The six comparison methods of the paper's evaluation (§VI-A.3), one
//! module each, plus Fennel for reference:
//!
//! | Method | Model | Strategy |
//! |---|---|---|
//! | [`randpg`] | vertex-cut | random balanced p-way edge assignment (PowerGraph) |
//! | [`geocut`] | vertex-cut | heterogeneity-aware heuristic under a WAN budget (Zhou et al., ICDCS '17) |
//! | [`hashpl`] | hybrid-cut | hash-based master placement (PowerLyra) |
//! | [`ginger`] | hybrid-cut | Fennel-derived greedy placement (PowerLyra) |
//! | [`revolver`] | edge-cut | learning-automata vertex assignment (Mofrad et al.) |
//! | [`spinner`] | edge-cut | label propagation with capacity, incremental (Martella et al.) |
//! | [`fennel`] | edge-cut | one-pass streaming with a balance penalty (Tsourakakis et al.) |
//! | [`leopard`] | vertex-cut | streaming edge placement with bounded replication, dynamic (Huang & Abadi) |
//!
//! All partitioners are deterministic for a fixed seed and return one of the
//! three `geopart` plan states; [`plan::PlanKind`] unifies them for the
//! experiment harness.

pub mod fennel;
pub mod geocut;
pub mod ginger;
pub mod hashpl;
pub mod leopard;
pub mod plan;
pub mod randpg;
pub mod revolver;
pub mod spinner;

pub use fennel::fennel;
pub use geocut::{geocut, geocut_with_pool};
pub use ginger::{ginger, ginger_with_pool};
pub use hashpl::hashpl;
pub use leopard::Leopard;
pub use plan::PlanKind;
pub use randpg::randpg;
pub use revolver::revolver;
pub use spinner::Spinner;
