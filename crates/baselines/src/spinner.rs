//! Spinner: scalable label-propagation edge-cut partitioning with
//! incremental adaptation (Martella et al., ICDE '17 [7]) — the paper's
//! dynamic-graph comparison (Exp#5).
//!
//! Each vertex iteratively adopts the label (partition) maximizing
//! neighbor co-location plus a remaining-capacity bonus. On graph growth,
//! only new vertices and their neighborhoods re-propagate. Spinner is a
//! best-effort method: it runs to convergence regardless of any required
//! optimization overhead, which is exactly the behaviour Fig 15(b)
//! penalizes when updates come fast.

use geograph::{GeoGraph, GraphDelta, VertexId};
use geopart::{DcId, EdgeCutState, TrafficProfile};
use geosim::CloudEnv;

/// Tuning knobs for Spinner.
#[derive(Clone, Copy, Debug)]
pub struct SpinnerConfig {
    /// Maximum label-propagation rounds per (re)partitioning.
    pub max_rounds: usize,
    /// Weight of the capacity (balance) bonus.
    pub balance_factor: f64,
    /// Convergence: stop when fewer than this fraction of vertices move.
    pub convergence_fraction: f64,
    /// Maximum partition size as a fraction above perfect balance
    /// (Spinner's hard capacity constraint: partitions serve equal-sized
    /// Giraph workers, so `C = (1 + slack) * n / m`).
    pub capacity_slack: f64,
    pub seed: u64,
}

impl Default for SpinnerConfig {
    fn default() -> Self {
        SpinnerConfig {
            max_rounds: 20,
            balance_factor: 0.25,
            convergence_fraction: 0.002,
            capacity_slack: 0.05,
            seed: 42,
        }
    }
}

/// A Spinner instance holding the current assignment across windows.
#[derive(Clone, Debug)]
pub struct Spinner {
    config: SpinnerConfig,
    assignment: Vec<DcId>,
    num_dcs: usize,
}

impl Spinner {
    /// Partitions `geo` from its natural locations and returns the
    /// instance for later incremental adaptation.
    pub fn partition(geo: &GeoGraph, config: SpinnerConfig) -> Self {
        let mut spinner =
            Spinner { config, assignment: geo.locations.clone(), num_dcs: geo.num_dcs };
        let all: Vec<VertexId> = (0..geo.num_vertices() as VertexId).collect();
        spinner.propagate(geo, &all);
        spinner
    }

    /// Incrementally adapts to a grown graph: `geo` is the new snapshot
    /// (superset of the previous vertices), `new_vertices` the ids added
    /// since the last call. Only the affected neighborhood re-propagates.
    pub fn adapt(&mut self, geo: &GeoGraph, new_vertices: &[VertexId]) {
        assert!(geo.num_vertices() >= self.assignment.len());
        // Initialize newcomers at their natural location.
        for v in self.assignment.len()..geo.num_vertices() {
            self.assignment.push(geo.locations[v]);
        }
        // Affected set: new vertices plus their direct neighbors.
        let mut affected = Vec::new();
        let mut seen = vec![false; geo.num_vertices()];
        let push = |v: VertexId, seen: &mut Vec<bool>, out: &mut Vec<VertexId>| {
            if !seen[v as usize] {
                seen[v as usize] = true;
                out.push(v);
            }
        };
        for &v in new_vertices {
            push(v, &mut seen, &mut affected);
            for &u in geo.graph.out_neighbors(v) {
                push(u, &mut seen, &mut affected);
            }
            for &u in geo.graph.in_neighbors(v) {
                push(u, &mut seen, &mut affected);
            }
        }
        self.propagate(geo, &affected);
    }

    /// [`Self::adapt`] driven by the window's [`GraphDelta`] — the same
    /// delta the incremental RLCut path consumes. Propagation is seeded
    /// from the delta's new vertices *and* every touched endpoint, so edge
    /// deletions — invisible to `adapt`'s new-vertex-only seeding — also
    /// re-propagate their perturbed neighborhoods. (`adapt` dedups seeds
    /// and widens to direct neighbors itself.)
    pub fn adapt_delta(&mut self, geo: &GeoGraph, delta: &GraphDelta) {
        assert_eq!(
            geo.num_vertices(),
            delta.new_num_vertices(),
            "snapshot must be the delta's successor graph"
        );
        let mut seeds: Vec<VertexId> = delta.new_vertices().collect();
        seeds.extend_from_slice(delta.touched());
        self.adapt(geo, &seeds);
    }

    /// The current per-vertex assignment.
    pub fn assignment(&self) -> &[DcId] {
        &self.assignment
    }

    /// Builds the evaluable edge-cut plan for the current assignment.
    pub fn state(
        &self,
        geo: &GeoGraph,
        env: &CloudEnv,
        profile: &TrafficProfile,
        num_iterations: f64,
    ) -> EdgeCutState {
        EdgeCutState::from_assignment(geo, env, self.assignment.clone(), profile, num_iterations)
    }

    /// Label propagation over `active` vertices until convergence or the
    /// round cap.
    fn propagate(&mut self, geo: &GeoGraph, active: &[VertexId]) {
        let m = self.num_dcs;
        let n = geo.num_vertices();
        let capacity = n as f64 / m as f64;
        let max_load = capacity * (1.0 + self.config.capacity_slack);
        let mut loads = vec![0f64; m];
        for &d in &self.assignment {
            loads[d as usize] += 1.0;
        }
        let mut counts = vec![0f64; m];
        for _ in 0..self.config.max_rounds {
            let mut moves = 0usize;
            for &v in active {
                counts.iter_mut().for_each(|c| *c = 0.0);
                for &u in geo.graph.out_neighbors(v) {
                    counts[self.assignment[u as usize] as usize] += 1.0;
                }
                for &u in geo.graph.in_neighbors(v) {
                    counts[self.assignment[u as usize] as usize] += 1.0;
                }
                let deg = geo.graph.degree(v).max(1) as f64;
                let current = self.assignment[v as usize] as usize;
                let mut best = (current, f64::NEG_INFINITY);
                for d in 0..m {
                    // Hard capacity: no move into a full partition.
                    if d != current && loads[d] + 1.0 > max_load {
                        continue;
                    }
                    let score =
                        counts[d] / deg + self.config.balance_factor * (1.0 - loads[d] / capacity);
                    if score > best.1 + 1e-12 {
                        best = (d, score);
                    }
                }
                if best.0 != current {
                    loads[current] -= 1.0;
                    loads[best.0] += 1.0;
                    self.assignment[v as usize] = best.0 as DcId;
                    moves += 1;
                }
            }
            if (moves as f64) < self.config.convergence_fraction * active.len().max(1) as f64 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::dynamic::{apply_events, split_for_dynamic};
    use geograph::generators::preferential::preferential_attachment_edges;
    use geograph::locality::LocalityConfig;
    use geograph::GraphBuilder;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let edges = preferential_attachment_edges(800, 4, 7);
        let mut b = GraphBuilder::new(800);
        b.add_edges(edges);
        let geo = GeoGraph::from_graph(b.build(), &LocalityConfig::paper_default(7));
        (geo, ec2_eight_regions())
    }

    #[test]
    fn improves_locality_over_natural() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let spinner = Spinner::partition(&geo, SpinnerConfig::default());
        let tuned = spinner.state(&geo, &env, &p, 10.0);
        let natural = EdgeCutState::from_assignment(&geo, &env, geo.locations.clone(), &p, 10.0);
        assert!(
            tuned.internal_edge_fraction() > natural.internal_edge_fraction(),
            "spinner {} vs natural {}",
            tuned.internal_edge_fraction(),
            natural.internal_edge_fraction()
        );
    }

    #[test]
    fn keeps_rough_balance() {
        let (geo, _env) = setup();
        let spinner = Spinner::partition(&geo, SpinnerConfig::default());
        let mut per_dc = vec![0u64; geo.num_dcs];
        for &d in spinner.assignment() {
            per_dc[d as usize] += 1;
        }
        assert!(per_dc.iter().all(|&c| c > 0), "{per_dc:?}");
    }

    #[test]
    fn capacity_constraint_enforced() {
        // The natural geo distribution is skewed (EU holds ~24%); after
        // label propagation no partition may exceed (1+slack) of perfect
        // balance — moves into full partitions are rejected.
        let (geo, _env) = setup();
        let config = SpinnerConfig::default();
        let spinner = Spinner::partition(&geo, config);
        let mut per_dc = vec![0u64; geo.num_dcs];
        for &d in spinner.assignment() {
            per_dc[d as usize] += 1;
        }
        // Initial skew can exceed the cap (vertices never forced out), but
        // the imbalance must not grow beyond the initial natural skew.
        let mut initial = vec![0u64; geo.num_dcs];
        for &d in &geo.locations {
            initial[d as usize] += 1;
        }
        let max_after = *per_dc.iter().max().unwrap();
        let max_before = *initial.iter().max().unwrap();
        let cap = ((geo.num_vertices() as f64 / geo.num_dcs as f64) * (1.0 + config.capacity_slack))
            as u64
            + 1;
        assert!(
            max_after <= max_before.max(cap),
            "partition grew past capacity: {max_after} (cap {cap}, initial max {max_before})"
        );
    }

    #[test]
    fn adapt_extends_assignment_and_converges() {
        let (geo, env) = setup();
        let all_edges: Vec<_> = geo.graph.edges().collect();
        let (initial, stream) = split_for_dynamic(&all_edges, geo.num_vertices(), 0.7, 60_000);
        let initial_geo =
            GeoGraph::new(initial, geo.locations.clone(), geo.data_sizes.clone(), geo.num_dcs);
        let mut spinner = Spinner::partition(&initial_geo, SpinnerConfig::default());

        // Apply all remaining events as one window.
        let mut builder = GraphBuilder::new(initial_geo.num_vertices());
        builder.add_edges(initial_geo.graph.edges());
        let applied = apply_events(&mut builder, stream.events());
        let grown = builder.build();
        let grown_geo =
            GeoGraph::new(grown, geo.locations[..].to_vec(), geo.data_sizes.clone(), geo.num_dcs);
        spinner.adapt(&grown_geo, &applied.new_vertices);
        assert_eq!(spinner.assignment().len(), grown_geo.num_vertices());
        let p = TrafficProfile::uniform(grown_geo.num_vertices(), 8.0);
        let s = spinner.state(&grown_geo, &env, &p, 10.0);
        assert!(s.internal_edge_fraction() > 0.0);
    }

    #[test]
    fn adapt_delta_matches_adapt_on_insert_only_streams() {
        // On a pure-insert window, the GraphDelta-driven path seeds from
        // new vertices ∪ touched endpoints; the legacy path seeds from new
        // vertices and widens to their neighbors. The delta seeds are a
        // superset restricted to perturbed adjacency, so both converge to
        // a full-length assignment over the same graph.
        let (geo, env) = setup();
        let all_edges: Vec<_> = geo.graph.edges().collect();
        let (initial, stream) = split_for_dynamic(&all_edges, geo.num_vertices(), 0.7, 60_000);
        let initial_geo =
            GeoGraph::new(initial, geo.locations.clone(), geo.data_sizes.clone(), geo.num_dcs);
        let mut spinner = Spinner::partition(&initial_geo, SpinnerConfig::default());

        let delta = GraphDelta::from_events(&initial_geo.graph, stream.events());
        let grown = initial_geo.graph.apply_delta(&delta);
        let grown_geo =
            GeoGraph::new(grown, geo.locations.clone(), geo.data_sizes.clone(), geo.num_dcs);
        spinner.adapt_delta(&grown_geo, &delta);
        assert_eq!(spinner.assignment().len(), grown_geo.num_vertices());
        let p = TrafficProfile::uniform(grown_geo.num_vertices(), 8.0);
        let s = spinner.state(&grown_geo, &env, &p, 10.0);
        assert!(s.internal_edge_fraction() > 0.0);
    }

    #[test]
    fn adapt_delta_repropagates_deletion_neighborhoods() {
        // A delete-only window must still re-propagate: the deleted edge's
        // endpoints are in touched() even though no vertex arrived.
        use geograph::dynamic::{EdgeEvent, EventKind};
        let (geo, _env) = setup();
        let mut spinner = Spinner::partition(&geo, SpinnerConfig::default());
        let (du, dv) = geo.graph.edges().next().expect("graph has edges");
        let events = vec![EdgeEvent { src: du, dst: dv, timestamp_ms: 0, kind: EventKind::Delete }];
        let delta = GraphDelta::from_events(&geo.graph, &events);
        assert_eq!(delta.touched(), &[du.min(dv), du.max(dv)][..]);
        let shrunk = geo.graph.apply_delta(&delta);
        let shrunk_geo =
            GeoGraph::new(shrunk, geo.locations.clone(), geo.data_sizes.clone(), geo.num_dcs);
        spinner.adapt_delta(&shrunk_geo, &delta);
        assert_eq!(spinner.assignment().len(), shrunk_geo.num_vertices());
    }
}
