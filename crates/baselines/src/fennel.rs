//! Fennel: one-pass streaming edge-cut partitioning (Tsourakakis et al.,
//! WSDM '14 [5]). Referenced by the paper as the archetypal "assign
//! on-the-fly, never revisit" method whose solutions dynamic partitioners
//! improve upon; included as an extra reference baseline.

use geograph::fxhash::mix64;
use geograph::{GeoGraph, VertexId};
use geopart::{DcId, EdgeCutState, TrafficProfile};
use geosim::CloudEnv;

/// Tuning knobs for Fennel.
#[derive(Clone, Copy, Debug)]
pub struct FennelConfig {
    /// Balance exponent γ (paper default 1.5).
    pub gamma: f64,
    pub seed: u64,
}

impl Default for FennelConfig {
    fn default() -> Self {
        FennelConfig { gamma: 1.5, seed: 42 }
    }
}

/// Streams vertices once (hash-shuffled order) assigning each to the DC
/// maximizing `|N(v) ∩ V_d| − α·γ·|V_d|^(γ−1)`.
pub fn fennel(
    geo: &GeoGraph,
    env: &CloudEnv,
    config: FennelConfig,
    profile: TrafficProfile,
    num_iterations: f64,
) -> EdgeCutState {
    let n = geo.num_vertices();
    let m = env.num_dcs();
    let e = geo.num_edges().max(1) as f64;
    // The paper's α = √m · |E| / |V|^γ.
    let alpha = (m as f64).sqrt() * e / (n as f64).powf(config.gamma);

    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| mix64(v as u64 ^ config.seed));

    let mut assignment: Vec<Option<DcId>> = vec![None; n];
    let mut sizes = vec![0f64; m];
    for &v in &order {
        let mut best = (0usize, f64::NEG_INFINITY);
        #[allow(clippy::needless_range_loop)] // d is a DC id, not just an index
        for d in 0..m {
            let mut neighbors = 0.0;
            for &u in geo.graph.out_neighbors(v) {
                if assignment[u as usize] == Some(d as DcId) {
                    neighbors += 1.0;
                }
            }
            for &u in geo.graph.in_neighbors(v) {
                if assignment[u as usize] == Some(d as DcId) {
                    neighbors += 1.0;
                }
            }
            let score = neighbors - alpha * config.gamma * sizes[d].powf(config.gamma - 1.0);
            if score > best.1 {
                best = (d, score);
            }
        }
        assignment[v as usize] = Some(best.0 as DcId);
        sizes[best.0] += 1.0;
    }
    let assignment: Vec<DcId> = assignment.into_iter().map(|d| d.unwrap()).collect();
    EdgeCutState::from_assignment(geo, env, assignment, &profile, num_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(1024, 8192), 8);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(8)), ec2_eight_regions())
    }

    #[test]
    fn beats_hash_assignment_on_locality() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let f = fennel(&geo, &env, FennelConfig::default(), p.clone(), 10.0);
        let hashed: Vec<DcId> = (0..geo.num_vertices() as u64)
            .map(|v| (mix64(v) % env.num_dcs() as u64) as DcId)
            .collect();
        let h = EdgeCutState::from_assignment(&geo, &env, hashed, &p, 10.0);
        assert!(f.internal_edge_fraction() > h.internal_edge_fraction());
    }

    #[test]
    fn populates_all_partitions() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let f = fennel(&geo, &env, FennelConfig::default(), p, 10.0);
        assert!(f.vertices_per_dc().iter().all(|&c| c > 0));
    }

    #[test]
    fn deterministic() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let a = fennel(&geo, &env, FennelConfig::default(), p.clone(), 10.0);
        let b = fennel(&geo, &env, FennelConfig::default(), p, 10.0);
        assert_eq!(a.assignment(), b.assignment());
    }
}
