//! Revolver: learning-automata edge-cut partitioning (Mofrad, Melhem &
//! Hammoud, IEEE CLOUD '18 [37]).
//!
//! Like RLCut it drives per-vertex learning automata, but over the plain
//! edge-cut model with a locality+balance utility and *no* awareness of
//! bandwidth heterogeneity, prices or budgets — the paper's Fig 10 shows it
//! losing 43–82 % to RLCut at two orders of magnitude more overhead than
//! the hash baselines (Table III).

use geograph::{GeoGraph, VertexId};
use geopart::{DcId, EdgeCutState, TrafficProfile};
use geosim::CloudEnv;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for Revolver.
#[derive(Clone, Copy, Debug)]
pub struct RevolverConfig {
    /// LA training iterations (Revolver needs many to converge; its large
    /// overhead in Table III comes from here).
    pub iterations: usize,
    /// Reward learning rate (L_RP scheme).
    pub alpha: f64,
    /// Penalty learning rate.
    pub beta: f64,
    /// Weight of the balance term in the utility.
    pub balance_weight: f64,
    pub seed: u64,
}

impl Default for RevolverConfig {
    fn default() -> Self {
        RevolverConfig { iterations: 100, alpha: 0.2, beta: 0.05, balance_weight: 0.5, seed: 42 }
    }
}

/// Runs Revolver and returns the resulting edge-cut plan.
pub fn revolver(
    geo: &GeoGraph,
    env: &CloudEnv,
    config: RevolverConfig,
    profile: TrafficProfile,
    num_iterations: f64,
) -> EdgeCutState {
    let n = geo.num_vertices();
    let m = env.num_dcs();
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x8a5c_d789_635d_2dff);
    // Per-vertex action probabilities, initialized uniform.
    let mut probs = vec![1.0f64 / m as f64; n * m];
    let mut assignment: Vec<DcId> = geo.locations.clone();
    let mut loads = vec![0f64; m];
    for &d in &assignment {
        loads[d as usize] += 1.0;
    }
    let capacity = n as f64 / m as f64;

    for _ in 0..config.iterations {
        // Sample an action per vertex from its automaton.
        let snapshot = assignment.clone();
        for v in 0..n {
            let roll = rng.gen::<f64>();
            let mut acc = 0.0;
            let mut chosen = m - 1;
            for d in 0..m {
                acc += probs[v * m + d];
                if roll < acc {
                    chosen = d;
                    break;
                }
            }
            loads[assignment[v] as usize] -= 1.0;
            loads[chosen] += 1.0;
            assignment[v] = chosen as DcId;
        }
        // Reinforce: reward the utility-maximizing partition of each vertex
        // (computed against the pre-step snapshot), penalize the rest.
        for v in 0..n as VertexId {
            let mut counts = vec![0f64; m];
            for &u in geo.graph.out_neighbors(v) {
                counts[snapshot[u as usize] as usize] += 1.0;
            }
            for &u in geo.graph.in_neighbors(v) {
                counts[snapshot[u as usize] as usize] += 1.0;
            }
            let deg = geo.graph.degree(v).max(1) as f64;
            let mut best = (0usize, f64::NEG_INFINITY);
            for d in 0..m {
                let utility =
                    counts[d] / deg + config.balance_weight * (1.0 - loads[d] / capacity).max(-1.0);
                if utility > best.1 {
                    best = (d, utility);
                }
            }
            let row = &mut probs[v as usize * m..(v as usize + 1) * m];
            for (d, p) in row.iter_mut().enumerate() {
                if d == best.0 {
                    *p += config.alpha * (1.0 - *p);
                } else {
                    *p *= 1.0 - config.alpha;
                    *p = *p * (1.0 - config.beta) + config.beta / (m - 1) as f64;
                }
            }
            // Renormalize against drift.
            let sum: f64 = row.iter().sum();
            row.iter_mut().for_each(|p| *p /= sum);
        }
    }

    // Final assignment: each automaton's most probable action.
    for v in 0..n {
        let row = &probs[v * m..(v + 1) * m];
        let best = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(d, _)| d)
            .unwrap_or(0);
        assignment[v] = best as DcId;
    }
    EdgeCutState::from_assignment(geo, env, assignment, &profile, num_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), 6);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(6)), ec2_eight_regions())
    }

    #[test]
    fn improves_locality_over_random_start() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let trained = revolver(&geo, &env, RevolverConfig::default(), p.clone(), 10.0);
        let natural = EdgeCutState::from_assignment(&geo, &env, geo.locations.clone(), &p, 10.0);
        assert!(
            trained.internal_edge_fraction() > natural.internal_edge_fraction(),
            "trained {} vs natural {}",
            trained.internal_edge_fraction(),
            natural.internal_edge_fraction()
        );
    }

    #[test]
    fn deterministic() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let a = revolver(&geo, &env, RevolverConfig::default(), p.clone(), 10.0);
        let b = revolver(&geo, &env, RevolverConfig::default(), p, 10.0);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn balance_term_prevents_collapse() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = revolver(&geo, &env, RevolverConfig::default(), p, 10.0);
        let max_share =
            s.vertices_per_dc().iter().copied().max().unwrap() as f64 / geo.num_vertices() as f64;
        assert!(max_share < 0.9, "one DC swallowed {max_share} of the graph");
    }
}
