//! Geo-Cut: heterogeneity-aware heuristic vertex-cut under a WAN budget
//! (Zhou, Ibrahim & He, ICDCS '17 [1]).
//!
//! Reimplementation of the two-phase structure: edges start at their
//! destination's natural DC (zero movement), then several greedy
//! refinement passes move individual edges to the DC that most reduces the
//! bandwidth-weighted bottleneck transfer time, subject to the budget.
//! Masters stay at natural locations (Geo-Cut's budget is about WAN usage,
//! not data relocation). Each candidate move is evaluated *exactly* via
//! per-(vertex, DC) edge counts — O(1) per candidate — so accepted moves
//! monotonically improve the true Eq 1 objective.
//!
//! Candidate evaluation follows the batched-kernel structure of
//! [`geopart::kernel`]: the edge's endpoint cells are probed against the
//! *frozen* counts/loads (threshold transitions via
//! [`geopart::kernel::count_transitions`], the same primitive the hybrid-
//! and vertex-cut evaluators use) into a reusable per-DC delta arena, and
//! only the accepted move mutates the refiner — no mutate/restore churn
//! per rejected candidate.
//!
//! Geo-Cut remains greedy and edge-local: it cannot group a low-degree
//! vertex's in-edges the way hybrid-cut does, which is why the paper's
//! Exp#1/Exp#2 show it satisfying budgets yet trailing RLCut badly on
//! transfer time, at much higher overhead than the hash/greedy baselines.

use geograph::fxhash::mix64;
use geograph::GeoGraph;
use geopart::kernel::count_transitions;
use geopart::vertexcut::{MasterRule, VertexCutState};
use geopart::{DcId, TrafficProfile};
use geosim::CloudEnv;
use parking_lot::Mutex;
use rlcut::WorkerPool;

/// Tuning knobs for Geo-Cut.
#[derive(Clone, Copy, Debug)]
pub struct GeoCutConfig {
    /// Budget on inter-DC communication cost (dollars), charged through
    /// the same Eq 5 pricing as every other method.
    pub budget: f64,
    /// Number of refinement passes over all edges.
    pub refinement_passes: usize,
    pub seed: u64,
    /// Worker threads for the batched refinement mode. 1 (the default)
    /// keeps the exact sequential scan; >1 fans each batch's candidate
    /// scans out over a persistent [`rlcut::WorkerPool`], with accepted
    /// moves re-validated against the live refiner at apply time.
    pub threads: usize,
    /// Frozen-snapshot batch length for the parallel mode. Thread-count
    /// independent so batch boundaries — and therefore the refined plan —
    /// are identical at any worker count.
    pub batch: usize,
}

impl GeoCutConfig {
    pub fn new(budget: f64) -> Self {
        GeoCutConfig { budget, refinement_passes: 3, seed: 42, threads: 1, batch: 64 }
    }

    /// Builder-style worker-thread count (see [`GeoCutConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    /// Builder-style batch length (see [`GeoCutConfig::batch`]).
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }
}

/// Incrementally maintained vertex-cut loads under natural masters.
struct Refiner<'a> {
    m: usize,
    env: &'a CloudEnv,
    masters: &'a [DcId],
    /// gather/apply per-vertex message sizes.
    g: Vec<f64>,
    a: Vec<f64>,
    /// Per-(vertex, DC) incident-edge counts, interleaved like
    /// `PlacementState`: `counts[(x*m + d)*2]` in-edges, `+ 1` out-edges —
    /// each probe reads both lanes of one cell, so they share a cache line.
    counts: Vec<u32>,
    gu: Vec<f64>,
    gd: Vec<f64>,
    au: Vec<f64>,
    ad: Vec<f64>,
    /// Total runtime upload cost (Eq 5 over the whole job).
    cost: f64,
    num_iterations: f64,
}

/// Reusable per-DC load/cost delta arena for frozen-state candidate
/// evaluation — the Geo-Cut analogue of the geopart kernel's destination
/// rows.
#[derive(Default)]
struct CandidateDeltas {
    gu: Vec<f64>,
    gd: Vec<f64>,
    au: Vec<f64>,
    ad: Vec<f64>,
    cost: f64,
}

impl CandidateDeltas {
    fn reset(&mut self, m: usize) {
        for buf in [&mut self.gu, &mut self.gd, &mut self.au, &mut self.ad] {
            buf.resize(m, 0.0);
            buf.fill(0.0);
        }
        self.cost = 0.0;
    }
}

impl<'a> Refiner<'a> {
    /// Applies the count delta of one edge endpoint side and adjusts loads
    /// on message-count threshold transitions. `d_in`/`d_out` are ±1/0.
    fn touch(&mut self, x: u32, dc: usize, d_in: i64, d_out: i64) {
        let master = self.masters[x as usize] as usize;
        let idx = (x as usize * self.m + dc) * 2;
        let in_old = self.counts[idx] as i64;
        let out_old = self.counts[idx + 1] as i64;
        self.counts[idx] = (in_old + d_in) as u32;
        self.counts[idx + 1] = (out_old + d_out) as u32;
        if dc == master {
            return;
        }
        // All vertices are high under vertex-cut (full GAS): gather is one
        // g_x message from dc to master while in-edges remain, apply one
        // a_x message from master to dc while a mirror remains.
        let (gt, at) = count_transitions(true, in_old, out_old, d_in, d_out);
        if gt != 0.0 {
            let gx = gt * self.g[x as usize];
            self.gu[dc] += gx;
            self.gd[master] += gx;
            self.cost += gx * self.env.price(dc as DcId) * self.num_iterations;
        }
        if at != 0.0 {
            let ax = at * self.a[x as usize];
            self.au[master] += ax;
            self.ad[dc] += ax;
            self.cost += ax * self.env.price(master as DcId) * self.num_iterations;
        }
    }

    /// Stages the load/cost delta of changing cell `(x, dc)` by
    /// `(d_in, d_out)` into `deltas`, against the frozen counts — the
    /// read-only twin of [`Self::touch`]. A cell touched twice in one
    /// candidate must be probed once with the combined delta (threshold
    /// transitions are non-linear), which is why self-loops are combined
    /// by the caller.
    fn probe(&self, x: u32, dc: usize, d_in: i64, d_out: i64, deltas: &mut CandidateDeltas) {
        let master = self.masters[x as usize] as usize;
        if dc == master {
            return;
        }
        let idx = (x as usize * self.m + dc) * 2;
        let (gt, at) = count_transitions(
            true,
            self.counts[idx] as i64,
            self.counts[idx + 1] as i64,
            d_in,
            d_out,
        );
        if gt != 0.0 {
            let gx = gt * self.g[x as usize];
            deltas.gu[dc] += gx;
            deltas.gd[master] += gx;
            deltas.cost += gx * self.env.price(dc as DcId) * self.num_iterations;
        }
        if at != 0.0 {
            let ax = at * self.a[x as usize];
            deltas.au[master] += ax;
            deltas.ad[dc] += ax;
            deltas.cost += ax * self.env.price(master as DcId) * self.num_iterations;
        }
    }

    /// Stages moving edge `(u, v)` from `from` to `to` into `deltas`
    /// without mutating the refiner. Valid because the `from` and `to`
    /// cells are disjoint (`from != to`), so every probe reads unchanged
    /// frozen counts.
    fn probe_edge_move(
        &self,
        u: u32,
        v: u32,
        from: usize,
        to: usize,
        deltas: &mut CandidateDeltas,
    ) {
        deltas.reset(self.m);
        if u == v {
            self.probe(v, from, -1, -1, deltas);
            self.probe(v, to, 1, 1, deltas);
        } else {
            self.probe(v, from, -1, 0, deltas);
            self.probe(v, to, 1, 0, deltas);
            self.probe(u, from, 0, -1, deltas);
            self.probe(u, to, 0, 1, deltas);
        }
    }

    fn move_edge(&mut self, u: u32, v: u32, from: usize, to: usize) {
        self.touch(v, from, -1, 0);
        self.touch(v, to, 1, 0);
        self.touch(u, from, 0, -1);
        self.touch(u, to, 0, 1);
    }

    fn transfer_time(&self) -> f64 {
        geosim::transfer::stage_time_rows(&self.gu, &self.gd, self.env)
            + geosim::transfer::stage_time_rows(&self.au, &self.ad, self.env)
    }

    /// [`Self::transfer_time`] with `deltas` overlaid on the live loads.
    /// Divides against the same bandwidth lanes as the shared Eq 2/3
    /// reduction — `max` is a selection, so the base and overlay paths
    /// agree exactly on unchanged DCs.
    fn transfer_time_with(&self, deltas: &CandidateDeltas) -> f64 {
        let up = self.env.uplinks();
        let down = self.env.downlinks();
        let mut gather = 0.0f64;
        let mut apply = 0.0f64;
        for d in 0..self.m {
            gather = gather.max(
                ((self.gu[d] + deltas.gu[d]) / up[d]).max((self.gd[d] + deltas.gd[d]) / down[d]),
            );
            apply = apply.max(
                ((self.au[d] + deltas.au[d]) / up[d]).max((self.ad[d] + deltas.ad[d]) / down[d]),
            );
        }
        gather + apply
    }
}

/// Runs Geo-Cut and returns the resulting vertex-cut plan. With
/// `config.threads > 1` this spins up a private [`WorkerPool`] for the
/// run; use [`geocut_with_pool`] to share a pool across runs (the bench
/// drivers do).
pub fn geocut(
    geo: &GeoGraph,
    env: &CloudEnv,
    config: GeoCutConfig,
    profile: TrafficProfile,
    num_iterations: f64,
) -> VertexCutState {
    let pool = (config.threads > 1).then(|| WorkerPool::new(config.threads));
    geocut_with_pool(geo, env, config, profile, num_iterations, pool.as_ref())
}

/// [`geocut`] against a caller-provided worker pool. `pool: None` (or a
/// one-worker pool) runs the exact sequential refinement; otherwise each
/// batch of [`GeoCutConfig::batch`] edges has its candidate scans run by
/// the pool against the refiner *frozen at batch entry*, and the caller
/// thread then re-validates each frozen pick against the **live** refiner
/// before applying — so accepted moves stay exactly monotone on the true
/// objective and the budget is never exceeded, while the expensive
/// O(batch · M) scan parallelizes. Worker striding only decides who scans
/// an edge, never the outcome, so the refined plan is identical for every
/// pool size.
pub fn geocut_with_pool(
    geo: &GeoGraph,
    env: &CloudEnv,
    config: GeoCutConfig,
    profile: TrafficProfile,
    num_iterations: f64,
    pool: Option<&WorkerPool>,
) -> VertexCutState {
    let m = env.num_dcs();
    let n = geo.num_vertices();
    let edges: Vec<(u32, u32)> = geo.graph.edges().collect();
    let mut assignment: Vec<DcId> = edges.iter().map(|&(_, v)| geo.locations[v as usize]).collect();

    let mut refiner = Refiner {
        m,
        env,
        masters: &geo.locations,
        g: (0..n as u32).map(|v| profile.g(v)).collect(),
        a: (0..n as u32).map(|v| profile.a(v)).collect(),
        counts: vec![0; n * m * 2],
        gu: vec![0.0; m],
        gd: vec![0.0; m],
        au: vec![0.0; m],
        ad: vec![0.0; m],
        cost: 0.0,
        num_iterations,
    };
    for (&(u, v), &d) in edges.iter().zip(&assignment) {
        refiner.touch(v, d as usize, 1, 0);
        refiner.touch(u, d as usize, 0, 1);
    }

    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_unstable_by_key(|&i| mix64(i as u64 ^ config.seed));
    // Candidate destinations are evaluated against the *frozen* refiner via
    // a reusable delta arena — no mutate/restore churn per rejected
    // candidate. Only the winning move mutates the refiner.
    match pool.filter(|p| p.threads() > 1) {
        None => {
            let mut deltas = CandidateDeltas::default();
            for _ in 0..config.refinement_passes {
                let mut improved = false;
                for &i in &order {
                    let (u, v) = edges[i];
                    let current = assignment[i] as usize;
                    let base_time = refiner.transfer_time();
                    let mut best = (current, base_time);
                    for d in 0..m {
                        if d == current {
                            continue;
                        }
                        refiner.probe_edge_move(u, v, current, d, &mut deltas);
                        let t = refiner.transfer_time_with(&deltas);
                        let feasible = refiner.cost + deltas.cost <= config.budget;
                        if feasible && t < best.1 {
                            best = (d, t);
                        }
                    }
                    if best.0 != current {
                        refiner.move_edge(u, v, current, best.0);
                        assignment[i] = best.0 as DcId;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        Some(pool) => {
            let threads = pool.threads();
            // Per-worker delta arenas and pick lists, allocated once and
            // reused across every batch of every pass (the pool's
            // step-resident discipline).
            let delta_slots: Vec<Mutex<CandidateDeltas>> =
                (0..threads).map(|_| Mutex::new(CandidateDeltas::default())).collect();
            let picks_slots: Vec<Mutex<Vec<(usize, usize)>>> =
                (0..threads).map(|_| Mutex::new(Vec::new())).collect();
            let mut live = CandidateDeltas::default();
            for _ in 0..config.refinement_passes {
                let mut improved = false;
                for chunk in order.chunks(config.batch) {
                    let frozen_time = refiner.transfer_time();
                    pool.run_on_all(&|w, _| {
                        let mut deltas = delta_slots[w].lock();
                        let mut picks = picks_slots[w].lock();
                        picks.clear();
                        for j in (w..chunk.len()).step_by(threads) {
                            let i = chunk[j];
                            let (u, v) = edges[i];
                            let current = assignment[i] as usize;
                            let mut best = (current, frozen_time);
                            for d in 0..m {
                                if d == current {
                                    continue;
                                }
                                refiner.probe_edge_move(u, v, current, d, &mut deltas);
                                let t = refiner.transfer_time_with(&deltas);
                                let feasible = refiner.cost + deltas.cost <= config.budget;
                                if feasible && t < best.1 {
                                    best = (d, t);
                                }
                            }
                            if best.0 != current {
                                picks.push((j, best.0));
                            }
                        }
                    })
                    .unwrap_or_else(|e| panic!("geocut candidate scan: {e}"));
                    let mut picks: Vec<(usize, usize)> = picks_slots
                        .iter()
                        .flat_map(|s| s.lock().iter().copied().collect::<Vec<_>>())
                        .collect();
                    // Batch order, not worker order: apply order must be a
                    // pure function of the edge permutation.
                    picks.sort_unstable_by_key(|&(j, _)| j);
                    for (j, d) in picks {
                        let i = chunk[j];
                        let (u, v) = edges[i];
                        let current = assignment[i] as usize;
                        if d == current {
                            continue;
                        }
                        // Frozen picks can stale as earlier applies land;
                        // re-validate against the live refiner so accepts
                        // stay monotone and within budget.
                        refiner.probe_edge_move(u, v, current, d, &mut live);
                        let t = refiner.transfer_time_with(&live);
                        let feasible = refiner.cost + live.cost <= config.budget;
                        if feasible && t < refiner.transfer_time() {
                            refiner.move_edge(u, v, current, d);
                            assignment[i] = d as DcId;
                            improved = true;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
        }
    }

    VertexCutState::from_edge_assignment(
        geo,
        env,
        &assignment,
        MasterRule::Natural,
        profile,
        num_iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(1024, 8192), 5);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(5)), ec2_eight_regions())
    }

    fn natural_plan(geo: &GeoGraph, env: &CloudEnv, p: &TrafficProfile) -> VertexCutState {
        let natural: Vec<DcId> =
            geo.graph.edges().map(|(_, v)| geo.locations[v as usize]).collect();
        VertexCutState::from_edge_assignment(
            geo,
            env,
            &natural,
            MasterRule::Natural,
            p.clone(),
            10.0,
        )
    }

    #[test]
    fn improves_over_natural_placement() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let refined = geocut(&geo, &env, GeoCutConfig::new(budget), p.clone(), 10.0);
        let base = natural_plan(&geo, &env, &p);
        // Acceptance is exact and monotone: refined must not be worse, and
        // on a heterogeneous environment it should find real improvements.
        assert!(
            refined.objective(&env).transfer_time < base.objective(&env).transfer_time,
            "refined {} vs natural {}",
            refined.objective(&env).transfer_time,
            base.objective(&env).transfer_time
        );
    }

    #[test]
    fn respects_budget() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let s = geocut(&geo, &env, GeoCutConfig::new(budget), p, 10.0);
        let obj = s.objective(&env);
        assert!(
            obj.total_cost() <= budget * (1.0 + 1e-9),
            "cost {} budget {budget}",
            obj.total_cost()
        );
    }

    #[test]
    fn deterministic() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let a = geocut(&geo, &env, GeoCutConfig::new(budget), p.clone(), 10.0);
        let b = geocut(&geo, &env, GeoCutConfig::new(budget), p, 10.0);
        assert_eq!(a.edge_dcs(), b.edge_dcs());
    }

    #[test]
    fn parallel_deterministic_across_thread_counts() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let run = |threads| {
            geocut(&geo, &env, GeoCutConfig::new(budget).with_threads(threads), p.clone(), 10.0)
        };
        let two = run(2);
        for threads in [4usize, 8] {
            assert_eq!(two.edge_dcs(), run(threads).edge_dcs(), "{threads} threads diverged");
        }
    }

    #[test]
    fn parallel_mode_improves_and_respects_budget() {
        // Apply-time re-validation keeps the parallel refiner exactly
        // monotone on the live objective and inside the budget.
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let refined =
            geocut(&geo, &env, GeoCutConfig::new(budget).with_threads(4), p.clone(), 10.0);
        let base = natural_plan(&geo, &env, &p);
        let obj = refined.objective(&env);
        assert!(obj.transfer_time < base.objective(&env).transfer_time);
        assert!(
            obj.total_cost() <= budget * (1.0 + 1e-9),
            "cost {} budget {budget}",
            obj.total_cost()
        );
    }

    #[test]
    fn shared_pool_matches_private_pool() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let config = GeoCutConfig::new(budget).with_threads(4);
        let private = geocut(&geo, &env, config, p.clone(), 10.0);
        let pool = rlcut::WorkerPool::new(4);
        let shared = geocut_with_pool(&geo, &env, config, p, 10.0, Some(&pool));
        assert_eq!(private.edge_dcs(), shared.edge_dcs());
    }

    #[test]
    fn tight_budget_stays_near_natural() {
        // With a near-zero budget, barely any move is feasible; the result
        // must still be valid and within budget.
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let base = natural_plan(&geo, &env, &p);
        let tight = base.objective(&env).total_cost(); // natural's own cost
        let s = geocut(&geo, &env, GeoCutConfig::new(tight), p, 10.0);
        assert!(s.objective(&env).total_cost() <= tight * (1.0 + 1e-9));
    }
}
