//! Ginger: PowerLyra's Fennel-derived greedy hybrid-cut [6].
//!
//! Low-degree vertices stream (in a hash-shuffled order) and each picks the
//! DC maximizing in-neighbor co-location minus a Fennel-style balance
//! penalty; high-degree vertices are hashed. This is the strongest
//! single-DC-era baseline in the paper — and still loses to RLCut in
//! heterogeneous networks because its score knows nothing about bandwidths
//! or prices (Fig 3).

use geograph::fxhash::mix64;
use geograph::{GeoGraph, VertexId};
use geopart::{DcId, HybridState, TrafficProfile};
use geosim::CloudEnv;
use parking_lot::Mutex;
use rlcut::WorkerPool;

/// Tuning knobs for Ginger.
#[derive(Clone, Copy, Debug)]
pub struct GingerConfig {
    /// Weight of the balance penalty relative to the locality score.
    pub balance_weight: f64,
    /// Degree threshold θ for the hybrid-cut classification.
    pub theta: usize,
    pub seed: u64,
    /// Worker threads for the batched streaming mode. 1 (the default)
    /// keeps the exact sequential stream; >1 fans the `O(deg)` locality
    /// sweeps of each batch out over a persistent [`rlcut::WorkerPool`].
    pub threads: usize,
    /// Frozen-snapshot batch length for the parallel mode. Thread-count
    /// *independent* on purpose: batch boundaries (not worker striding)
    /// decide which in-batch co-placements the locality sweep misses, so a
    /// fixed batch makes the parallel plan identical at any thread count.
    pub batch: usize,
}

impl GingerConfig {
    pub fn new(theta: usize, seed: u64) -> Self {
        GingerConfig { balance_weight: 1.0, theta, seed, threads: 1, batch: 256 }
    }

    /// Builder-style worker-thread count (see [`GingerConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    /// Builder-style batch length (see [`GingerConfig::batch`]).
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch = batch;
        self
    }
}

/// Runs Ginger and returns the resulting hybrid-cut plan. With
/// `config.threads > 1` this spins up a private [`WorkerPool`] for the
/// run; use [`ginger_with_pool`] to share a pool across runs (the bench
/// drivers do).
pub fn ginger<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    config: GingerConfig,
    profile: TrafficProfile,
    num_iterations: f64,
) -> HybridState<'g> {
    let pool = (config.threads > 1).then(|| WorkerPool::new(config.threads));
    ginger_with_pool(geo, env, config, profile, num_iterations, pool.as_ref())
}

/// [`ginger`] against a caller-provided worker pool. `pool: None` (or a
/// one-worker pool) runs the exact sequential stream; otherwise low-degree
/// batches of [`GingerConfig::batch`] vertices have their locality sweeps
/// computed by the pool against the masters *frozen at batch entry*, and
/// the caller thread then streams through the batch in order combining
/// each frozen locality with the **live** balance counters. The plan is
/// identical for every pool size (worker striding only decides who
/// computes a sweep, never its value).
pub fn ginger_with_pool<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    config: GingerConfig,
    profile: TrafficProfile,
    num_iterations: f64,
    pool: Option<&WorkerPool>,
) -> HybridState<'g> {
    let n = geo.num_vertices();
    let m = env.num_dcs();
    let is_high = geograph::degree::classify_high_degree(&geo.graph, config.theta);
    let mut masters: Vec<Option<DcId>> = vec![None; n];

    // High-degree vertices: hashed placement (their in-edges follow their
    // sources anyway, so the master only anchors apply-stage fan-out).
    for v in 0..n as VertexId {
        if is_high[v as usize] {
            masters[v as usize] = Some((mix64(v as u64 ^ config.seed) % m as u64) as DcId);
        }
    }

    // Low-degree vertices stream in a hash-shuffled order.
    let mut order: Vec<VertexId> = (0..n as VertexId).filter(|&v| !is_high[v as usize]).collect();
    order.sort_unstable_by_key(|&v| mix64(v as u64 ^ config.seed.rotate_left(31)));

    // Balance bookkeeping: vertices and (low-degree) edges per DC.
    let mut vertices_per_dc = vec![0f64; m];
    let mut edges_per_dc = vec![0f64; m];
    let expected_vertices = n as f64 / m as f64;
    let expected_edges = geo.num_edges() as f64 / m as f64;

    // Frozen locality of one vertex: in-neighbors already mastered at d
    // (their data is local to v's in-edges if v lands at d) plus low
    // out-neighbors at d (v already needs a presence there). ONE
    // neighborhood sweep per vertex (the one-sweep structure of
    // `geopart::kernel`) instead of re-walking the neighborhood for every
    // candidate DC: O(deg + M) per vertex rather than O(deg · M). Locality
    // scores are integral sums of 1.0 — exact in f64.
    let sweep = |v: VertexId, masters: &[Option<DcId>], locality: &mut [f64]| {
        locality.fill(0.0);
        for &u in geo.graph.in_neighbors(v) {
            if let Some(d) = masters[u as usize] {
                locality[d as usize] += 1.0;
            }
        }
        for &w in geo.graph.out_neighbors(v) {
            if !is_high[w as usize] {
                if let Some(d) = masters[w as usize] {
                    locality[d as usize] += 1.0;
                }
            }
        }
    };
    // Greedy pick combining a locality row with the LIVE balance counters;
    // shared verbatim by both paths so they differ only in what the
    // locality was computed against.
    let place = |v: VertexId,
                 locality: &[f64],
                 vertices_per_dc: &mut [f64],
                 edges_per_dc: &mut [f64],
                 masters: &mut [Option<DcId>]| {
        let mut best = (0usize, f64::NEG_INFINITY);
        for (d, &loc) in locality.iter().enumerate() {
            let balance = config.balance_weight
                * (vertices_per_dc[d] / expected_vertices + edges_per_dc[d] / expected_edges)
                / 2.0;
            let score = loc - balance;
            if score > best.1 {
                best = (d, score);
            }
        }
        masters[v as usize] = Some(best.0 as DcId);
        vertices_per_dc[best.0] += 1.0;
        edges_per_dc[best.0] += geo.graph.in_degree(v) as f64;
    };

    match pool.filter(|p| p.threads() > 1) {
        None => {
            let mut locality = vec![0f64; m];
            for &v in &order {
                sweep(v, &masters, &mut locality);
                place(v, &locality, &mut vertices_per_dc, &mut edges_per_dc, &mut masters);
            }
        }
        Some(pool) => {
            let threads = pool.threads();
            // Per-worker output rows: worker w owns batch indices
            // j ≡ w (mod threads), appending one m-wide locality row per
            // index — disjoint slots, reassembled by index math below.
            let outs: Vec<Mutex<Vec<f64>>> = (0..threads).map(|_| Mutex::new(Vec::new())).collect();
            for chunk in order.chunks(config.batch) {
                pool.run_on_all(&|w, _| {
                    let mut rows = outs[w].lock();
                    rows.clear();
                    for j in (w..chunk.len()).step_by(threads) {
                        let base = rows.len();
                        rows.resize(base + m, 0.0);
                        sweep(chunk[j], &masters, &mut rows[base..]);
                    }
                })
                .unwrap_or_else(|e| panic!("ginger locality sweep: {e}"));
                let rows: Vec<_> = outs.iter().map(|o| o.lock()).collect();
                for (j, &v) in chunk.iter().enumerate() {
                    let row = &rows[j % threads][(j / threads) * m..][..m];
                    place(v, row, &mut vertices_per_dc, &mut edges_per_dc, &mut masters);
                }
            }
        }
    }

    let masters: Vec<DcId> = masters.into_iter().map(|d| d.unwrap()).collect();
    HybridState::from_masters(geo, env, masters, config.theta, profile, num_iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(1024, 8192), 4);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(4)), ec2_eight_regions())
    }

    fn theta(geo: &GeoGraph) -> usize {
        geograph::degree::suggest_theta(&geo.graph, 0.05)
    }

    #[test]
    fn beats_hashpl_on_wan_usage() {
        // Greedy co-location must beat blind hashing on WAN bytes — the
        // reason Ginger is the strongest non-geo baseline in Fig 10.
        let (geo, env) = setup();
        let t = theta(&geo);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let g = ginger(&geo, &env, GingerConfig::new(t, 1), p.clone(), 10.0);
        let h = crate::hashpl(&geo, &env, t, p, 10.0, 1);
        assert!(
            g.core().wan_bytes_per_iteration() < h.core().wan_bytes_per_iteration(),
            "ginger {} vs hashpl {}",
            g.core().wan_bytes_per_iteration(),
            h.core().wan_bytes_per_iteration()
        );
    }

    #[test]
    fn lower_replication_than_hashpl() {
        let (geo, env) = setup();
        let t = theta(&geo);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let g = ginger(&geo, &env, GingerConfig::new(t, 1), p.clone(), 10.0);
        let h = crate::hashpl(&geo, &env, t, p, 10.0, 1);
        assert!(g.core().replication_factor() <= h.core().replication_factor());
    }

    #[test]
    fn balance_penalty_keeps_dcs_populated() {
        let (geo, env) = setup();
        let t = theta(&geo);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let g = ginger(&geo, &env, GingerConfig::new(t, 1), p, 10.0);
        let mut per_dc = vec![0u64; env.num_dcs()];
        for &d in g.core().masters() {
            per_dc[d as usize] += 1;
        }
        assert!(per_dc.iter().all(|&c| c > 0), "some DC left empty: {per_dc:?}");
        assert!(geopart::metrics::imbalance(&per_dc) < 2.5, "{per_dc:?}");
    }

    #[test]
    fn deterministic() {
        let (geo, env) = setup();
        let t = theta(&geo);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let a = ginger(&geo, &env, GingerConfig::new(t, 9), p.clone(), 10.0);
        let b = ginger(&geo, &env, GingerConfig::new(t, 9), p, 10.0);
        assert_eq!(a.core().masters(), b.core().masters());
    }

    #[test]
    fn parallel_deterministic_across_thread_counts() {
        let (geo, env) = setup();
        let t = theta(&geo);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let run = |threads| {
            ginger(&geo, &env, GingerConfig::new(t, 9).with_threads(threads), p.clone(), 10.0)
        };
        let two = run(2);
        for threads in [4usize, 8] {
            assert_eq!(
                two.core().masters(),
                run(threads).core().masters(),
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn parallel_mode_keeps_quality() {
        // The frozen-batch stream misses in-batch co-placements, but it
        // must stay a real greedy: beating hashing on WAN bytes and
        // keeping every DC populated, like the sequential test above.
        let (geo, env) = setup();
        let t = theta(&geo);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let g = ginger(&geo, &env, GingerConfig::new(t, 1).with_threads(4), p.clone(), 10.0);
        let h = crate::hashpl(&geo, &env, t, p, 10.0, 1);
        assert!(g.core().wan_bytes_per_iteration() < h.core().wan_bytes_per_iteration());
        let mut per_dc = vec![0u64; env.num_dcs()];
        for &d in g.core().masters() {
            per_dc[d as usize] += 1;
        }
        assert!(per_dc.iter().all(|&c| c > 0), "some DC left empty: {per_dc:?}");
    }

    #[test]
    fn shared_pool_matches_private_pool() {
        // The bench drivers reuse one pool across baseline runs; routing
        // through a caller-provided pool must not change the plan.
        let (geo, env) = setup();
        let t = theta(&geo);
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = GingerConfig::new(t, 3).with_threads(4);
        let private = ginger(&geo, &env, config, p.clone(), 10.0);
        let pool = rlcut::WorkerPool::new(4);
        let shared = ginger_with_pool(&geo, &env, config, p, 10.0, Some(&pool));
        assert_eq!(private.core().masters(), shared.core().masters());
    }
}
