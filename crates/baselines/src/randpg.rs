//! RandPG: balanced p-way vertex-cut by random edge assignment
//! (the PowerGraph default [3] — the paper's normalization baseline).

use geograph::fxhash::mix64;
use geograph::GeoGraph;
use geopart::vertexcut::{MasterRule, VertexCutState};
use geopart::{DcId, TrafficProfile};
use geosim::CloudEnv;

/// Randomly assigns every edge to one of the `env.num_dcs()` partitions.
/// Deterministic for a fixed `seed` (hash-based, so per-edge independent).
pub fn randpg(
    geo: &GeoGraph,
    env: &CloudEnv,
    profile: TrafficProfile,
    num_iterations: f64,
    seed: u64,
) -> VertexCutState {
    let m = env.num_dcs() as u64;
    let edge_dcs: Vec<DcId> =
        (0..geo.num_edges() as u64).map(|i| (mix64(i ^ seed) % m) as DcId).collect();
    VertexCutState::from_edge_assignment(
        geo,
        env,
        &edge_dcs,
        MasterRule::PreferNatural,
        profile,
        num_iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(1024, 8192), 2);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(2)), ec2_eight_regions())
    }

    #[test]
    fn balanced_edges() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = randpg(&geo, &env, p, 10.0, 1);
        let imb = geopart::metrics::imbalance(s.core().edges_per_dc());
        assert!(imb < 1.2, "random assignment should balance edges: {imb}");
    }

    #[test]
    fn high_replication_factor() {
        // Random vertex-cut scatters each vertex's edges over all DCs —
        // the paper reports λ ≈ 4.4 on Twitter with 8 partitions.
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let s = randpg(&geo, &env, p, 10.0, 1);
        assert!(s.replication_factor() > 2.0, "λ = {}", s.replication_factor());
    }

    #[test]
    fn deterministic_per_seed() {
        let (geo, env) = setup();
        let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let a = randpg(&geo, &env, p.clone(), 10.0, 7);
        let b = randpg(&geo, &env, p, 10.0, 7);
        assert_eq!(a.core().masters(), b.core().masters());
        assert_eq!(a.objective(&env).transfer_time, b.objective(&env).transfer_time);
    }
}
