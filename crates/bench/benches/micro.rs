//! Micro-benchmarks of the hot paths: graph generation, plan
//! construction, the incremental move evaluator (the score-function
//! workhorse), move application, and one full RLCut training step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geograph::generators::{rmat, RmatConfig};
use geograph::locality::LocalityConfig;
use geograph::GeoGraph;
use geopart::{HybridState, TrafficProfile};
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;
use std::hint::black_box;

fn setup(n: usize) -> (GeoGraph, geosim::CloudEnv) {
    let g = rmat(&RmatConfig::social(n, n * 16), 42);
    (GeoGraph::from_graph(g, &LocalityConfig::paper_default(42)), ec2_eight_regions())
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for n in [1usize << 12, 1 << 14] {
        group.bench_with_input(BenchmarkId::new("rmat", n), &n, |b, &n| {
            b.iter(|| rmat(&RmatConfig::social(n, n * 16), black_box(7)))
        });
    }
    group.finish();
}

fn bench_plan_construction(c: &mut Criterion) {
    let (geo, env) = setup(1 << 13);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    c.bench_function("hybrid_state_build_8k_vertices", |b| {
        b.iter(|| HybridState::natural(&geo, &env, 16, profile.clone(), 10.0))
    });
}

fn bench_move_evaluation(c: &mut Criterion) {
    let (geo, env) = setup(1 << 13);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let state = HybridState::natural(&geo, &env, 16, profile, 10.0);
    c.bench_function("evaluate_move", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % geo.num_vertices() as u32;
            black_box(state.evaluate_move(&env, v, (v % 8) as u8))
        })
    });
}

/// Batched one-sweep kernel vs M independent per-candidate evaluations, on
/// the 8-DC TW-analog (scaled Twitter-shaped R-MAT). Benchmarked both over
/// a round-robin vertex stream and pinned to the highest-degree vertex —
/// the regime the batching targets (acceptance: batched ≥ 1.5× there).
fn bench_batched_evaluation(c: &mut Criterion) {
    let g = geograph::datasets::Dataset::Twitter.generate(0.0004, 42);
    let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(42));
    let env = ec2_eight_regions();
    let m = env.num_dcs();
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let state = HybridState::natural(&geo, &env, 16, profile, 10.0);
    let hub = (0..geo.num_vertices() as u32).max_by_key(|&v| geo.graph.degree(v)).unwrap();

    let mut group = c.benchmark_group("evaluate_all_moves_tw8dc");
    let mut scratch = geopart::MoveScratch::new();
    group.bench_function("batched_sweep", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % geo.num_vertices() as u32;
            black_box(state.evaluate_all_moves(&env, v, &mut scratch).last().copied())
        })
    });
    group.bench_function("per_candidate_x8", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % geo.num_vertices() as u32;
            let mut last = None;
            for d in 0..m as u8 {
                last = Some(state.evaluate_move_with(&env, v, d, &mut scratch));
            }
            black_box(last)
        })
    });
    group.bench_function("batched_sweep_hub_vertex", |b| {
        b.iter(|| black_box(state.evaluate_all_moves(&env, hub, &mut scratch).last().copied()))
    });
    group.bench_function("per_candidate_x8_hub_vertex", |b| {
        b.iter(|| {
            let mut last = None;
            for d in 0..m as u8 {
                last = Some(state.evaluate_move_with(&env, hub, d, &mut scratch));
            }
            black_box(last)
        })
    });
    group.finish();
}

fn bench_move_application(c: &mut Criterion) {
    let (geo, env) = setup(1 << 13);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let mut state = HybridState::natural(&geo, &env, 16, profile, 10.0);
    c.bench_function("apply_move", |b| {
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 1) % geo.num_vertices() as u32;
            state.apply_move(&env, v, (v % 8) as u8);
        })
    });
}

fn bench_training_step(c: &mut Criterion) {
    let (geo, env) = setup(1 << 12);
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let mut group = c.benchmark_group("train_one_step_4k_vertices");
    group.sample_size(10);
    for threads in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("full_sampling", threads),
            &threads,
            |b, &threads| {
                let config = RlCutConfig::new(budget).with_max_steps(1).with_threads(threads);
                b.iter(|| rlcut::partition(&geo, &env, profile.clone(), 10.0, &config))
            },
        );
    }
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let (geo, _) = setup(1 << 13);
    c.bench_function("pagerank_10_iters_8k", |b| {
        b.iter(|| geoengine::algorithms::pagerank(&geo.graph, 10, 0.85))
    });
}

criterion_group!(
    benches,
    bench_generation,
    bench_plan_construction,
    bench_move_evaluation,
    bench_batched_evaluation,
    bench_move_application,
    bench_training_step,
    bench_pagerank
);
criterion_main!(benches);
