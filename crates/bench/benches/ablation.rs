//! Ablation benches for the design choices DESIGN.md calls out:
//! migration batching (§V-A), straggler mitigation (§V-B), degree-aware
//! sampling (§V-C), and penalty-signal updates (Fig 6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geograph::generators::{rmat, RmatConfig};
use geograph::locality::LocalityConfig;
use geograph::GeoGraph;
use geopart::TrafficProfile;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

fn setup() -> (GeoGraph, geosim::CloudEnv, f64) {
    let g = rmat(&RmatConfig::social(1 << 12, 1 << 16), 42);
    let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(42));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    (geo, env, budget)
}

fn base_config(budget: f64) -> RlCutConfig {
    RlCutConfig::new(budget).with_max_steps(3).with_threads(4)
}

fn bench_batching(c: &mut Criterion) {
    let (geo, env, budget) = setup();
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let mut group = c.benchmark_group("ablation_batch_size");
    group.sample_size(10);
    for batch in [1usize, 8, 48] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let config = base_config(budget).with_batch_size(batch);
            b.iter(|| rlcut::partition(&geo, &env, profile.clone(), 10.0, &config))
        });
    }
    group.finish();
}

fn bench_straggler_mitigation(c: &mut Criterion) {
    let (geo, env, budget) = setup();
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let mut group = c.benchmark_group("ablation_straggler");
    group.sample_size(10);
    for (name, disable) in [("lpt", false), ("round_robin", true)] {
        group.bench_function(name, |b| {
            let mut config = base_config(budget);
            config.disable_straggler_mitigation = disable;
            b.iter(|| rlcut::partition(&geo, &env, profile.clone(), 10.0, &config))
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let (geo, env, budget) = setup();
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let mut group = c.benchmark_group("ablation_sample_rate");
    group.sample_size(10);
    for rate in [0.1f64, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{:.0}pct", rate * 100.0)),
            &rate,
            |b, &rate| {
                let config = base_config(budget).with_fixed_sample_rate(rate);
                b.iter(|| rlcut::partition(&geo, &env, profile.clone(), 10.0, &config))
            },
        );
    }
    group.finish();
}

fn bench_penalty(c: &mut Criterion) {
    let (geo, env, budget) = setup();
    let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let mut group = c.benchmark_group("ablation_penalty_updates");
    group.sample_size(10);
    for (name, penalty) in [("reward_only", false), ("with_penalty", true)] {
        group.bench_function(name, |b| {
            let mut config = base_config(budget);
            config.use_penalty = penalty;
            b.iter(|| rlcut::partition(&geo, &env, profile.clone(), 10.0, &config))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batching,
    bench_straggler_mitigation,
    bench_sampling,
    bench_penalty
);
criterion_main!(benches);
