//! Regenerates the paper artifact; see `geobench::experiments::exp2_budget`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::exp2_budget::run(&ctx);
}
