//! Regenerates the paper artifact; see `geobench::experiments::fig4_dynamicity`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::fig4_dynamicity::run(&ctx);
}
