//! Regenerates every table and figure of the paper in sequence.

type Experiment = (&'static str, fn(&geobench::ExpContext));

fn main() {
    let ctx = geobench::ExpContext::from_args(0.0005);
    let experiments: &[Experiment] = &[
        ("Table I", geobench::experiments::table1_regions::run),
        ("Fig 1", geobench::experiments::fig1_geo_edges::run),
        ("Fig 2", geobench::experiments::fig2_hybrid_vs_vertex::run),
        ("Fig 3", geobench::experiments::fig3_heterogeneity::run),
        ("Fig 4", geobench::experiments::fig4_dynamicity::run),
        ("Fig 6", geobench::experiments::fig6_penalty::run),
        ("Fig 8", geobench::experiments::fig8_agent_overhead::run),
        ("Fig 9", geobench::experiments::fig9_degree_sampling::run),
        ("Exp#1 (Fig 10/11, Table III)", geobench::experiments::exp1_overall::run),
        ("Exp#2 (Fig 12)", geobench::experiments::exp2_budget::run),
        ("Exp#3 (Table IV)", geobench::experiments::exp3_batch::run),
        ("Exp#4 (Fig 13/14)", geobench::experiments::exp4_topt::run),
        ("Exp#5 (Fig 15)", geobench::experiments::exp5_dynamic::run),
        ("Exp#6 (faults, extension)", geobench::experiments::exp6_faults::run),
        ("Ablation (design choices)", geobench::experiments::ablation::run),
    ];
    for (name, run) in experiments {
        println!("\n######## {name} ########");
        run(&ctx);
    }
}
