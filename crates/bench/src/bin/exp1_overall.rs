//! Regenerates the paper artifact; see `geobench::experiments::exp1_overall`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::exp1_overall::run(&ctx);
}
