//! Regenerates the paper artifact; see `geobench::experiments::fig3_heterogeneity`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::fig3_heterogeneity::run(&ctx);
}
