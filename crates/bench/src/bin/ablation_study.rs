//! Ablation of RLCut's design choices; see `geobench::experiments::ablation`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::ablation::run(&ctx);
}
