//! Regenerates the paper artifact; see `geobench::experiments::exp3_batch`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::exp3_batch::run(&ctx);
}
