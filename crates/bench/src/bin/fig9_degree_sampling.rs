//! Regenerates the paper artifact; see `geobench::experiments::fig9_degree_sampling`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::fig9_degree_sampling::run(&ctx);
}
