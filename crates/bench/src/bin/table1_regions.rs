//! Regenerates the paper artifact; see `geobench::experiments::table1_regions`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::table1_regions::run(&ctx);
}
