//! Regenerates the paper artifact; see `geobench::experiments::fig6_penalty`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::fig6_penalty::run(&ctx);
}
