//! Serving-layer bench: lookup latency under live re-partitioning.
//!
//! The scenario the serving daemon exists for, end to end:
//!
//!   1. a durable pipeline commits window 0 and "dies";
//!   2. a [`geoserve::PlacementServer`] **boots from the store** — no
//!      retraining — and starts answering lookups;
//!   3. reader threads drive an open-loop Zipf-skewed lookup stream
//!      (millions of vertex → master batches) while the recovered
//!      trainer keeps committing delta windows, each commit flipping a
//!      fresh routing table in under the readers;
//!   4. the process "dies" again and a second boot must serve masters
//!      bit-identical to the last table the live server published.
//!
//! Measured: per-batch lookup latency (p50/p99/p999 over a log-bucket
//! histogram), sustained throughput, plan flips observed, and the two
//! flip-stall signals — hazard-pin retries (reads that raced a flip) and
//! the latency of the first batch each reader serves on a new epoch.
//! Writes a machine-readable `BENCH_serve.json` (format documented in
//! `DESIGN.md` §3h).
//!
//! Usage:
//!   bench_serve [--scale f] [--seed n] [--windows n] [--readers n]
//!               [--threads n] [--lookups n] [--batch n] [--zipf s]
//!               [--out path] [--assert-min-flips n]
//!
//! `--assert-min-flips n` exits non-zero unless at least `n` plan flips
//! were published while traffic was flowing (used by `scripts/verify.sh`
//! to smoke the mid-traffic flip path).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use geograph::dynamic::split_for_dynamic;
use geograph::generators::preferential::preferential_attachment_edges;
use geograph::locality::{assign_locations, LocalityConfig};
use geograph::{Dataset, GeoGraph, GraphDelta, VertexId};
use geopart::TrafficProfile;
use geoserve::PlacementServer;
use geosim::regions::ec2_eight_regions;
use rand::prelude::*;
use rand::rngs::SmallRng;
use rlcut::{DurableAdaptive, RlCutConfig};

struct Args {
    scale: f64,
    seed: u64,
    windows: u64,
    readers: usize,
    threads: usize,
    lookups: u64,
    batch: usize,
    zipf: f64,
    out: String,
    assert_min_flips: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.004,
        seed: 42,
        windows: 6,
        readers: 4,
        threads: 2,
        lookups: 1_500_000,
        batch: 256,
        zipf: 0.99,
        out: "BENCH_serve.json".to_string(),
        assert_min_flips: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes a float"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            "--windows" => args.windows = value.parse().expect("--windows takes an integer"),
            "--readers" => args.readers = value.parse().expect("--readers takes an integer"),
            "--threads" => args.threads = value.parse().expect("--threads takes an integer"),
            "--lookups" => args.lookups = value.parse().expect("--lookups takes an integer"),
            "--batch" => args.batch = value.parse().expect("--batch takes an integer"),
            "--zipf" => args.zipf = value.parse().expect("--zipf takes a float"),
            "--out" => args.out = value.clone(),
            "--assert-min-flips" => {
                args.assert_min_flips =
                    Some(value.parse().expect("--assert-min-flips takes an integer"))
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    assert!(args.windows >= 1, "--windows must be >= 1");
    assert!(args.readers >= 1 && args.batch >= 1 && args.lookups >= 1);
    args
}

/// Zipf(s) sampler over `[0, n)`: precomputed CDF + binary search, so a
/// draw is one `gen_range` and one `partition_point`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += (rank as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn draw(&self, rng: &mut SmallRng) -> VertexId {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) as VertexId
    }
}

/// 64-bucket log2 histogram of nanosecond latencies.
#[derive(Clone)]
struct LatencyHist {
    buckets: [u64; 64],
    max_ns: u64,
    count: u64,
}

impl LatencyHist {
    fn new() -> LatencyHist {
        LatencyHist { buckets: [0; 64], max_ns: 0, count: 0 }
    }

    fn record(&mut self, ns: u64) {
        let b = (64 - ns.max(1).leading_zeros() as usize).min(63);
        self.buckets[b] += 1;
        self.max_ns = self.max_ns.max(ns);
        self.count += 1;
    }

    fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
    }

    /// Upper bound of the bucket holding quantile `q` (conservative).
    fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << b;
            }
        }
        self.max_ns
    }
}

struct ReaderStats {
    hist: LatencyHist,
    flip_hist: LatencyHist,
    batches: u64,
    epochs_seen: u64,
    retries: u64,
}

fn main() {
    let args = parse_args();
    let n = Dataset::LiveJournal.scaled_vertices(args.scale);
    let epv = (Dataset::LiveJournal.paper_edges() as f64
        / Dataset::LiveJournal.paper_vertices() as f64)
        .round() as usize;
    let edges = preferential_attachment_edges(n, epv, args.seed);
    let (initial, stream) = split_for_dynamic(&edges, n, 0.7, args.windows * 1_000);
    let windows: Vec<_> = stream.windows(1_000).take(args.windows as usize).collect();
    assert!(!windows.is_empty(), "need >= 1 delta window");

    let final_graph = {
        let mut g = initial.clone();
        for w in &windows {
            g = g.apply_delta(&GraphDelta::from_events(&g, w));
        }
        g
    };
    let cfg = LocalityConfig::paper_default(args.seed);
    let locations = assign_locations(&final_graph, &cfg);
    let sizes: Vec<u64> = (0..final_graph.num_vertices()).map(|_| 65536).collect();
    let env = ec2_eight_regions();
    let dir = std::env::temp_dir().join(format!("rlcut_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = RlCutConfig::new(1.0)
        .with_seed(args.seed)
        .with_threads(args.threads)
        .with_theta(geograph::degree::suggest_theta(&final_graph, 0.05))
        .with_fixed_sample_rate(0.05)
        .with_max_steps(2);
    let t_opt = Duration::from_secs(60);
    let n0 = initial.num_vertices();
    eprintln!(
        "bench_serve: LJ-analog scale={} ({n} vertices), {} delta windows, {} readers x batch {}, \
         target {} Zipf({}) lookups, dir {}",
        args.scale,
        windows.len(),
        args.readers,
        args.batch,
        args.lookups,
        args.zipf,
        dir.display(),
    );

    // 1. Seed the store: commit window 0, then "die".
    {
        let geo0 = GeoGraph::new(
            initial.clone(),
            locations[..n0].to_vec(),
            sizes[..n0].to_vec(),
            cfg.num_dcs,
        );
        let mut durable = DurableAdaptive::create(&dir, config.clone(), Some(0.4), geo0, &env, 0)
            .expect("create durable dir");
        let p0 = TrafficProfile::uniform(n0, 8.0);
        durable.window(&env, None, &[], &[], p0, 10.0, t_opt).expect("window 0");
    }

    // 2. Boot the serving daemon from the store alone.
    let boot_start = Instant::now();
    let (server, boot) = PlacementServer::boot_from_store(&dir, &env).expect("boot from store");
    let boot_secs = boot_start.elapsed().as_secs_f64();
    assert_eq!(boot.window, 1, "exactly window 0 should be committed");
    eprintln!(
        "  booted window {} in {:.1}ms (masters fnv {:#018x}), serving while retraining...",
        boot.window,
        boot_secs * 1e3,
        boot.masters_fnv,
    );

    // 3. Readers hammer the board while the recovered trainer flips plans.
    let board = server.board();
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for r in 0..args.readers {
        let mut reader = board.reader();
        let stop = Arc::clone(&stop);
        let served = Arc::clone(&served);
        let zipf_s = args.zipf;
        let batch_size = args.batch;
        let seed = args.seed ^ (0xb1ade << 8) ^ r as u64;
        handles.push(std::thread::spawn(move || {
            // Lookups stay within the boot-time vertex range: always valid,
            // the graph only grows.
            let zipf = Zipf::new(n0, zipf_s);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut batch: Vec<VertexId> = Vec::with_capacity(batch_size);
            let mut out = Vec::new();
            let mut stats = ReaderStats {
                hist: LatencyHist::new(),
                flip_hist: LatencyHist::new(),
                batches: 0,
                epochs_seen: 1,
                retries: 0,
            };
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Relaxed) {
                batch.clear();
                for _ in 0..batch_size {
                    batch.push(zipf.draw(&mut rng));
                }
                let t0 = Instant::now();
                let epoch = reader.lookup_many(&batch, &mut out);
                let ns = t0.elapsed().as_nanos() as u64;
                stats.hist.record(ns);
                if epoch != last_epoch {
                    if last_epoch != 0 {
                        stats.epochs_seen += 1;
                        // First batch served off a freshly flipped table.
                        stats.flip_hist.record(ns);
                    }
                    last_epoch = epoch;
                }
                stats.batches += 1;
                served.fetch_add(batch_size as u64, Ordering::Relaxed);
                std::hint::black_box(&out);
            }
            stats.retries = reader.flip_retries();
            stats
        }));
    }

    // The recovered trainer re-partitions live; every commit flips a plan
    // under the readers through the server's commit hook.
    let (mut trainer, summary) =
        DurableAdaptive::recover(&dir, config.clone(), Some(0.4), &env, 0).expect("recover");
    assert_eq!(summary.next_window, 1);
    server.attach(&mut trainer);
    let mut graph = initial.clone();
    let train_start = Instant::now();
    for (i, window) in windows.iter().enumerate() {
        let delta = GraphDelta::from_events(&graph, window);
        let old_n = graph.num_vertices();
        graph = graph.apply_delta(&delta);
        let new_n = graph.num_vertices();
        let p = TrafficProfile::uniform(new_n, 8.0);
        trainer
            .window(
                &env,
                Some(&delta),
                &locations[old_n..new_n],
                &sizes[old_n..new_n],
                p,
                10.0,
                t_opt,
            )
            .unwrap_or_else(|e| panic!("window {}: {e}", i + 1));
    }
    let train_secs = train_start.elapsed().as_secs_f64();

    // Keep traffic flowing until the lookup target is met, then shut down.
    while served.load(Ordering::Relaxed) < args.lookups {
        std::thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    let mut hist = LatencyHist::new();
    let mut flip_hist = LatencyHist::new();
    let (mut batches, mut retries, mut max_epochs) = (0u64, 0u64, 0u64);
    for h in handles {
        let s = h.join().expect("reader panicked");
        hist.merge(&s.hist);
        flip_hist.merge(&s.flip_hist);
        batches += s.batches;
        retries += s.retries;
        max_epochs = max_epochs.max(s.epochs_seen);
    }
    let total_lookups = served.load(Ordering::Relaxed);
    let elapsed = boot_start.elapsed().as_secs_f64();
    let throughput = total_lookups as f64 / elapsed.max(1e-9);
    let flips = board.flips();
    let per_lookup = |ns: u64| ns as f64 / args.batch as f64;

    // 4. Restart: a fresh boot must serve the last published plan
    //    bit-exactly, without retraining.
    let (final_masters, final_window, table_bytes) = {
        let mut reader = server.reader();
        let guard = reader.pin();
        (guard.masters().to_vec(), guard.window(), guard.heap_bytes())
    };
    drop(trainer); // second "death"
    let (reborn, reboot) = PlacementServer::boot_from_store(&dir, &env).expect("reboot");
    assert_eq!(reboot.window, final_window, "reboot lost committed windows");
    let restart_bit_exact = {
        let mut reader = reborn.reader();
        let guard = reader.pin();
        assert_eq!(guard.masters(), &final_masters[..], "reboot diverged from served plan");
        true
    };

    eprintln!(
        "  {total_lookups} lookups in {elapsed:.2}s ({:.2}M/s) across {flips} flips; \
         batch p50 {:.0}ns p99 {:.0}ns p999 {:.0}ns ({:.1}ns/lookup p50); \
         {retries} pin retries, flip-batch p99 {:.0}ns; reboot bit-exact OK",
        throughput / 1e6,
        hist.quantile_ns(0.50) as f64,
        hist.quantile_ns(0.99) as f64,
        hist.quantile_ns(0.999) as f64,
        per_lookup(hist.quantile_ns(0.50)),
        flip_hist.quantile_ns(0.99) as f64,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"serve\",");
    let _ = writeln!(json, "  \"dataset\": \"livejournal_analog\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"vertices\": {n0},");
    let _ = writeln!(json, "  \"readers\": {},", args.readers);
    let _ = writeln!(json, "  \"batch\": {},", args.batch);
    let _ = writeln!(json, "  \"zipf_s\": {},", args.zipf);
    let _ = writeln!(json, "  \"boot_secs\": {boot_secs:.6},");
    let _ = writeln!(json, "  \"train_secs\": {train_secs:.6},");
    let _ = writeln!(json, "  \"windows_trained\": {},", windows.len());
    let _ = writeln!(json, "  \"lookups\": {total_lookups},");
    let _ = writeln!(json, "  \"batches\": {batches},");
    let _ = writeln!(json, "  \"elapsed_secs\": {elapsed:.6},");
    let _ = writeln!(json, "  \"throughput_lookups_per_sec\": {throughput:.1},");
    let _ = writeln!(json, "  \"batch_p50_ns\": {},", hist.quantile_ns(0.50));
    let _ = writeln!(json, "  \"batch_p99_ns\": {},", hist.quantile_ns(0.99));
    let _ = writeln!(json, "  \"batch_p999_ns\": {},", hist.quantile_ns(0.999));
    let _ = writeln!(json, "  \"batch_max_ns\": {},", hist.max_ns);
    let _ = writeln!(json, "  \"lookup_p50_ns\": {:.2},", per_lookup(hist.quantile_ns(0.50)));
    let _ = writeln!(json, "  \"lookup_p99_ns\": {:.2},", per_lookup(hist.quantile_ns(0.99)));
    let _ = writeln!(json, "  \"lookup_p999_ns\": {:.2},", per_lookup(hist.quantile_ns(0.999)));
    let _ = writeln!(json, "  \"plan_flips\": {flips},");
    let _ = writeln!(json, "  \"max_epochs_seen_by_one_reader\": {max_epochs},");
    let _ = writeln!(json, "  \"flip_pin_retries\": {retries},");
    let _ = writeln!(json, "  \"flip_batch_p99_ns\": {},", flip_hist.quantile_ns(0.99));
    let _ = writeln!(json, "  \"flip_batches\": {},", flip_hist.count);
    let mut mem = geograph::MemReport::new(final_graph.num_edges() as u64);
    mem.add("final_graph_csr", final_graph.heap_bytes());
    mem.add("published_plan", final_masters.len() * std::mem::size_of::<geograph::DcId>());
    mem.add("routing_table", table_bytes);
    let _ = writeln!(json, "  \"routing_table_bytes\": {table_bytes},");
    let _ = writeln!(
        json,
        "  \"routing_table_bytes_per_vertex\": {:.3},",
        table_bytes as f64 / final_masters.len().max(1) as f64,
    );
    json.push_str(&geobench::mem_json_field(&mem));
    let _ = writeln!(json, "  \"restart_bit_exact\": {restart_bit_exact}");
    json.push_str("}\n");
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("could not write {}: {e}", args.out));
    eprintln!("  wrote {}", args.out);
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(min) = args.assert_min_flips {
        assert!(flips >= min, "only {flips} plan flips published (need >= {min})");
    }
    assert!(total_lookups >= args.lookups, "lookup target missed");
}
