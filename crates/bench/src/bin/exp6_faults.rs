//! Robustness extension (not a paper artifact); see
//! `geobench::experiments::exp6_faults`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::exp6_faults::run(&ctx);
}
