//! Regenerates the paper artifact; see `geobench::experiments::fig2_hybrid_vs_vertex`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::fig2_hybrid_vs_vertex::run(&ctx);
}
