//! Paper-scale substrate bench: streamed CSR ingest of the LiveJournal
//! analog at full Table II size, plus the memory-footprint gate.
//!
//! At `--scale 1.0` this builds the 4.8M-vertex / ~69M-edge LJ analog
//! through the two-pass streaming path (no staged edge list — peak build
//! memory must stay within `--assert-build-ratio` of the final CSR),
//! measures the delta-compressed cold-adjacency footprint, runs a short
//! scan-capped training window over the result, and writes a
//! machine-readable `BENCH_scale.json` (format documented in `DESIGN.md`
//! §3i) with peak RSS, per-component bytes/edge, build edges/s and
//! training steps/s.
//!
//! Usage:
//!   bench_scale [--scale f] [--seed n] [--threads n] [--chunk-edges n]
//!               [--steps n] [--sample-rate f] [--max-scan n] [--out path]
//!               [--assert-max-bytes-per-edge f] [--assert-build-ratio f]
//!               [--shards n] [--assert-shard-peak-frac f]
//!
//! `--assert-max-bytes-per-edge f` exits non-zero unless the CSR costs at
//! most `f` bytes per directed edge; `--assert-build-ratio f` gates the
//! streamed build's peak-over-final memory ratio. `--shards n` replays
//! the same chunked source through the shard-resident ingest
//! ([`geograph::ShardView::build_streamed`]) — each shard's view is
//! cross-checked bit-identical against the staged build, and
//! `--assert-shard-peak-frac f` gates every shard's peak footprint
//! (view + transients) at `f` times the full CSR. All gates are used by
//! `scripts/verify.sh`.

use std::fmt::Write as _;
use std::time::Instant;

use geograph::datasets::DEFAULT_CHUNK_EDGES;
use geograph::generators::rmat_streamed;
use geograph::locality::LocalityConfig;
use geograph::{CompressPolicy, CompressedGraph, Dataset, GeoGraph, MemReport};
use geosim::regions::ec2_eight_regions;
use rlcut::{RlCutConfig, WorkerPool};

struct Args {
    scale: f64,
    seed: u64,
    threads: usize,
    chunk_edges: usize,
    steps: usize,
    sample_rate: f64,
    max_scan: usize,
    out: String,
    assert_max_bytes_per_edge: Option<f64>,
    assert_build_ratio: Option<f64>,
    shards: usize,
    assert_shard_peak_frac: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seed: 42,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        chunk_edges: DEFAULT_CHUNK_EDGES,
        steps: 3,
        sample_rate: 0.05,
        max_scan: 100_000,
        out: "BENCH_scale.json".to_string(),
        assert_max_bytes_per_edge: None,
        assert_build_ratio: None,
        shards: 0,
        assert_shard_peak_frac: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes a float"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            "--threads" => args.threads = value.parse().expect("--threads takes an integer"),
            "--chunk-edges" => {
                args.chunk_edges = value.parse().expect("--chunk-edges takes an integer")
            }
            "--steps" => args.steps = value.parse().expect("--steps takes an integer"),
            "--sample-rate" => {
                args.sample_rate = value.parse().expect("--sample-rate takes a float")
            }
            "--max-scan" => args.max_scan = value.parse().expect("--max-scan takes an integer"),
            "--out" => args.out = value.clone(),
            "--assert-max-bytes-per-edge" => {
                args.assert_max_bytes_per_edge =
                    Some(value.parse().expect("--assert-max-bytes-per-edge takes a float"))
            }
            "--assert-build-ratio" => {
                args.assert_build_ratio =
                    Some(value.parse().expect("--assert-build-ratio takes a float"))
            }
            "--shards" => args.shards = value.parse().expect("--shards takes an integer"),
            "--assert-shard-peak-frac" => {
                args.assert_shard_peak_frac =
                    Some(value.parse().expect("--assert-shard-peak-frac takes a float"))
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    args
}

fn main() {
    let args = parse_args();
    let dataset = Dataset::LiveJournal;
    let (rmat_config, derived_seed) = dataset.rmat_setup(args.scale, args.seed);
    let pool = WorkerPool::new(args.threads.max(1));
    eprintln!(
        "bench_scale: LJ-analog scale={} ({} vertices, {} edges target), chunk {} edges, {} threads",
        args.scale,
        dataset.scaled_vertices(args.scale),
        dataset.scaled_edges(args.scale),
        args.chunk_edges,
        args.threads,
    );

    // 1. Streamed two-pass build: the only O(E) arrays ever allocated are
    //    the final CSR and the 8n-byte degree/cursor counters.
    let build_start = Instant::now();
    let (graph, report) = rmat_streamed(&rmat_config, derived_seed, args.chunk_edges, &pool)
        .unwrap_or_else(|e| panic!("streamed build failed: {e}"));
    let build_secs = build_start.elapsed().as_secs_f64();
    let build_eps = report.edges as f64 / build_secs.max(1e-9);
    let csr_bpe = report.csr_bytes as f64 / report.edges.max(1) as f64;
    eprintln!(
        "  build: {} kept edges ({} raw) in {build_secs:.2}s ({:.2}M edges/s); \
         csr {} B ({csr_bpe:.2} B/edge), peak/final ratio {:.3}",
        report.edges,
        report.raw_edges,
        build_eps / 1e6,
        report.csr_bytes,
        report.build_ratio(),
    );

    // 2. Cold-adjacency compression: what the same adjacency costs with
    //    low-degree rows delta-encoded (built and dropped before training
    //    so its arena does not inflate the training-phase RSS).
    let compress_start = Instant::now();
    let (compressed_bytes, compressed_bpe, hot_rows) = {
        let compressed = CompressedGraph::from_graph(&graph, CompressPolicy::auto());
        (compressed.heap_bytes(), compressed.bytes_per_edge(), compressed.hot_rows())
    };
    eprintln!(
        "  compressed: {} B ({compressed_bpe:.2} B/edge, {hot_rows} hot rows kept raw) in {:.2}s",
        compressed_bytes,
        compress_start.elapsed().as_secs_f64(),
    );

    // 3. Shard-resident ingest: replay the same chunked source into one
    //    view per shard without the global CSR. Each view is cross-checked
    //    bit-identical against the staged build, and the per-shard peak
    //    (view + transient planes) is what a shard node would actually
    //    resident — the quantity `--assert-shard-peak-frac` gates.
    let mut shard_rows: Vec<(usize, usize, usize, usize, f64)> = Vec::new();
    let mut shard_peak_frac_max = 0.0_f64;
    if args.shards > 0 {
        let shard_start = Instant::now();
        let src =
            geograph::generators::RmatChunks::new(rmat_config, derived_seed, args.chunk_edges);
        // Edge-balanced contiguous ranges: R-MAT piles its hubs into the
        // low id region, so an even vertex split would leave shard 0
        // holding most of the adjacency. (A pure shard-resident deployment
        // derives the same boundaries from a degree-counting pass.)
        let spec = geograph::ShardSpec::balanced(&graph, args.shards);
        for s in 0..args.shards {
            let (view, shard_report) = geograph::ShardView::build_streamed(
                &src,
                geograph::StreamConfig::cleaned(),
                &spec,
                s,
                &pool,
            )
            .unwrap_or_else(|e| panic!("shard {s} streamed build failed: {e}"));
            assert_eq!(
                view,
                geograph::ShardView::build(&graph, &spec, s),
                "shard {s}: streamed view diverged from the staged build"
            );
            let peak = shard_report.peak_bytes();
            let frac = peak as f64 / report.csr_bytes.max(1) as f64;
            shard_peak_frac_max = shard_peak_frac_max.max(frac);
            shard_rows.push((s, view.heap_bytes(), shard_report.transient_bytes, peak, frac));
        }
        eprintln!(
            "  shards: {} shard-resident ingests in {:.2}s; max peak {:.1}% of the full CSR",
            args.shards,
            shard_start.elapsed().as_secs_f64(),
            shard_peak_frac_max * 100.0,
        );
    }

    // 4. A short scan-capped training window over the freshly built graph.
    let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(args.seed));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let config = RlCutConfig::new(budget)
        .with_seed(args.seed)
        .with_threads(args.threads.max(1))
        .with_fixed_sample_rate(args.sample_rate.clamp(0.0, 1.0))
        .with_max_scan(args.max_scan)
        .with_max_steps(args.steps);
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let result = rlcut::partition(&geo, &env, profile, 10.0, &config);
    let train_secs = result.total_duration.as_secs_f64();
    let steps_per_sec = result.steps.len() as f64 / train_secs.max(1e-9);
    let agents_per_step = result.steps.iter().map(|s| s.num_agents).max().unwrap_or(0);
    eprintln!(
        "  window: {} steps in {train_secs:.2}s ({steps_per_sec:.2} steps/s), \
         <= {agents_per_step} agents/step (cap {}), {} migrations",
        result.steps.len(),
        args.max_scan,
        result.total_migrations(),
    );

    // 5. The footprint report. `geo_metadata` is the location/data-size
    //    overlay GeoGraph adds on top of the CSR.
    let mut mem = MemReport::new(report.edges as u64);
    mem.add("csr", geo.graph.heap_bytes());
    mem.add("geo_metadata", geo.heap_bytes() - geo.graph.heap_bytes());
    mem.add("build_transient", report.transient_bytes);
    mem.add("compressed_csr", compressed_bytes);
    mem.add("placement_state", result.state.heap_bytes());
    let peak = geograph::peak_rss_bytes();
    eprintln!(
        "  mem: accounted {:.2} B/edge over {} components; peak RSS {}",
        mem.bytes_per_edge(),
        mem.components().len(),
        peak.map(|b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64))
            .unwrap_or_else(|| "n/a".to_string()),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"scale_substrate\",");
    let _ = writeln!(json, "  \"dataset\": \"livejournal_analog\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"chunk_edges\": {},", args.chunk_edges);
    let _ = writeln!(json, "  \"vertices\": {},", geo.num_vertices());
    let _ = writeln!(json, "  \"edges\": {},", report.edges);
    let _ = writeln!(json, "  \"raw_edges\": {},", report.raw_edges);
    let _ = writeln!(json, "  \"self_loops_dropped\": {},", report.self_loops_dropped);
    let _ = writeln!(json, "  \"duplicates_removed\": {},", report.duplicates_removed);
    let _ = writeln!(json, "  \"build_secs\": {build_secs:.6},");
    let _ = writeln!(json, "  \"build_edges_per_sec\": {build_eps:.1},");
    let _ = writeln!(json, "  \"build_peak_over_final_ratio\": {:.4},", report.build_ratio());
    let _ = writeln!(json, "  \"csr_bytes\": {},", report.csr_bytes);
    let _ = writeln!(json, "  \"csr_bytes_per_edge\": {csr_bpe:.3},");
    let _ = writeln!(json, "  \"offset_width_bits\": {},", geo.graph.offset_width().bytes() * 8);
    let _ = writeln!(json, "  \"compressed_bytes\": {compressed_bytes},");
    let _ = writeln!(json, "  \"compressed_bytes_per_edge\": {compressed_bpe:.3},");
    let _ = writeln!(json, "  \"hot_rows\": {hot_rows},");
    let _ = writeln!(json, "  \"train_steps\": {},", result.steps.len());
    let _ = writeln!(json, "  \"train_secs\": {train_secs:.6},");
    let _ = writeln!(json, "  \"train_steps_per_sec\": {steps_per_sec:.4},");
    let _ = writeln!(json, "  \"max_scan\": {},", args.max_scan);
    let _ = writeln!(json, "  \"agents_per_step\": {agents_per_step},");
    let _ = writeln!(json, "  \"migrations\": {},", result.total_migrations());
    let _ = writeln!(json, "  \"shards\": {},", args.shards);
    if !shard_rows.is_empty() {
        json.push_str("  \"shard_resident\": [\n");
        for (i, (s, view_bytes, transient_bytes, peak, frac)) in shard_rows.iter().enumerate() {
            let _ = writeln!(
                json,
                "    {{\"shard\": {s}, \"view_bytes\": {view_bytes}, \
                 \"transient_bytes\": {transient_bytes}, \"peak_bytes\": {peak}, \
                 \"peak_frac_of_csr\": {frac:.4}}}{}",
                if i + 1 < shard_rows.len() { "," } else { "" },
            );
        }
        json.push_str("  ],\n");
        let _ = writeln!(json, "  \"shard_peak_frac_max\": {shard_peak_frac_max:.4},");
    }
    json.push_str(&geobench::mem_json_field(&mem));
    let _ = writeln!(json, "  \"sample_rate\": {}", args.sample_rate);
    json.push_str("}\n");
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("could not write {}: {e}", args.out));
    eprintln!("  wrote {}", args.out);

    if let Some(ceiling) = args.assert_max_bytes_per_edge {
        assert!(
            csr_bpe <= ceiling,
            "CSR costs {csr_bpe:.3} B/edge (ceiling {ceiling}): adjacency storage regressed"
        );
    }
    if let Some(ceiling) = args.assert_build_ratio {
        let ratio = report.build_ratio();
        assert!(
            ratio <= ceiling,
            "streamed build peaked at {ratio:.3}x the final CSR (ceiling {ceiling}x): \
             an O(E) staging copy crept back into the ingest path"
        );
    }
    if let Some(ceiling) = args.assert_shard_peak_frac {
        assert!(args.shards > 0, "--assert-shard-peak-frac requires --shards");
        assert!(
            shard_peak_frac_max <= ceiling,
            "a shard-resident ingest peaked at {:.3}x the full CSR (ceiling {ceiling}x): \
             the per-shard footprint is no longer a fraction of the graph",
            shard_peak_frac_max,
        );
    }
}
