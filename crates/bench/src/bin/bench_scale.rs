//! Paper-scale substrate bench: streamed CSR ingest of the LiveJournal
//! analog at full Table II size, plus the memory-footprint gate.
//!
//! At `--scale 1.0` this builds the 4.8M-vertex / ~69M-edge LJ analog
//! through the two-pass streaming path (no staged edge list — peak build
//! memory must stay within `--assert-build-ratio` of the final CSR),
//! measures the delta-compressed cold-adjacency footprint, runs a short
//! scan-capped training window over the result, and writes a
//! machine-readable `BENCH_scale.json` (format documented in `DESIGN.md`
//! §3i) with peak RSS, per-component bytes/edge, build edges/s and
//! training steps/s.
//!
//! Usage:
//!   bench_scale [--scale f] [--seed n] [--threads n] [--chunk-edges n]
//!               [--steps n] [--sample-rate f] [--max-scan n] [--out path]
//!               [--assert-max-bytes-per-edge f] [--assert-build-ratio f]
//!
//! `--assert-max-bytes-per-edge f` exits non-zero unless the CSR costs at
//! most `f` bytes per directed edge; `--assert-build-ratio f` gates the
//! streamed build's peak-over-final memory ratio. Both are used by
//! `scripts/verify.sh`.

use std::fmt::Write as _;
use std::time::Instant;

use geograph::datasets::DEFAULT_CHUNK_EDGES;
use geograph::generators::rmat_streamed;
use geograph::locality::LocalityConfig;
use geograph::{CompressPolicy, CompressedGraph, Dataset, GeoGraph, MemReport};
use geosim::regions::ec2_eight_regions;
use rlcut::{RlCutConfig, WorkerPool};

struct Args {
    scale: f64,
    seed: u64,
    threads: usize,
    chunk_edges: usize,
    steps: usize,
    sample_rate: f64,
    max_scan: usize,
    out: String,
    assert_max_bytes_per_edge: Option<f64>,
    assert_build_ratio: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        seed: 42,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        chunk_edges: DEFAULT_CHUNK_EDGES,
        steps: 3,
        sample_rate: 0.05,
        max_scan: 100_000,
        out: "BENCH_scale.json".to_string(),
        assert_max_bytes_per_edge: None,
        assert_build_ratio: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes a float"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            "--threads" => args.threads = value.parse().expect("--threads takes an integer"),
            "--chunk-edges" => {
                args.chunk_edges = value.parse().expect("--chunk-edges takes an integer")
            }
            "--steps" => args.steps = value.parse().expect("--steps takes an integer"),
            "--sample-rate" => {
                args.sample_rate = value.parse().expect("--sample-rate takes a float")
            }
            "--max-scan" => args.max_scan = value.parse().expect("--max-scan takes an integer"),
            "--out" => args.out = value.clone(),
            "--assert-max-bytes-per-edge" => {
                args.assert_max_bytes_per_edge =
                    Some(value.parse().expect("--assert-max-bytes-per-edge takes a float"))
            }
            "--assert-build-ratio" => {
                args.assert_build_ratio =
                    Some(value.parse().expect("--assert-build-ratio takes a float"))
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    args
}

fn main() {
    let args = parse_args();
    let dataset = Dataset::LiveJournal;
    let (rmat_config, derived_seed) = dataset.rmat_setup(args.scale, args.seed);
    let pool = WorkerPool::new(args.threads.max(1));
    eprintln!(
        "bench_scale: LJ-analog scale={} ({} vertices, {} edges target), chunk {} edges, {} threads",
        args.scale,
        dataset.scaled_vertices(args.scale),
        dataset.scaled_edges(args.scale),
        args.chunk_edges,
        args.threads,
    );

    // 1. Streamed two-pass build: the only O(E) arrays ever allocated are
    //    the final CSR and the 8n-byte degree/cursor counters.
    let build_start = Instant::now();
    let (graph, report) = rmat_streamed(&rmat_config, derived_seed, args.chunk_edges, &pool)
        .unwrap_or_else(|e| panic!("streamed build failed: {e}"));
    let build_secs = build_start.elapsed().as_secs_f64();
    let build_eps = report.edges as f64 / build_secs.max(1e-9);
    let csr_bpe = report.csr_bytes as f64 / report.edges.max(1) as f64;
    eprintln!(
        "  build: {} kept edges ({} raw) in {build_secs:.2}s ({:.2}M edges/s); \
         csr {} B ({csr_bpe:.2} B/edge), peak/final ratio {:.3}",
        report.edges,
        report.raw_edges,
        build_eps / 1e6,
        report.csr_bytes,
        report.build_ratio(),
    );

    // 2. Cold-adjacency compression: what the same adjacency costs with
    //    low-degree rows delta-encoded (built and dropped before training
    //    so its arena does not inflate the training-phase RSS).
    let compress_start = Instant::now();
    let (compressed_bytes, compressed_bpe, hot_rows) = {
        let compressed = CompressedGraph::from_graph(&graph, CompressPolicy::auto());
        (compressed.heap_bytes(), compressed.bytes_per_edge(), compressed.hot_rows())
    };
    eprintln!(
        "  compressed: {} B ({compressed_bpe:.2} B/edge, {hot_rows} hot rows kept raw) in {:.2}s",
        compressed_bytes,
        compress_start.elapsed().as_secs_f64(),
    );

    // 3. A short scan-capped training window over the freshly built graph.
    let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(args.seed));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let config = RlCutConfig::new(budget)
        .with_seed(args.seed)
        .with_threads(args.threads.max(1))
        .with_fixed_sample_rate(args.sample_rate.clamp(0.0, 1.0))
        .with_max_scan(args.max_scan)
        .with_max_steps(args.steps);
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let result = rlcut::partition(&geo, &env, profile, 10.0, &config);
    let train_secs = result.total_duration.as_secs_f64();
    let steps_per_sec = result.steps.len() as f64 / train_secs.max(1e-9);
    let agents_per_step = result.steps.iter().map(|s| s.num_agents).max().unwrap_or(0);
    eprintln!(
        "  window: {} steps in {train_secs:.2}s ({steps_per_sec:.2} steps/s), \
         <= {agents_per_step} agents/step (cap {}), {} migrations",
        result.steps.len(),
        args.max_scan,
        result.total_migrations(),
    );

    // 4. The footprint report. `geo_metadata` is the location/data-size
    //    overlay GeoGraph adds on top of the CSR.
    let mut mem = MemReport::new(report.edges as u64);
    mem.add("csr", geo.graph.heap_bytes());
    mem.add("geo_metadata", geo.heap_bytes() - geo.graph.heap_bytes());
    mem.add("build_transient", report.transient_bytes);
    mem.add("compressed_csr", compressed_bytes);
    mem.add("placement_state", result.state.heap_bytes());
    let peak = geograph::peak_rss_bytes();
    eprintln!(
        "  mem: accounted {:.2} B/edge over {} components; peak RSS {}",
        mem.bytes_per_edge(),
        mem.components().len(),
        peak.map(|b| format!("{:.1} MiB", b as f64 / (1 << 20) as f64))
            .unwrap_or_else(|| "n/a".to_string()),
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"scale_substrate\",");
    let _ = writeln!(json, "  \"dataset\": \"livejournal_analog\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"chunk_edges\": {},", args.chunk_edges);
    let _ = writeln!(json, "  \"vertices\": {},", geo.num_vertices());
    let _ = writeln!(json, "  \"edges\": {},", report.edges);
    let _ = writeln!(json, "  \"raw_edges\": {},", report.raw_edges);
    let _ = writeln!(json, "  \"self_loops_dropped\": {},", report.self_loops_dropped);
    let _ = writeln!(json, "  \"duplicates_removed\": {},", report.duplicates_removed);
    let _ = writeln!(json, "  \"build_secs\": {build_secs:.6},");
    let _ = writeln!(json, "  \"build_edges_per_sec\": {build_eps:.1},");
    let _ = writeln!(json, "  \"build_peak_over_final_ratio\": {:.4},", report.build_ratio());
    let _ = writeln!(json, "  \"csr_bytes\": {},", report.csr_bytes);
    let _ = writeln!(json, "  \"csr_bytes_per_edge\": {csr_bpe:.3},");
    let _ = writeln!(json, "  \"compressed_bytes\": {compressed_bytes},");
    let _ = writeln!(json, "  \"compressed_bytes_per_edge\": {compressed_bpe:.3},");
    let _ = writeln!(json, "  \"hot_rows\": {hot_rows},");
    let _ = writeln!(json, "  \"train_steps\": {},", result.steps.len());
    let _ = writeln!(json, "  \"train_secs\": {train_secs:.6},");
    let _ = writeln!(json, "  \"train_steps_per_sec\": {steps_per_sec:.4},");
    let _ = writeln!(json, "  \"max_scan\": {},", args.max_scan);
    let _ = writeln!(json, "  \"agents_per_step\": {agents_per_step},");
    let _ = writeln!(json, "  \"migrations\": {},", result.total_migrations());
    json.push_str(&geobench::mem_json_field(&mem));
    let _ = writeln!(json, "  \"sample_rate\": {}", args.sample_rate);
    json.push_str("}\n");
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("could not write {}: {e}", args.out));
    eprintln!("  wrote {}", args.out);

    if let Some(ceiling) = args.assert_max_bytes_per_edge {
        assert!(
            csr_bpe <= ceiling,
            "CSR costs {csr_bpe:.3} B/edge (ceiling {ceiling}): adjacency storage regressed"
        );
    }
    if let Some(ceiling) = args.assert_build_ratio {
        let ratio = report.build_ratio();
        assert!(
            ratio <= ceiling,
            "streamed build peaked at {ratio:.3}x the final CSR (ceiling {ceiling}x): \
             an O(E) staging copy crept back into the ingest path"
        );
    }
}
