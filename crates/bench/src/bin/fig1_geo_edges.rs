//! Regenerates the paper artifact; see `geobench::experiments::fig1_geo_edges`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::fig1_geo_edges::run(&ctx);
}
