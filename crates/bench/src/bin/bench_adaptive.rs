//! Dynamic-window micro-bench: incremental delta absorption vs the
//! rebuild-per-window ablation on an LJ-analog growth stream.
//!
//! Splits a preferential-attachment graph 70/30, spreads the held-out
//! edges over `--windows` one-second windows, and drives two
//! [`AdaptiveRlCut`] instances over the *identical* [`GraphDelta`]
//! sequence: one resuming its carried placement state incrementally
//! (`on_window_delta`), one forced to rebuild `from_masters` every window
//! (`with_rebuild_per_window`). Training work is pinned (fixed sample
//! rate, fixed step count, pinned theta), so the overhead gap isolates
//! state preparation: O(delta) resume vs O(E) rebuild.
//!
//! Each incremental window is verified two ways: `DeltaApplyStats` proves
//! the work was proportional to the delta (the zero-rebuild probe), and
//! `validate_carried` recomputes the carried state from scratch and
//! compares bit-for-bit (integer state; f64 aggregates within tolerance).
//!
//! Writes a machine-readable `BENCH_adaptive.json` (format documented in
//! `DESIGN.md` §3e).
//!
//! Usage:
//!   bench_adaptive [--scale f] [--seed n] [--windows n] [--threads n]
//!                  [--out path] [--assert-speedup f]
//!
//! `--assert-speedup f` exits non-zero unless the rebuild baseline's total
//! per-window overhead is at least `f`x the incremental path's (used by
//! `scripts/verify.sh` as a smoke gate).

use std::fmt::Write as _;
use std::time::Duration;

use geograph::dynamic::split_for_dynamic;
use geograph::generators::preferential::preferential_attachment_edges;
use geograph::locality::{assign_locations, LocalityConfig};
use geograph::{Dataset, GeoGraph, GraphDelta, VertexId};
use geopart::TrafficProfile;
use geosim::regions::ec2_eight_regions;
use rlcut::{AdaptiveRlCut, RlCutConfig, WindowReport};

struct Args {
    scale: f64,
    seed: u64,
    windows: u64,
    threads: usize,
    out: String,
    assert_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.008,
        seed: 42,
        windows: 20,
        threads: 2,
        out: "BENCH_adaptive.json".to_string(),
        assert_speedup: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes a float"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            "--windows" => {
                args.windows = value.parse().expect("--windows takes an integer");
                assert!(args.windows >= 10, "--windows must be >= 10");
            }
            "--threads" => args.threads = value.parse().expect("--threads takes an integer"),
            "--out" => args.out = value.clone(),
            "--assert-speedup" => {
                args.assert_speedup = Some(value.parse().expect("--assert-speedup takes a float"))
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    args
}

struct WindowRecord {
    delta_edges: usize,
    touched: usize,
    incremental: WindowReport,
    rebuild: WindowReport,
    work_items: usize,
}

fn main() {
    let args = parse_args();
    let n = Dataset::LiveJournal.scaled_vertices(args.scale);
    let epv = (Dataset::LiveJournal.paper_edges() as f64
        / Dataset::LiveJournal.paper_vertices() as f64)
        .round() as usize;
    let edges = preferential_attachment_edges(n, epv, args.seed);
    // One window per second of stream time: the held-out 30% arrives
    // uniformly over `windows` seconds.
    let (initial, stream) = split_for_dynamic(&edges, n, 0.7, args.windows * 1_000);
    let windows: Vec<_> = stream.windows(1_000).collect();
    assert!(windows.len() >= 10, "need >= 10 delta windows, got {}", windows.len());

    // Locations and sizes over the final snapshot (the vertex table is
    // allocated up front; growth is edge-only), shared by both paths.
    let final_graph = {
        let mut g = initial.clone();
        for w in &windows {
            g = g.apply_delta(&GraphDelta::from_events(&g, w));
        }
        g
    };
    let cfg = LocalityConfig::paper_default(args.seed);
    let locations = assign_locations(&final_graph, &cfg);
    let sizes: Vec<u64> =
        (0..n as VertexId).map(|v| 65536 + 256 * final_graph.out_degree(v) as u64).collect();
    let env = ec2_eight_regions();
    eprintln!(
        "bench_adaptive: LJ-analog scale={} ({} vertices, {} -> {} edges), {} DCs, {} windows",
        args.scale,
        n,
        initial.num_edges(),
        final_graph.num_edges(),
        env.num_dcs(),
        windows.len(),
    );

    // Pinned training work: fixed sample rate and step count make both
    // paths train the same number of agents per window, and the pinned
    // theta keeps the hybrid-cut threshold from drifting as the graph
    // grows — the overhead gap is state preparation only.
    let config = RlCutConfig::new(f64::INFINITY)
        .with_seed(args.seed)
        .with_threads(args.threads)
        .with_theta(geograph::degree::suggest_theta(&final_graph, 0.05))
        .with_fixed_sample_rate(0.005)
        .with_max_steps(1);
    let mut incremental = AdaptiveRlCut::new(config.clone(), None);
    let mut rebuild = AdaptiveRlCut::new(config, None).with_rebuild_per_window(true);
    let t_opt = Duration::from_secs(1);

    let mut graph = initial;
    let geo0 = GeoGraph::new(graph.clone(), locations.clone(), sizes.clone(), cfg.num_dcs);
    let p0 = TrafficProfile::uniform(n, 8.0);
    incremental.on_window(&geo0, &env, p0.clone(), 10.0, t_opt).expect("inc window 0");
    rebuild.on_window(&geo0, &env, p0.clone(), 10.0, t_opt).expect("reb window 0");

    let mut records: Vec<WindowRecord> = Vec::new();
    for (i, window) in windows.iter().enumerate() {
        let delta = GraphDelta::from_events(&graph, window);
        graph = graph.apply_delta(&delta);
        let geo = GeoGraph::new(graph.clone(), locations.clone(), sizes.clone(), cfg.num_dcs);
        let ri = incremental
            .on_window_delta(&geo, &env, &delta, p0.clone(), 10.0, t_opt)
            .unwrap_or_else(|e| panic!("incremental window {i}: {e}"));
        let rr = rebuild
            .on_window_delta(&geo, &env, &delta, p0.clone(), 10.0, t_opt)
            .unwrap_or_else(|e| panic!("rebuild window {i}: {e}"));
        // Zero-rebuild probe: the incremental path must report delta
        // stats, and its work must scale with the delta, not the graph.
        let stats = ri.delta_stats.expect("incremental path must be taken");
        assert!(rr.delta_stats.is_none(), "ablation must rebuild");
        // Incremental ≡ rebuild gate: recompute the carried state from
        // scratch and compare (bit-for-bit on integer state).
        let validated = incremental
            .validate_carried(&geo, &env)
            .unwrap_or_else(|e| panic!("window {i}: carried state diverged from rebuild: {e}"));
        assert!(validated);
        eprintln!(
            "  window {i:>2}: delta {:>6} edges / {:>6} touched | prep inc {:>9.3}ms vs reb {:>9.3}ms | work {:>8}",
            delta.num_edge_changes(),
            delta.touched().len(),
            ri.delta_apply.as_secs_f64() * 1e3,
            rr.delta_apply.as_secs_f64() * 1e3,
            stats.work_items(),
        );
        records.push(WindowRecord {
            delta_edges: delta.num_edge_changes(),
            touched: delta.touched().len(),
            incremental: ri,
            rebuild: rr,
            work_items: stats.work_items(),
        });
    }

    let inc_overhead: f64 = records.iter().map(|r| r.incremental.overhead.as_secs_f64()).sum();
    let reb_overhead: f64 = records.iter().map(|r| r.rebuild.overhead.as_secs_f64()).sum();
    let inc_prep: f64 = records.iter().map(|r| r.incremental.delta_apply.as_secs_f64()).sum();
    let reb_prep: f64 = records.iter().map(|r| r.rebuild.delta_apply.as_secs_f64()).sum();
    let headline = reb_overhead / inc_overhead.max(1e-12);
    eprintln!(
        "  totals over {} windows: overhead inc {:.3}s vs reb {:.3}s ({headline:.2}x); \
         state prep inc {:.3}s vs reb {:.3}s ({:.2}x)",
        records.len(),
        inc_overhead,
        reb_overhead,
        inc_prep,
        reb_prep,
        reb_prep / inc_prep.max(1e-12),
    );
    let inc_time = records.last().map(|r| r.incremental.transfer_time).unwrap_or(f64::NAN);
    let reb_time = records.last().map(|r| r.rebuild.transfer_time).unwrap_or(f64::NAN);
    eprintln!("  final transfer time: inc {inc_time:.6} vs reb {reb_time:.6}");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"adaptive_windows\",");
    let _ = writeln!(json, "  \"dataset\": \"livejournal_analog\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"vertices\": {n},");
    let _ = writeln!(json, "  \"initial_edges\": {},", geo0.num_edges());
    let _ = writeln!(json, "  \"final_edges\": {},", final_graph.num_edges());
    let _ = writeln!(json, "  \"num_dcs\": {},", env.num_dcs());
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"windows\": {},", records.len());
    json.push_str("  \"per_window\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"window\": {i}, \"delta_edges\": {}, \"touched\": {}, \"work_items\": {}, \
             \"incremental\": {{\"prep_secs\": {:.6}, \"train_secs\": {:.6}, \"overhead_secs\": {:.6}, \"transfer_time\": {:.6}}}, \
             \"rebuild\": {{\"prep_secs\": {:.6}, \"train_secs\": {:.6}, \"overhead_secs\": {:.6}, \"transfer_time\": {:.6}}}}}",
            r.delta_edges,
            r.touched,
            r.work_items,
            r.incremental.delta_apply.as_secs_f64(),
            r.incremental.train.as_secs_f64(),
            r.incremental.overhead.as_secs_f64(),
            r.incremental.transfer_time,
            r.rebuild.delta_apply.as_secs_f64(),
            r.rebuild.train.as_secs_f64(),
            r.rebuild.overhead.as_secs_f64(),
            r.rebuild.transfer_time,
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"incremental_overhead_secs\": {inc_overhead:.6},");
    let _ = writeln!(json, "  \"rebuild_overhead_secs\": {reb_overhead:.6},");
    let _ = writeln!(json, "  \"incremental_prep_secs\": {inc_prep:.6},");
    let _ = writeln!(json, "  \"rebuild_prep_secs\": {reb_prep:.6},");
    let _ = writeln!(json, "  \"rebuild_vs_incremental_overhead\": {headline:.4},");
    let mut mem = geograph::MemReport::new(final_graph.num_edges() as u64);
    mem.add("final_graph_csr", final_graph.heap_bytes());
    if let Some((state, _)) = incremental.carried_parts() {
        mem.add("carried_state", state.heap_bytes());
    }
    json.push_str(&geobench::mem_json_field(&mem));
    let _ = writeln!(json, "  \"validated_windows\": {}", records.len());
    json.push_str("}\n");
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("could not write {}: {e}", args.out));
    eprintln!("  wrote {}", args.out);

    if let Some(required) = args.assert_speedup {
        assert!(
            headline >= required,
            "rebuild-per-window overhead is only {headline:.3}x the incremental path's \
             (required {required}x): state prep is not dominating at this scale"
        );
    }
}
