//! Shard-runtime micro-bench: the sharded trainer at 1/2/4/8 shards vs
//! the single-process trainer on the 8-DC Twitter-analog preset.
//!
//! Reports per shard count: training throughput (steps/sec), total bytes
//! moved through the shuffle layer, and the summed ghost-fringe size —
//! the cross-shard working-set overhead. Cross-checks that every sharded
//! run trains the bit-identical plan the single-process trainer trains
//! (the shard-determinism contract), and writes a machine-readable
//! `BENCH_shard.json`.
//!
//! Usage:
//!   bench_shard [--scale f] [--seed n] [--steps n] [--reps n]
//!               [--threads n] [--shards-list 1,2,4,8] [--out path]
//!
//! The identical-plan cross-check always runs and is fatal on divergence,
//! so a plain invocation doubles as the CI smoke gate.

use std::fmt::Write as _;
use std::time::Duration;

use geograph::locality::LocalityConfig;
use geograph::{Dataset, GeoGraph};
use geopart::HybridState;
use geosim::regions::ec2_eight_regions;
use rlcut::{RlCutConfig, ShardedTrainer};

struct Args {
    scale: f64,
    seed: u64,
    steps: usize,
    reps: usize,
    threads: usize,
    shards_list: Vec<usize>,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.0004,
        seed: 42,
        steps: 5,
        reps: 3,
        threads: 4,
        shards_list: vec![1, 2, 4, 8],
        out: "BENCH_shard.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes a float"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            "--steps" => args.steps = value.parse().expect("--steps takes an integer"),
            "--reps" => args.reps = value.parse().expect("--reps takes an integer"),
            "--threads" => args.threads = value.parse().expect("--threads takes an integer"),
            "--shards-list" => {
                args.shards_list = value
                    .split(',')
                    .map(|t| t.parse().expect("--shards-list takes comma-separated integers"))
                    .collect();
                assert!(!args.shards_list.is_empty());
            }
            "--out" => args.out = value.clone(),
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    args
}

struct RunRecord {
    shards: usize,
    steps_run: usize,
    total: Duration,
    score: Duration,
    migrate: Duration,
    migrations: usize,
    shuffle_bytes: u64,
    ghost_vertices: usize,
    /// Largest single shard's view footprint — the graph-plane bytes one
    /// shard node keeps resident.
    view_bytes_max: usize,
    /// Sum of all view footprints (owned rows appear once; fringe rows
    /// are the replication overhead vs the global CSR).
    view_bytes_total: usize,
}

impl RunRecord {
    fn steps_per_sec(&self) -> f64 {
        self.steps_run as f64 / self.total.as_secs_f64()
    }
}

/// Best-of-`reps` timing of one shard count. Every rep trains the same
/// plan; the fastest rep is the least-noisy estimate of the runtime cost.
fn run_cell(
    geo: &GeoGraph,
    env: &geosim::CloudEnv,
    config: &RlCutConfig,
    theta: usize,
    shards: usize,
    reps: usize,
) -> (RunRecord, Vec<geograph::DcId>) {
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    // The same views ShardedTrainer::new builds, measured for the
    // resident-bytes columns (reps reuse the numbers — views are a pure
    // function of graph + spec).
    let spec = geograph::ShardSpec::contiguous(geo.num_vertices(), shards);
    let view_sizes: Vec<usize> = (0..shards)
        .map(|s| geograph::ShardView::build(&geo.graph, &spec, s).heap_bytes())
        .collect();
    let view_bytes_max = view_sizes.iter().copied().max().unwrap_or(0);
    let view_bytes_total = view_sizes.iter().sum();
    let mut best: Option<(RunRecord, Vec<geograph::DcId>)> = None;
    for _ in 0..reps.max(1) {
        let state = HybridState::from_masters(
            geo,
            env,
            geo.locations.clone(),
            theta,
            profile.clone(),
            10.0,
        );
        let mut trainer = ShardedTrainer::new(geo, env, state, config.clone(), shards)
            .unwrap_or_else(|e| panic!("{shards} shards failed to build: {e}"));
        let ghost_vertices = trainer.total_ghosts();
        trainer.run(env).unwrap_or_else(|e| panic!("{shards} shards failed to train: {e}"));
        let shuffle_bytes = trainer.shuffle_bytes();
        let result = trainer.finish(env);
        let record = RunRecord {
            shards,
            steps_run: result.steps.len(),
            total: result.total_duration,
            score: result.steps.iter().map(|s| s.score_duration).sum(),
            migrate: result.steps.iter().map(|s| s.migrate_duration).sum(),
            migrations: result.total_migrations(),
            shuffle_bytes,
            ghost_vertices,
            view_bytes_max,
            view_bytes_total,
        };
        let masters = result.state.core().masters().to_vec();
        if best.as_ref().is_none_or(|(b, _)| record.total < b.total) {
            best = Some((record, masters));
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let args = parse_args();
    let graph = Dataset::Twitter.generate(args.scale, args.seed);
    let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(args.seed));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
    // Full sampling keeps every shard's score queue saturated each step —
    // the regime that exposes shuffle and fringe overhead.
    let config = RlCutConfig::new(budget)
        .with_seed(args.seed)
        .with_threads(args.threads)
        .with_theta(theta)
        .with_fixed_sample_rate(1.0)
        .with_max_steps(args.steps);
    eprintln!(
        "bench_shard: TW-analog scale={} ({} vertices, {} edges), {} DCs, {} steps x {} reps, {} threads",
        args.scale,
        geo.num_vertices(),
        geo.num_edges(),
        env.num_dcs(),
        args.steps,
        args.reps,
        args.threads,
    );

    // The single-process trainer is both the throughput baseline and the
    // identical-plan reference.
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let baseline = rlcut::partition(&geo, &env, profile, 10.0, &config);
    let reference = baseline.state.core().masters().to_vec();
    let baseline_sps = baseline.steps.len() as f64 / baseline.total_duration.as_secs_f64();
    eprintln!(
        "  trainer baseline: {:>7.2} steps/s, {} migrations",
        baseline_sps,
        baseline.total_migrations()
    );

    let mut records: Vec<RunRecord> = Vec::new();
    for &shards in &args.shards_list {
        let (record, masters) = run_cell(&geo, &env, &config, theta, shards, args.reps);
        eprintln!(
            "  shards={:<2} {:>7.2} steps/s  shuffle {:>12} B  ghosts {:>7}  ({} migrations)",
            record.shards,
            record.steps_per_sec(),
            record.shuffle_bytes,
            record.ghost_vertices,
            record.migrations,
        );
        // The shard-determinism contract: every shard count trains the
        // bit-identical plan of the single-process trainer.
        assert_eq!(
            reference, masters,
            "{shards} shards trained a different plan than the single-process trainer"
        );
        assert_eq!(
            baseline.total_migrations(),
            record.migrations,
            "{shards} shards applied a different move count"
        );
        records.push(record);
    }
    eprintln!("  determinism: all {} sharded runs bit-identical to the trainer", records.len());

    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"shard_runtime\",");
    let _ = writeln!(json, "  \"dataset\": \"twitter_analog\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"vertices\": {},", geo.num_vertices());
    let _ = writeln!(json, "  \"edges\": {},", geo.num_edges());
    let _ = writeln!(json, "  \"num_dcs\": {},", env.num_dcs());
    let _ = writeln!(json, "  \"steps\": {},", args.steps);
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(json, "  \"baseline_steps_per_sec\": {baseline_sps:.4},");
    let _ = writeln!(json, "  \"identical_plan_cross_check\": \"passed\",");
    json.push_str("  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shards\": {}, \"steps_per_sec\": {:.4}, \"total_secs\": {:.6}, \"score_secs\": {:.6}, \"migrate_secs\": {:.6}, \"migrations\": {}, \"shuffle_bytes\": {}, \"ghost_vertices\": {}, \"shard_resident_bytes_max\": {}, \"shard_resident_bytes_total\": {}}}",
            r.shards,
            r.steps_per_sec(),
            r.total.as_secs_f64(),
            r.score.as_secs_f64(),
            r.migrate.as_secs_f64(),
            r.migrations,
            r.shuffle_bytes,
            r.ghost_vertices,
            r.view_bytes_max,
            r.view_bytes_total,
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let mut mem = geograph::MemReport::new(geo.num_edges() as u64);
    mem.add("geo_graph", geo.heap_bytes());
    mem.add("placement_state", baseline.state.heap_bytes());
    json.push_str(&geobench::mem_json_field(&mem));
    let _ = writeln!(json, "  \"baseline_migrations\": {}", baseline.total_migrations());
    json.push_str("}\n");
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("could not write {}: {e}", args.out));
    eprintln!("  wrote {}", args.out);
}
