//! Regenerates the paper artifact; see `geobench::experiments::fig8_agent_overhead`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::fig8_agent_overhead::run(&ctx);
}
