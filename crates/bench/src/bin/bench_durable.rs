//! Durability micro-bench: what crash-exact recovery costs.
//!
//! Drives a [`rlcut::DurableAdaptive`] pipeline over an LJ-analog growth
//! stream (same workload shape as `bench_adaptive`) and measures the three
//! durability overheads:
//!
//!   1. WAL bytes appended per window (start + batch + commit records),
//!   2. snapshot size at the configured cadence,
//!   3. recovery time — twice: from the latest snapshot plus the WAL tail
//!      (the normal path), and on a twin pipeline that never snapshots,
//!      so recovery replays the whole log from genesis (the worst case).
//!
//! Both recoveries are checked bit-exact against the live run: masters
//! must be identical and the movement-cost accumulator equal to the last
//! `f64` bit. Writes a machine-readable `BENCH_durable.json` (format
//! documented in `DESIGN.md` §3g).
//!
//! Usage:
//!   bench_durable [--scale f] [--seed n] [--windows n] [--threads n]
//!                 [--snapshot-every n] [--out path] [--assert-max-recovery-ms n]
//!
//! `--assert-max-recovery-ms n` exits non-zero unless the snapshot-path
//! recovery finishes within `n` milliseconds (used by `scripts/verify.sh`
//! as a smoke gate alongside the built-in bit-exactness asserts).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use geograph::dynamic::split_for_dynamic;
use geograph::generators::preferential::preferential_attachment_edges;
use geograph::locality::{assign_locations, LocalityConfig};
use geograph::{Dataset, GeoGraph, GraphDelta};
use geopart::TrafficProfile;
use geosim::regions::ec2_eight_regions;
use rlcut::{DurableAdaptive, RlCutConfig};

struct Args {
    scale: f64,
    seed: u64,
    windows: u64,
    threads: usize,
    snapshot_every: u64,
    out: String,
    assert_max_recovery_ms: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.004,
        seed: 42,
        windows: 12,
        threads: 2,
        snapshot_every: 4,
        out: "BENCH_durable.json".to_string(),
        assert_max_recovery_ms: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes a float"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            "--windows" => {
                args.windows = value.parse().expect("--windows takes an integer");
                assert!(args.windows >= 4, "--windows must be >= 4");
            }
            "--threads" => args.threads = value.parse().expect("--threads takes an integer"),
            "--snapshot-every" => {
                args.snapshot_every = value.parse().expect("--snapshot-every takes an integer")
            }
            "--out" => args.out = value.clone(),
            "--assert-max-recovery-ms" => {
                args.assert_max_recovery_ms =
                    Some(value.parse().expect("--assert-max-recovery-ms takes an integer"))
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    args
}

struct WindowRecord {
    delta_edges: usize,
    wal_bytes: u64,
    overhead_secs: f64,
    snapshot_bytes: Option<u64>,
}

fn main() {
    let args = parse_args();
    let n = Dataset::LiveJournal.scaled_vertices(args.scale);
    let epv = (Dataset::LiveJournal.paper_edges() as f64
        / Dataset::LiveJournal.paper_vertices() as f64)
        .round() as usize;
    let edges = preferential_attachment_edges(n, epv, args.seed);
    let (initial, stream) = split_for_dynamic(&edges, n, 0.7, args.windows * 1_000);
    let windows: Vec<_> = stream.windows(1_000).collect();
    assert!(windows.len() >= 4, "need >= 4 delta windows, got {}", windows.len());

    let final_graph = {
        let mut g = initial.clone();
        for w in &windows {
            g = g.apply_delta(&GraphDelta::from_events(&g, w));
        }
        g
    };
    let cfg = LocalityConfig::paper_default(args.seed);
    let locations = assign_locations(&final_graph, &cfg);
    let sizes: Vec<u64> = (0..final_graph.num_vertices()).map(|_| 65536).collect();
    let env = ec2_eight_regions();
    let dir = std::env::temp_dir().join(format!("rlcut_bench_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "bench_durable: LJ-analog scale={} ({} vertices, {} -> {} edges), {} windows, snapshot every {}, dir {}",
        args.scale,
        n,
        initial.num_edges(),
        final_graph.num_edges(),
        windows.len(),
        args.snapshot_every,
        dir.display(),
    );

    // Pinned training work (fixed sample rate, fixed steps, pinned theta)
    // so recovered-vs-live comparisons are bit-exact by construction and
    // WAL volume is stable across machines.
    let config = RlCutConfig::new(1.0)
        .with_seed(args.seed)
        .with_threads(args.threads)
        .with_theta(geograph::degree::suggest_theta(&final_graph, 0.05))
        .with_fixed_sample_rate(0.05)
        .with_max_steps(2);
    let t_opt = Duration::from_secs(60);

    // Drives the whole workload against a fresh durable pipeline at
    // `run_dir`. `cadence == 0` disables snapshots entirely, leaving only
    // the genesis one — recovery then replays the full log.
    let drive = |run_dir: &std::path::Path, cadence: u64, verbose: bool| {
        let _ = std::fs::remove_dir_all(run_dir);
        let mut graph = initial.clone();
        let geo0 = GeoGraph::new(
            graph.clone(),
            locations[..graph.num_vertices()].to_vec(),
            sizes[..graph.num_vertices()].to_vec(),
            cfg.num_dcs,
        );
        let mut durable =
            DurableAdaptive::create(run_dir, config.clone(), Some(0.4), geo0, &env, 0)
                .expect("create durable dir");

        let mut records: Vec<WindowRecord> = Vec::new();
        let mut snapshot_sizes: Vec<u64> = Vec::new();
        let genesis_bytes = durable.store().appended_bytes();
        let mut bytes_before = genesis_bytes;
        let p0 = TrafficProfile::uniform(graph.num_vertices(), 8.0);
        let r0 = durable.window(&env, None, &[], &[], p0, 10.0, t_opt).expect("window 0");
        records.push(WindowRecord {
            delta_edges: 0,
            wal_bytes: durable.store().appended_bytes() - bytes_before,
            overhead_secs: r0.overhead.as_secs_f64(),
            snapshot_bytes: None,
        });
        bytes_before = durable.store().appended_bytes();

        for (i, window) in windows.iter().enumerate() {
            let delta = GraphDelta::from_events(&graph, window);
            let old_n = graph.num_vertices();
            graph = graph.apply_delta(&delta);
            let new_n = graph.num_vertices();
            let p = TrafficProfile::uniform(new_n, 8.0);
            let report = durable
                .window(
                    &env,
                    Some(&delta),
                    &locations[old_n..new_n],
                    &sizes[old_n..new_n],
                    p,
                    10.0,
                    t_opt,
                )
                .unwrap_or_else(|e| panic!("window {}: {e}", i + 1));
            // Explicit snapshots at the cadence (the automatic trigger is
            // off) so each one's byte size can be recorded.
            let snap_bytes = if cadence > 0 && (i as u64 + 1).is_multiple_of(cadence) {
                let b = durable.snapshot_now().expect("snapshot");
                snapshot_sizes.push(b);
                Some(b)
            } else {
                None
            };
            records.push(WindowRecord {
                delta_edges: delta.num_edge_changes(),
                wal_bytes: durable.store().appended_bytes() - bytes_before,
                overhead_secs: report.overhead.as_secs_f64(),
                snapshot_bytes: snap_bytes,
            });
            bytes_before = durable.store().appended_bytes();
            if verbose {
                eprintln!(
                    "  window {:>2}: delta {:>6} edges | wal {:>8} B | overhead {:>8.3}ms{}",
                    i + 1,
                    records.last().unwrap().delta_edges,
                    records.last().unwrap().wal_bytes,
                    report.overhead.as_secs_f64() * 1e3,
                    snap_bytes.map(|b| format!(" | snapshot {b} B")).unwrap_or_default(),
                );
            }
        }

        let committed = durable.next_window();
        let (core, _) = durable.inner().carried_parts().expect("live run carries state");
        let masters = core.masters().to_vec();
        let cost_bits = core.movement_cost().to_bits();
        drop(durable); // the "crash": nothing survives but the directory
        (records, snapshot_sizes, genesis_bytes, committed, masters, cost_bits)
    };

    // Run with snapshots; the same deterministic workload later reruns
    // snapshot-free for the full-replay recovery measurement.
    let (records, snapshot_sizes, genesis_bytes, committed, live_masters, live_cost_bits) =
        drive(&dir, args.snapshot_every, true);

    // Recovery 1: normal path, latest snapshot + WAL tail.
    let start = Instant::now();
    let (recovered, summary) =
        DurableAdaptive::recover(&dir, config.clone(), Some(0.4), &env, args.snapshot_every)
            .expect("snapshot-path recovery");
    let recovery_snapshot = start.elapsed();
    assert_eq!(summary.next_window, committed, "recovery lost windows");
    assert_eq!(recovered.masters(), &live_masters[..], "recovered masters diverged");
    let (core, _) = recovered.inner().carried_parts().expect("recovered state");
    assert_eq!(core.movement_cost().to_bits(), live_cost_bits, "movement cost not bit-exact");
    let tail_windows = summary.replayed_windows;
    drop(recovered);

    // Recovery 2: worst case — the twin pipeline never snapshotted, so
    // only the genesis snapshot exists and the whole log is replayed.
    let full_dir = dir.join("full");
    let (_, _, _, full_committed, full_masters, full_cost_bits) = drive(&full_dir, 0, false);
    assert_eq!(full_committed, committed, "twin run diverged");
    assert_eq!(full_masters, live_masters, "deterministic twin produced different masters");
    assert_eq!(full_cost_bits, live_cost_bits);
    let start = Instant::now();
    let (recovered, summary) =
        DurableAdaptive::recover(&full_dir, config.clone(), Some(0.4), &env, 0)
            .expect("full-replay recovery");
    let recovery_full = start.elapsed();
    assert_eq!(summary.next_window, committed);
    assert_eq!(summary.replayed_windows, committed, "full replay must cover every window");
    assert_eq!(recovered.masters(), &live_masters[..], "full replay diverged");
    let (core, _) = recovered.inner().carried_parts().expect("recovered state");
    assert_eq!(core.movement_cost().to_bits(), live_cost_bits);
    drop(recovered);

    let wal_total: u64 = records.iter().map(|r| r.wal_bytes).sum();
    let wal_per_window = wal_total as f64 / records.len() as f64;
    let snap_last = snapshot_sizes.last().copied().unwrap_or(0);
    eprintln!(
        "  recovery: snapshot+tail {:.3}ms ({tail_windows} windows replayed) vs full replay {:.3}ms ({committed} windows); \
         wal {wal_total} B total ({wal_per_window:.0} B/window), last snapshot {snap_last} B; bit-exact OK",
        recovery_snapshot.as_secs_f64() * 1e3,
        recovery_full.as_secs_f64() * 1e3,
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"durable_recovery\",");
    let _ = writeln!(json, "  \"dataset\": \"livejournal_analog\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"vertices\": {n},");
    let _ = writeln!(json, "  \"final_edges\": {},", final_graph.num_edges());
    let _ = writeln!(json, "  \"threads\": {},", args.threads);
    let _ = writeln!(json, "  \"windows\": {committed},");
    let _ = writeln!(json, "  \"snapshot_every\": {},", args.snapshot_every);
    let _ = writeln!(json, "  \"genesis_bytes\": {genesis_bytes},");
    json.push_str("  \"per_window\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"window\": {i}, \"delta_edges\": {}, \"wal_bytes\": {}, \
             \"overhead_secs\": {:.6}, \"snapshot_bytes\": {}}}",
            r.delta_edges,
            r.wal_bytes,
            r.overhead_secs,
            r.snapshot_bytes.map(|b| b.to_string()).unwrap_or_else(|| "null".to_string()),
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"wal_bytes_total\": {wal_total},");
    let _ = writeln!(json, "  \"wal_bytes_per_window\": {wal_per_window:.1},");
    let _ = writeln!(json, "  \"snapshot_bytes_last\": {snap_last},");
    let _ = writeln!(json, "  \"recovery_snapshot_secs\": {:.6},", recovery_snapshot.as_secs_f64());
    let _ = writeln!(json, "  \"recovery_snapshot_replayed_windows\": {tail_windows},");
    let _ = writeln!(json, "  \"recovery_full_secs\": {:.6},", recovery_full.as_secs_f64());
    let _ = writeln!(json, "  \"recovery_full_replayed_windows\": {committed},");
    let mut mem = geograph::MemReport::new(final_graph.num_edges() as u64);
    mem.add("final_graph_csr", final_graph.heap_bytes());
    json.push_str(&geobench::mem_json_field(&mem));
    let _ = writeln!(json, "  \"recovered_bit_exact\": true");
    json.push_str("}\n");
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("could not write {}: {e}", args.out));
    eprintln!("  wrote {}", args.out);
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(max_ms) = args.assert_max_recovery_ms {
        let got = recovery_snapshot.as_millis() as u64;
        assert!(got <= max_ms, "snapshot-path recovery took {got}ms (limit {max_ms}ms)");
    }
}
