//! Trainer-throughput micro-bench: persistent worker pool vs per-step
//! `thread::scope` dispatch on the 8-DC Twitter-analog preset.
//!
//! Sweeps thread counts × dispatch modes over identical full-sampling
//! training runs, cross-checks that every run trains the bit-identical
//! plan (the pool's determinism contract), and writes a machine-readable
//! `BENCH_trainer.json` (format documented in `DESIGN.md` §3d).
//!
//! Usage:
//!   bench_trainer [--scale f] [--seed n] [--steps n] [--reps n]
//!                 [--threads-list 1,2,4,8] [--out path]
//!                 [--assert-speedup f]
//!
//! `--assert-speedup f` exits non-zero unless pool/scope throughput at the
//! highest swept thread count is at least `f` (used by `scripts/verify.sh`
//! as a smoke gate at a deliberately loose ratio).

use std::fmt::Write as _;
use std::time::Duration;

use geograph::locality::LocalityConfig;
use geograph::{Dataset, GeoGraph};
use geosim::regions::ec2_eight_regions;
use rlcut::{RlCutConfig, RlCutResult};

struct Args {
    scale: f64,
    seed: u64,
    steps: usize,
    reps: usize,
    threads_list: Vec<usize>,
    out: String,
    assert_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.0004,
        seed: 42,
        steps: 5,
        reps: 3,
        threads_list: vec![1, 2, 4, 8],
        out: "BENCH_trainer.json".to_string(),
        assert_speedup: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let value = &argv[i + 1];
        match argv[i].as_str() {
            "--scale" => args.scale = value.parse().expect("--scale takes a float"),
            "--seed" => args.seed = value.parse().expect("--seed takes an integer"),
            "--steps" => args.steps = value.parse().expect("--steps takes an integer"),
            "--reps" => args.reps = value.parse().expect("--reps takes an integer"),
            "--threads-list" => {
                args.threads_list = value
                    .split(',')
                    .map(|t| t.parse().expect("--threads-list takes comma-separated integers"))
                    .collect();
                assert!(!args.threads_list.is_empty());
            }
            "--out" => args.out = value.clone(),
            "--assert-speedup" => {
                args.assert_speedup = Some(value.parse().expect("--assert-speedup takes a float"))
            }
            other => panic!("unknown option {other}"),
        }
        i += 2;
    }
    args
}

struct RunRecord {
    threads: usize,
    dispatch: &'static str,
    steps_run: usize,
    total: Duration,
    score: Duration,
    migrate: Duration,
    migrations: usize,
}

impl RunRecord {
    fn steps_per_sec(&self) -> f64 {
        self.steps_run as f64 / self.total.as_secs_f64()
    }
}

/// Best-of-`reps` timing of one (threads, dispatch) cell. Every rep trains
/// the same plan; the fastest rep is the least-noisy estimate of the
/// dispatch cost under test.
fn run_cell(
    geo: &GeoGraph,
    env: &geosim::CloudEnv,
    base: &RlCutConfig,
    threads: usize,
    pool: bool,
    reps: usize,
) -> (RunRecord, Vec<geograph::DcId>, usize) {
    let config = base.clone().with_threads(threads).with_worker_pool(pool);
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let mut best: Option<(RunRecord, RlCutResult<'_>)> = None;
    for _ in 0..reps.max(1) {
        let result = rlcut::partition(geo, env, profile.clone(), 10.0, &config);
        let record = RunRecord {
            threads,
            dispatch: if pool { "pool" } else { "scope" },
            steps_run: result.steps.len(),
            total: result.total_duration,
            score: result.steps.iter().map(|s| s.score_duration).sum(),
            migrate: result.steps.iter().map(|s| s.migrate_duration).sum(),
            migrations: result.total_migrations(),
        };
        if best.as_ref().is_none_or(|(b, _)| record.total < b.total) {
            best = Some((record, result));
        }
    }
    let (record, result) = best.expect("reps >= 1");
    let state_bytes = result.state.heap_bytes();
    (record, result.state.core().masters().to_vec(), state_bytes)
}

fn main() {
    let args = parse_args();
    let graph = Dataset::Twitter.generate(args.scale, args.seed);
    let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(args.seed));
    let env = ec2_eight_regions();
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    // Full sampling + the paper's batch size keeps both parallel phases
    // saturated every step — the regime the pool is built for.
    let base = RlCutConfig::new(budget)
        .with_seed(args.seed)
        .with_fixed_sample_rate(1.0)
        .with_max_steps(args.steps);
    eprintln!(
        "bench_trainer: TW-analog scale={} ({} vertices, {} edges), {} DCs, {} steps x {} reps",
        args.scale,
        geo.num_vertices(),
        geo.num_edges(),
        env.num_dcs(),
        args.steps,
        args.reps
    );

    let mut records: Vec<RunRecord> = Vec::new();
    let mut reference: Option<(Vec<geograph::DcId>, usize)> = None;
    let mut state_bytes = 0usize;
    for &threads in &args.threads_list {
        for pool in [true, false] {
            let (record, masters, sb) = run_cell(&geo, &env, &base, threads, pool, args.reps);
            state_bytes = sb;
            eprintln!(
                "  threads={:<2} dispatch={:<5} {:>7.2} steps/s  (score {:.3}s, migrate {:.3}s, {} migrations)",
                record.threads,
                record.dispatch,
                record.steps_per_sec(),
                record.score.as_secs_f64(),
                record.migrate.as_secs_f64(),
                record.migrations,
            );
            // Determinism cross-check: every cell must train the
            // bit-identical plan and apply the same number of moves.
            match &reference {
                None => reference = Some((masters, record.migrations)),
                Some((ref_masters, ref_migrations)) => {
                    assert_eq!(
                        *ref_masters, masters,
                        "threads={threads} dispatch={} trained a different plan",
                        record.dispatch
                    );
                    assert_eq!(
                        *ref_migrations, record.migrations,
                        "threads={threads} dispatch={} applied a different move count",
                        record.dispatch
                    );
                }
            }
            records.push(record);
        }
    }
    eprintln!("  determinism: all {} runs bit-identical", records.len());

    let cell = |threads: usize, dispatch: &str| {
        records.iter().find(|r| r.threads == threads && r.dispatch == dispatch)
    };
    let max_threads = *args.threads_list.iter().max().unwrap();
    let speedup_at = |threads: usize| -> Option<f64> {
        let (p, s) = (cell(threads, "pool")?, cell(threads, "scope")?);
        Some(p.steps_per_sec() / s.steps_per_sec())
    };
    // Headline: best pool-vs-scope ratio in the ≥4-thread cells (falling
    // back to the highest swept count) — the regime the pool targets. The
    // ratio is only meaningful when the host actually has cores to park
    // workers on, hence `host_cpus` in the report.
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let headline = args
        .threads_list
        .iter()
        .filter(|&&t| t >= 4)
        .filter_map(|&t| speedup_at(t))
        .fold(None::<f64>, |acc, sp| Some(acc.map_or(sp, |a| a.max(sp))))
        .or_else(|| speedup_at(max_threads));
    if let Some(sp) = headline {
        eprintln!(
            "  best pool vs scope speedup at >=4 threads: {sp:.3}x (host has {host_cpus} cpus)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"trainer_throughput\",");
    let _ = writeln!(json, "  \"dataset\": \"twitter_analog\",");
    let _ = writeln!(json, "  \"scale\": {},", args.scale);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"vertices\": {},", geo.num_vertices());
    let _ = writeln!(json, "  \"edges\": {},", geo.num_edges());
    let _ = writeln!(json, "  \"num_dcs\": {},", env.num_dcs());
    let _ = writeln!(json, "  \"steps\": {},", args.steps);
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    // Explicit flag for downstream gates: the >=1.15x pool-vs-scope target
    // is only meaningful with >=4 real cores to park workers on. Consumers
    // (scripts/verify.sh) skip the ratio gate when this is true instead of
    // quietly passing on a loose ratio.
    let _ = writeln!(json, "  \"underprovisioned_host\": {},", host_cpus < 4);
    json.push_str("  \"runs\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"threads\": {}, \"dispatch\": \"{}\", \"steps_per_sec\": {:.4}, \"total_secs\": {:.6}, \"score_secs\": {:.6}, \"migrate_secs\": {:.6}, \"migrations\": {}}}",
            r.threads,
            r.dispatch,
            r.steps_per_sec(),
            r.total.as_secs_f64(),
            r.score.as_secs_f64(),
            r.migrate.as_secs_f64(),
            r.migrations,
        );
        json.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    match headline {
        Some(sp) => {
            let _ = writeln!(json, "  \"best_pool_vs_scope_speedup\": {sp:.4},");
        }
        None => {
            let _ = writeln!(json, "  \"best_pool_vs_scope_speedup\": null,");
        }
    }
    let mut mem = geograph::MemReport::new(geo.num_edges() as u64);
    mem.add("geo_graph", geo.heap_bytes());
    mem.add("placement_state", state_bytes);
    json.push_str(&geobench::mem_json_field(&mem));
    let _ = writeln!(json, "  \"max_threads\": {max_threads}");
    json.push_str("}\n");
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| panic!("could not write {}: {e}", args.out));
    eprintln!("  wrote {}", args.out);

    if let Some(required) = args.assert_speedup {
        let sp = headline.expect("--assert-speedup needs both pool and scope runs");
        assert!(
            sp >= required,
            "best pool vs scope speedup {sp:.3}x is below the required {required}x \
             (host has {host_cpus} cpus; the 1.15x target assumes >=4 real cores)"
        );
    }
}
