//! Regenerates the paper artifact; see `geobench::experiments::exp5_dynamic`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::exp5_dynamic::run(&ctx);
}
