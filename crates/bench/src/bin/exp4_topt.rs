//! Regenerates the paper artifact; see `geobench::experiments::exp4_topt`.

fn main() {
    let ctx = geobench::ExpContext::from_args(0.001);
    geobench::experiments::exp4_topt::run(&ctx);
}
