//! # geobench — experiment harness for the RLCut reproduction
//!
//! One binary per paper table/figure (see `DESIGN.md` §4 for the index),
//! plus the shared plumbing here: dataset construction, method runners
//! with overhead timing, and plain-text table rendering.
//!
//! Every binary accepts:
//!
//! * `--scale <f>`  — fraction of the paper's dataset sizes (default varies
//!   per experiment; raise toward 1.0 on big machines),
//! * `--seed <n>`   — RNG seed (default 42),
//! * `--threads <n>` — worker threads (default: available parallelism).

pub mod experiments;

use std::time::{Duration, Instant};

use geobase::{ginger::GingerConfig, PlanKind};
use geoengine::Algorithm;
use geograph::locality::LocalityConfig;
use geograph::{Dataset, GeoGraph};
use geosim::CloudEnv;
use rlcut::RlCutConfig;

/// Common CLI options of every experiment binary.
#[derive(Clone, Copy, Debug)]
pub struct ExpContext {
    pub scale: f64,
    pub seed: u64,
    pub threads: usize,
}

impl ExpContext {
    /// Parses `--scale`, `--seed` and `--threads` from `std::env::args`,
    /// with the experiment's default scale.
    pub fn from_args(default_scale: f64) -> Self {
        let mut ctx = ExpContext {
            scale: default_scale,
            seed: 42,
            threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        };
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i + 1 < args.len() {
            match args[i].as_str() {
                "--scale" => ctx.scale = args[i + 1].parse().expect("--scale takes a float"),
                "--seed" => ctx.seed = args[i + 1].parse().expect("--seed takes an integer"),
                "--threads" => {
                    ctx.threads = args[i + 1].parse().expect("--threads takes an integer")
                }
                other => panic!("unknown option {other} (expected --scale/--seed/--threads)"),
            }
            i += 2;
        }
        ctx
    }

    /// Builds the geo-distributed analog of a paper dataset at this
    /// context's scale, with the paper's 8-DC skewed locality.
    pub fn build_geo(&self, dataset: Dataset) -> GeoGraph {
        let graph = dataset.generate(self.scale, self.seed);
        GeoGraph::from_graph(graph, &LocalityConfig::paper_default(self.seed))
    }
}

/// Times a closure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// One partitioner's run: the plan it produced and what it cost to produce.
pub struct MethodRun<'g> {
    pub name: &'static str,
    pub plan: PlanKind<'g>,
    pub overhead: Duration,
}

/// Which methods to run (Geo-Cut and Revolver are orders of magnitude
/// slower; the paper only runs them on LJ/OT — mirror that).
#[derive(Clone, Copy, Debug)]
pub struct MethodSet {
    pub include_slow: bool,
}

/// Runs the six comparison methods plus RLCut on one workload, timing each.
/// RLCut's `T_opt` defaults to Ginger's measured overhead (§VI-A.4).
pub fn run_all_methods<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    algo: &Algorithm,
    budget: f64,
    set: MethodSet,
    ctx: &ExpContext,
) -> Vec<MethodRun<'g>> {
    let profile = algo.profile(geo);
    let iters = algo.expected_iterations();
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
    let mut runs = Vec::new();
    // One pool shared by every pool-enabled refiner in this workload run
    // (the RLCut trainer keeps its own session-resident pool).
    let pool = (ctx.threads > 1).then(|| rlcut::WorkerPool::new(ctx.threads));

    let (plan, overhead) =
        timed(|| PlanKind::Vertex(geobase::randpg(geo, env, profile.clone(), iters, ctx.seed)));
    runs.push(MethodRun { name: "RandPG", plan, overhead });

    if set.include_slow {
        let (plan, overhead) = timed(|| {
            PlanKind::Vertex(geobase::geocut_with_pool(
                geo,
                env,
                geobase::geocut::GeoCutConfig::new(budget).with_threads(ctx.threads),
                profile.clone(),
                iters,
                pool.as_ref(),
            ))
        });
        runs.push(MethodRun { name: "Geo-Cut", plan, overhead });
    }

    let (plan, overhead) = timed(|| {
        PlanKind::Hybrid(geobase::hashpl(geo, env, theta, profile.clone(), iters, ctx.seed))
    });
    runs.push(MethodRun { name: "HashPL", plan, overhead });

    let (plan, ginger_overhead) = timed(|| {
        PlanKind::Hybrid(geobase::ginger_with_pool(
            geo,
            env,
            GingerConfig::new(theta, ctx.seed).with_threads(ctx.threads),
            profile.clone(),
            iters,
            pool.as_ref(),
        ))
    });
    runs.push(MethodRun { name: "Ginger", plan, overhead: ginger_overhead });

    if set.include_slow {
        let (plan, overhead) = timed(|| {
            PlanKind::Edge(geobase::revolver(
                geo,
                env,
                geobase::revolver::RevolverConfig { seed: ctx.seed, ..Default::default() },
                profile.clone(),
                iters,
            ))
        });
        runs.push(MethodRun { name: "Revolver", plan, overhead });
    }

    let config = RlCutConfig::new(budget)
        .with_seed(ctx.seed)
        .with_threads(ctx.threads)
        .with_t_opt(default_t_opt(ginger_overhead));
    let (result, overhead) = timed(|| rlcut::partition(geo, env, profile.clone(), iters, &config));
    runs.push(MethodRun { name: "RLCut", plan: PlanKind::Hybrid(result.state), overhead });

    runs
}

/// The paper sets `T_opt` to Ginger's overhead (§VI-A.4). Its Ginger runs
/// inside PowerLyra (ingestion + greedy placement on 48 cores, ~15-613 s,
/// Table III); our standalone streaming Ginger is roughly an order of
/// magnitude faster relative to an RLCut training step, so we calibrate by
/// that constant — keeping RLCut at the paper's intended "comparable
/// overhead" operating point — and floor tiny-graph cases at 100 ms.
pub fn default_t_opt(ginger_overhead: Duration) -> Duration {
    (ginger_overhead * 20).max(Duration::from_millis(100))
}

/// A plain-text table that renders like the paper's.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("\n== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Prints the table; additionally, when `GEOBENCH_CSV_DIR` is set,
    /// writes a machine-readable CSV named after the table title into that
    /// directory.
    pub fn print(&self) {
        print!("{}", self.render());
        if let Ok(dir) = std::env::var("GEOBENCH_CSV_DIR") {
            let slug: String = self
                .title
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect::<String>()
                .split('_')
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join("_");
            let truncated: String = slug.chars().take(64).collect();
            let path = std::path::Path::new(&dir).join(format!("{truncated}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {path:?}: {e}");
            }
        }
    }
}

/// Renders `report` as the standard `"mem"` field every `BENCH_*.json`
/// carries (two-space indent, trailing comma) — append it to the JSON body
/// before the final comma-less field so memory cost reads uniformly across
/// benches.
pub fn mem_json_field(report: &geograph::MemReport) -> String {
    format!("  \"mem\": {},\n", report.to_json("  "))
}

/// Formats a float with 3 significant-ish digits, falling back to
/// scientific notation for values that would round to 0.000.
pub fn f3(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else if x.abs() >= 0.005 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

/// Formats a duration in seconds.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geosim::regions::ec2_eight_regions;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("long-header"));
    }

    #[test]
    fn all_methods_run_on_a_tiny_graph() {
        let ctx = ExpContext { scale: 1e-9, seed: 1, threads: 2 };
        let geo = ctx.build_geo(Dataset::LiveJournal); // floors at 1024 vertices
        let env = ec2_eight_regions();
        let algo = Algorithm::pagerank();
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let runs =
            run_all_methods(&geo, &env, &algo, budget, MethodSet { include_slow: true }, &ctx);
        assert_eq!(runs.len(), 6);
        let names: Vec<_> = runs.iter().map(|r| r.name).collect();
        assert_eq!(names, ["RandPG", "Geo-Cut", "HashPL", "Ginger", "Revolver", "RLCut"]);
        // RLCut must respect the budget and beat every other method that
        // does (the paper's Fig 10/11 point: HashPL/Ginger win some time by
        // blowing the budget several times over).
        let rlcut = runs.last().unwrap().plan.objective(&env);
        assert!(rlcut.total_cost() <= budget, "rlcut over budget");
        let best_feasible = runs
            .iter()
            .map(|r| r.plan.objective(&env))
            .filter(|o| o.total_cost() <= budget * 1.0001)
            .map(|o| o.transfer_time)
            .fold(f64::INFINITY, f64::min);
        assert!(
            rlcut.transfer_time <= best_feasible * 1.05,
            "rlcut {} vs best feasible {best_feasible}",
            rlcut.transfer_time
        );
    }

    #[test]
    fn mem_json_field_shape() {
        let mut r = geograph::MemReport::new(10);
        r.add("csr", 90);
        let field = mem_json_field(&r);
        assert!(field.starts_with("  \"mem\": {"), "{field}");
        assert!(field.ends_with("},\n"), "{field}");
        assert!(field.contains("\"bytes_per_edge\": 9.000"), "{field}");
    }

    #[test]
    fn csv_escapes_and_round_trips() {
        let mut t = Table::new("csv demo", &["name", "value"]);
        t.row(vec!["plain".into(), "1.0".into()]);
        t.row(vec!["with,comma".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1.0");
        assert_eq!(lines[2], "\"with,comma\",\"say \"\"hi\"\"\"");
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(123.4), "123");
        assert_eq!(f3(1.234), "1.23");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(f3(0.000123), "1.23e-4");
    }
}
