//! Fig 4: hourly added nodes/edges over one day of a Stack-Overflow-like
//! temporal stream — the motivation for overhead adaptivity.

use crate::{ExpContext, Table};
use geograph::dynamic::DiurnalModel;
use geograph::fxhash::FxHashSet;

pub fn run(ctx: &ExpContext) {
    let model = DiurnalModel {
        mean_rate: (2000.0 * (ctx.scale / 0.001).max(0.05)).max(200.0),
        seed: ctx.seed,
        ..Default::default()
    };
    let (initial, stream) = model.generate_day_stream(5000);
    let windows = stream.windows(3_600_000);
    let mut t = Table::new(
        "Fig 4 — ratio of added nodes and edges per hour (synthetic SO-like day)",
        &["Hour", "Added edges", "Added nodes", "Edge ratio (vs initial)", "Node ratio"],
    );
    let base_edges = initial.num_edges() as f64;
    let base_nodes = initial.num_vertices() as f64;
    let mut known: FxHashSet<u32> = (0..initial.num_vertices() as u32).collect();
    let mut max_edges = 0u64;
    let mut min_edges = u64::MAX;
    for (hour, window) in windows.enumerate() {
        let edges = window.len() as u64;
        let mut nodes = 0u64;
        for e in window {
            if known.insert(e.src) {
                nodes += 1;
            }
            if known.insert(e.dst) {
                nodes += 1;
            }
        }
        max_edges = max_edges.max(edges);
        min_edges = min_edges.min(edges);
        t.row(vec![
            format!("{hour:02}"),
            edges.to_string(),
            nodes.to_string(),
            format!("{:.4}%", edges as f64 / base_edges * 100.0),
            format!("{:.4}%", nodes as f64 / base_nodes * 100.0),
        ]);
    }
    t.print();
    println!(
        "Max/min hourly edge arrivals: {max_edges}/{min_edges} = {:.1}x",
        max_edges as f64 / min_edges.max(1) as f64
    );
    println!("Paper reference: Fig 4 — the max hourly added ratio is 5-10x the minimum,");
    println!("i.e. graph dynamicity itself changes over time.");
}
