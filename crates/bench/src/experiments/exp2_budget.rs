//! Exp#2 (Fig 12): sensitivity to the budget constraint — Geo-Cut, Ginger
//! and RLCut on Orkut + PageRank with budgets of 1/10/40/50% of the
//! centralized data-movement cost.

use crate::{f3, timed, ExpContext, Table};
use geobase::ginger::GingerConfig;
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::Orkut);
    let algo = Algorithm::pagerank();
    let profile = algo.profile(&geo);
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
    let centralization = geosim::cost::centralization_cost(&env, &geo.locations, &geo.data_sizes).1;

    // Ginger ignores budgets; run once.
    let (ginger, ginger_overhead) = timed(|| {
        geobase::ginger(&geo, &env, GingerConfig::new(theta, ctx.seed), profile.clone(), 10.0)
    });
    let ginger_obj = ginger.objective(&env);

    let mut t = Table::new(
        "Fig 12 — budget sensitivity (OT, PR); times normalized to Ginger",
        &[
            "Budget",
            "Geo-Cut time",
            "RLCut time",
            "Geo-Cut cost/B",
            "Ginger cost/B",
            "RLCut cost/B",
        ],
    );
    for pct in [0.01, 0.10, 0.40, 0.50] {
        let budget = centralization * pct;
        let geocut = geobase::geocut(
            &geo,
            &env,
            geobase::geocut::GeoCutConfig::new(budget),
            profile.clone(),
            10.0,
        );
        let config = RlCutConfig::new(budget)
            .with_seed(ctx.seed)
            .with_threads(ctx.threads)
            .with_t_opt(crate::default_t_opt(ginger_overhead));
        let ours = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
        let gc = geocut.objective(&env);
        let rl = ours.final_objective(&env);
        t.row(vec![
            format!("{:.0}%", pct * 100.0),
            f3(gc.transfer_time / ginger_obj.transfer_time.max(1e-12)),
            f3(rl.transfer_time / ginger_obj.transfer_time.max(1e-12)),
            f3(gc.total_cost() / budget),
            f3(ginger_obj.total_cost() / budget),
            f3(rl.total_cost() / budget),
        ]);
    }
    t.print();
    println!("Paper reference: Fig 12 — RLCut best at every budget (47-60% below Ginger,");
    println!("85-89% below Geo-Cut); looser budgets improve RLCut until ~40%, then flat;");
    println!("RLCut and Geo-Cut stay within budget, Ginger exceeds it at tight budgets.");
}
