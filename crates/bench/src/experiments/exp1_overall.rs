//! Exp#1 — the overall evaluation: Fig 10 (normalized inter-DC transfer
//! time), Fig 11 (normalized monetary cost) and Table III (optimization
//! overhead) across five graphs, three algorithms and all methods.
//!
//! As in the paper, the slow methods (Geo-Cut, Revolver) only run on the
//! two smaller graphs (LJ, OT).

use crate::{f3, secs, ExpContext, MethodSet, Table};
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let algos = |geo: &geograph::GeoGraph| {
        vec![Algorithm::pagerank(), Algorithm::sssp(geo), Algorithm::subgraph_iso()]
    };

    // Overheads only depend on the graph (Table III uses PR): collect once.
    let mut overhead_rows: Vec<Vec<String>> = Vec::new();
    let mut method_names: Vec<&'static str> = Vec::new();

    for ds in Dataset::ALL {
        let geo = ctx.build_geo(ds);
        let include_slow = matches!(ds, Dataset::LiveJournal | Dataset::Orkut);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);

        for algo in algos(&geo) {
            let runs =
                crate::run_all_methods(&geo, &env, &algo, budget, MethodSet { include_slow }, ctx);
            let mut t = Table::new(
                &format!(
                    "Fig 10/11 — {} / {} ({} vertices, {} edges, budget ${:.4})",
                    ds.notation(),
                    algo.name(),
                    geo.num_vertices(),
                    geo.num_edges(),
                    budget
                ),
                &[
                    "Method",
                    "Transfer time (s)",
                    "Norm. to RandPG",
                    "Cost / budget",
                    "λ",
                    "Overhead (s)",
                ],
            );
            // RandPG (runs[0]) is the Fig 10 normalization baseline; a zero
            // baseline would come back as NaNs and must not be mislabeled
            // as a "normalized" column.
            let times: Vec<f64> =
                runs.iter().map(|r| r.plan.objective(&env).transfer_time).collect();
            let normalized = geopart::metrics::normalize_to_first(&times);
            assert!(
                normalized.iter().all(|x| x.is_finite()),
                "RandPG transfer time is zero on {} / {} — Fig 10 normalization is undefined",
                ds.notation(),
                algo.name()
            );
            for (run, &norm) in runs.iter().zip(&normalized) {
                let report = run.plan.execute(&geo, &env, &algo);
                let obj = run.plan.objective(&env);
                t.row(vec![
                    run.name.to_string(),
                    f3(report.transfer_time),
                    f3(norm),
                    f3(obj.total_cost() / budget),
                    f3(run.plan.replication_factor()),
                    secs(run.overhead),
                ]);
            }
            t.print();

            if algo.name() == "PR" {
                // Table III row for this graph.
                if method_names.is_empty() || runs.len() > method_names.len() {
                    method_names = runs.iter().map(|r| r.name).collect();
                }
                let mut cells = vec![ds.notation().to_string()];
                for name in ["RandPG", "Geo-Cut", "HashPL", "Ginger", "Revolver", "RLCut"] {
                    match runs.iter().find(|r| r.name == name) {
                        Some(r) => cells.push(secs(r.overhead)),
                        None => cells.push("-".to_string()),
                    }
                }
                overhead_rows.push(cells);
            }
        }
    }

    let mut t3 = Table::new(
        "Table III — optimization overhead (s) of partitioning methods (PR)",
        &["Graph", "RandPG", "Geo-Cut", "HashPL", "Ginger", "Revolver", "RLCut"],
    );
    for row in overhead_rows {
        t3.row(row);
    }
    t3.print();
    println!("Paper reference: Fig 10 — RLCut lowest transfer time everywhere (90-100% vs");
    println!("RandPG, 10-48% vs Ginger); Fig 11 — RLCut within budget while HashPL/Ginger");
    println!("overshoot badly; Table III — RLCut's overhead tracks Ginger's (its T_opt),");
    println!("Geo-Cut/Revolver orders of magnitude slower.");
}
