//! Fig 9: training only the lowest-k%-degree agents — transfer time drops
//! sharply up to k≈10 and flattens; overhead keeps growing with k.

use crate::{f3, ExpContext, Table};
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::Twitter);
    let algo = Algorithm::pagerank();
    let profile = algo.profile(&geo);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);

    let mut t = Table::new(
        "Fig 9 — lowest-k%-degree sampling (TW-analog, PR); normalized to k=100%",
        &["k (%)", "Transfer time", "Normalized time", "Overhead (s)", "Normalized overhead"],
    );
    let ks = [1.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0];
    let mut rows = Vec::new();
    for &k in &ks {
        let config = RlCutConfig::new(budget)
            .with_seed(ctx.seed)
            .with_threads(ctx.threads)
            .with_fixed_sample_rate(k / 100.0);
        let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
        rows.push((
            k,
            result.final_objective(&env).transfer_time,
            result.total_duration.as_secs_f64(),
        ));
    }
    let (ref_time, ref_overhead) = (rows.last().unwrap().1, rows.last().unwrap().2);
    for &(k, time, overhead) in &rows {
        t.row(vec![
            format!("{k:.0}"),
            f3(time),
            f3(time / ref_time.max(1e-12)),
            f3(overhead),
            f3(overhead / ref_overhead.max(1e-12)),
        ]);
    }
    t.print();
    println!("Paper reference: Fig 9 — transfer time drops sharply as k goes 0->10% and");
    println!("is almost stable after; high-degree agents contribute little optimization.");
}
