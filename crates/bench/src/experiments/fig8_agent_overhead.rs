//! Fig 8: training overhead is near-linear in the number of agents
//! participating (TW-analog, PageRank).

use crate::{f3, secs, ExpContext, Table};
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::Twitter);
    let algo = Algorithm::pagerank();
    let profile = algo.profile(&geo);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);

    let mut t = Table::new(
        &format!(
            "Fig 8 — training overhead vs participating agents (TW-analog, {} vertices)",
            geo.num_vertices()
        ),
        &["Agent fraction", "Agents", "Overhead (s)", "Overhead per step (s)"],
    );
    let mut series = Vec::new();
    for fraction in [0.1, 0.25, 0.5, 0.75, 1.0] {
        // Fig 8 predates the degree-importance heuristic: agents are
        // sampled uniformly, so overhead tracks agent *count*.
        let mut config = RlCutConfig::new(budget)
            .with_seed(ctx.seed)
            .with_threads(ctx.threads)
            .with_fixed_sample_rate(fraction);
        config.sample_strategy = rlcut::config::SampleStrategy::Random;
        let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
        let total: f64 = result.steps.iter().map(|s| s.duration.as_secs_f64()).sum();
        let per_step = total / result.steps.len().max(1) as f64;
        series.push((fraction, per_step));
        t.row(vec![
            format!("{:.0}%", fraction * 100.0),
            result.steps.first().map(|s| s.num_agents).unwrap_or(0).to_string(),
            secs(result.total_duration),
            f3(per_step),
        ]);
    }
    t.print();
    let slope_low = series[1].1 / series[0].1;
    let slope_high = series.last().unwrap().1 / series[0].1;
    println!(
        "Per-step overhead grows {:.1}x from 10%->25% and {:.1}x from 10%->100% of agents.",
        slope_low, slope_high
    );
    println!("Paper reference: Fig 8 — overhead is almost linearly related to the number");
    println!("of agents participating in training.");
}
