//! Exp#6 (robustness extension): time-to-recover from a DC outage.
//!
//! Not a paper artifact — the paper assumes a static, healthy WAN. This
//! experiment quantifies what the checkpointed, self-healing trainer buys:
//! a seeded [`FaultSchedule`] kills the DC hosting the most masters
//! mid-training, and we compare
//!
//! * **recovery** — restore the last checkpoint, evacuate the dark DC with
//!   the batched move kernel, continue training from the restored LA
//!   state — against
//! * **cold restart** — discard all learned state and retrain from the
//!   evacuated natural placement under the degraded environment,
//!
//! measuring the steps each needs to get back within 5 % of the no-fault
//! objective, and the objective regression at equal step budgets. A second
//! table runs PageRank under the same schedule to show the analytics-side
//! failure modes (aborted rounds, degraded-link inflation of Eq 1).

use crate::{f3, ExpContext, Table};
use geoengine::Algorithm;
use geograph::{Dataset, DcId};
use geosim::faults::FaultSchedule;
use geosim::regions::ec2_eight_regions;
use rlcut::{train_under_faults, RlCutConfig, StepStats};

/// First step whose objective is within `tolerance` of `target`, searching
/// only from `from` (recovery runs must reach the target *after* the
/// fault). `None` ⇒ never reached within the run.
fn steps_to_reach(steps: &[StepStats], from: usize, target: f64, tolerance: f64) -> Option<usize> {
    steps
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, s)| s.transfer_time <= target * (1.0 + tolerance))
        .map(|(i, _)| i + 1)
}

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::LiveJournal);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
    let max_steps = 30;
    let config = RlCutConfig::new(budget)
        .with_seed(ctx.seed)
        .with_threads(ctx.threads)
        .with_fixed_sample_rate(1.0)
        .with_max_steps(max_steps);
    let initial = || {
        geopart::HybridState::natural(
            &geo,
            &env,
            geograph::degree::suggest_theta(&geo.graph, 0.05),
            profile.clone(),
            10.0,
        )
    };

    // Baseline: uninterrupted training.
    let no_fault = rlcut::trainer::train(&geo, &env, initial(), &config);
    let target = no_fault.final_objective(&env).transfer_time;

    // Kill the DC hosting the most masters of the trained plan at step T.
    let masters = no_fault.state.core().masters();
    let mut per_dc = vec![0usize; env.num_dcs()];
    for &m in masters {
        per_dc[m as usize] += 1;
    }
    let victim = per_dc.iter().enumerate().max_by_key(|(_, &c)| c).map(|(d, _)| d as DcId).unwrap();
    let fault_step = (max_steps / 3) as u64;
    let schedule =
        FaultSchedule::single_outage(env.num_dcs(), 4 * max_steps as u64, victim, fault_step);

    // Self-healing run: checkpoint every 2 steps, recover through the
    // outage, keep training.
    let (healed, report) =
        train_under_faults(&geo, &env, initial(), &config, &schedule, 2).expect("recovery failed");
    // Post-fault step count, so both rows answer "how long from the outage
    // back to the target".
    let healed_reach = steps_to_reach(&healed.steps, fault_step as usize, target, 0.05)
        .map(|s| s - fault_step as usize);

    // Cold restart: everything learned before the fault is thrown away;
    // training restarts from the evacuated placement under the degraded
    // environment (fresh automata, fresh weights schedule).
    let view = schedule.view_at(&env, fault_step);
    let mut cold_state = initial();
    let mut scratch = geopart::MoveScratch::new();
    cold_state.evacuate(view.env(), view.dead_flags(), &mut scratch).expect("evacuation failed");
    let cold = rlcut::trainer::train(&geo, view.env(), cold_state, &config);
    let cold_reach = steps_to_reach(&cold.steps, 0, target, 0.05);

    let mut t = Table::new(
        &format!(
            "Exp#6 — DC {victim} outage at step {fault_step} (LJ-analog, {} vertices); \
             target = no-fault transfer time +5%",
            geo.num_vertices()
        ),
        &[
            "Strategy",
            "Post-fault steps to target",
            "Final transfer (×no-fault)",
            "Evacuated",
            "Recoveries",
        ],
    );
    let fmt_reach = |r: Option<usize>| match r {
        Some(s) => s.to_string(),
        None => format!(">{max_steps}"),
    };
    t.row(vec![
        "checkpoint+evacuate".into(),
        fmt_reach(healed_reach),
        f3(healed.final_objective(view.env()).transfer_time / target),
        report.evacuated_vertices.to_string(),
        report.crash_recoveries.to_string(),
    ]);
    t.row(vec![
        "cold retrain".into(),
        fmt_reach(cold_reach),
        f3(cold.final_objective(view.env()).transfer_time / target),
        "-".into(),
        "-".into(),
    ]);
    t.print();

    // Analytics under the same schedule: the job aborts when the victim
    // goes dark mid-run, and degraded rounds inflate Eq 1.
    let algo = Algorithm::pagerank();
    let plan = initial();
    let healthy = geoengine::execute_plan(&geo, &env, plan.core(), None, &algo);
    let faulted = geoengine::execute_plan_under_faults(
        &geo,
        &env,
        plan.core(),
        None,
        &algo,
        &schedule,
        fault_step.saturating_sub(5),
    );
    let mut t2 = Table::new(
        "Exp#6b — PageRank execution under the same schedule",
        &["Run", "Rounds done", "Transfer time (s)", "Aborted at", "Degraded rounds"],
    );
    t2.row(vec![
        "healthy".into(),
        healthy.iterations.to_string(),
        f3(healthy.transfer_time),
        "-".into(),
        "0".into(),
    ]);
    t2.row(vec![
        "under faults".into(),
        faulted.report.iterations.to_string(),
        f3(faulted.report.transfer_time),
        match faulted.aborted_at {
            Some((round, dc)) => format!("round {round} (DC {dc})"),
            None => "-".into(),
        },
        faulted.degraded_rounds.to_string(),
    ]);
    t2.print();

    println!(
        "Recovery resumed from checkpointed automata state: {} wall steps, {} checkpoint(s), \
         {} fault event step(s) handled.",
        report.wall_steps, report.checkpoints_taken, report.fault_events_handled
    );
    println!(
        "The aborted analytics run is the trigger for evacuation; after it the evacuated plan \
         re-runs to completion on the surviving DCs."
    );
}
