//! Fig 6: penalty-signal probability updates need ~30x more training
//! iterations to reach the quality reward-only updates get in 10.

use crate::{f3, ExpContext, Table};
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::Orkut);
    let algo = Algorithm::pagerank();
    let profile = algo.profile(&geo);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);

    // Reference: reward-only ("without penalty") trained for 10 steps.
    let base_cfg = RlCutConfig::new(budget).with_seed(ctx.seed).with_threads(ctx.threads);
    let reference = rlcut::partition(&geo, &env, profile.clone(), 10.0, &base_cfg);
    let reference_time = reference.final_objective(&env).transfer_time;

    let mut t = Table::new(
        "Fig 6 — penalty-update training normalized to no-penalty @ 10 steps (OT, PR)",
        &["Training steps", "Transfer time (penalty)", "Normalized to no-penalty@10"],
    );
    for steps in [10usize, 25, 50, 100, 200, 300] {
        let mut cfg = base_cfg.clone().with_max_steps(steps);
        cfg.use_penalty = true;
        // Disable convergence cut-off so longer horizons actually train.
        cfg.convergence_fraction = 0.0;
        let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &cfg);
        let time = result.final_objective(&env).transfer_time;
        t.row(vec![steps.to_string(), f3(time), f3(time / reference_time.max(1e-12))]);
    }
    t.print();
    println!("No-penalty reference @ 10 steps: transfer time {}", f3(reference_time));
    println!("Paper reference: Fig 6 — with-penalty converges to the no-penalty result");
    println!("only at ~300 iterations; without penalty 10 iterations suffice.");
}
