//! One module per paper table/figure; each exposes `run(&ExpContext)`
//! printing the regenerated rows/series. The `run_all` binary drives them
//! all at a reduced scale.

pub mod ablation;
pub mod exp1_overall;
pub mod exp2_budget;
pub mod exp3_batch;
pub mod exp4_topt;
pub mod exp5_dynamic;
pub mod exp6_faults;
pub mod fig1_geo_edges;
pub mod fig2_hybrid_vs_vertex;
pub mod fig3_heterogeneity;
pub mod fig4_dynamicity;
pub mod fig6_penalty;
pub mod fig8_agent_overhead;
pub mod fig9_degree_sampling;
pub mod table1_regions;
