//! Table I: uplink/downlink bandwidths and upload prices of EC2 regions.

use crate::{f3, ExpContext, Table};
use geosim::regions::{ec2_eight_regions, table1_regions};
use geosim::BYTES_PER_GB;

pub fn run(_ctx: &ExpContext) {
    let mut t = Table::new(
        "Table I — measured EC2 regions (paper: US East / AP Singapore / AP Sydney)",
        &["Region", "Uplink (GB/s)", "Downlink (GB/s)", "Price ($/GB)"],
    );
    for dc in table1_regions().dcs() {
        t.row(vec![
            dc.name.clone(),
            f3(dc.uplink_bps / BYTES_PER_GB),
            f3(dc.downlink_bps / BYTES_PER_GB),
            f3(dc.upload_price_per_byte * BYTES_PER_GB),
        ]);
    }
    t.print();

    let mut t8 = Table::new(
        "Full 8-region environment used by Exp#1 (interpolated where unmeasured)",
        &["Region", "Uplink (GB/s)", "Downlink (GB/s)", "Price ($/GB)"],
    );
    for dc in ec2_eight_regions().dcs() {
        t8.row(vec![
            dc.name.clone(),
            f3(dc.uplink_bps / BYTES_PER_GB),
            f3(dc.downlink_bps / BYTES_PER_GB),
            f3(dc.upload_price_per_byte * BYTES_PER_GB),
        ]);
    }
    t8.print();
    println!("Paper reference: Table I — uplinks 0.48-0.55 GB/s, downlinks 2.5-3.5 GB/s,");
    println!("prices $0.09-0.14/GB; downlinks several times uplinks; SIN > SYD by 17%/40%.");
}
