//! Fig 1: the inter-DC edge-count matrix of the geo-located Twitter graph.

use crate::{ExpContext, Table};
use geograph::locality::{inter_dc_edge_fraction, inter_dc_edge_matrix};
use geograph::Dataset;

pub fn run(ctx: &ExpContext) {
    let geo = ctx.build_geo(Dataset::Twitter);
    let names = ["SA", "USW", "USE", "AF", "OC", "NA", "AS", "EU"];
    let matrix = inter_dc_edge_matrix(&geo.graph, &geo.locations, geo.num_dcs);
    let mut headers = vec!["src\\dst"];
    headers.extend(names.iter().take(geo.num_dcs));
    let mut t = Table::new(
        &format!(
            "Fig 1 — edges between DCs, TW-analog at scale {} ({} vertices, {} edges)",
            ctx.scale,
            geo.num_vertices(),
            geo.num_edges()
        ),
        &headers,
    );
    for (i, row) in matrix.iter().enumerate() {
        let mut cells = vec![names[i].to_string()];
        cells.extend(row.iter().map(|c| c.to_string()));
        t.row(cells);
    }
    t.print();
    let frac = inter_dc_edge_fraction(&geo.graph, &geo.locations);
    println!("Inter-DC edge fraction: {:.1}%", frac * 100.0);
    println!("Paper reference: Fig 1 — over 75% of all edges are inter-DC.");
}
