//! Ablation study of RLCut's §IV/§V design choices: each row disables or
//! swaps one technique and reports quality + overhead against the full
//! configuration.

use crate::{f3, secs, ExpContext, Table};
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;
use rlcut::config::SampleStrategy;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::Orkut);
    let algo = Algorithm::pagerank();
    let profile = algo.profile(&geo);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let base = RlCutConfig::new(budget).with_seed(ctx.seed).with_threads(ctx.threads);

    let variants: Vec<(&str, RlCutConfig)> = vec![
        ("full RLCut (defaults)", base.clone()),
        ("batch size 1 (strict Fig 7)", base.clone().with_batch_size(1)),
        ("no straggler mitigation", {
            let mut c = base.clone();
            c.disable_straggler_mitigation = true;
            c
        }),
        ("penalty updates on (Eq 9)", {
            let mut c = base.clone();
            c.use_penalty = true;
            c
        }),
        ("random agent sampling", {
            let mut c = base.clone();
            c.sample_strategy = SampleStrategy::Random;
            c
        }),
        ("recency-weighted Eq 14 (λ=0.5)", {
            let mut c = base.clone().with_t_opt(std::time::Duration::from_millis(500));
            c.sampling_recency = Some(0.5);
            c
        }),
        (
            "T_opt 500ms, plain Eq 14",
            base.clone().with_t_opt(std::time::Duration::from_millis(500)),
        ),
        ("single thread", base.clone().with_threads(1)),
    ];

    let mut t = Table::new(
        &format!(
            "Ablation — RLCut design choices (OT-analog, PR, {} vertices, {} edges)",
            geo.num_vertices(),
            geo.num_edges()
        ),
        &["Variant", "Transfer time", "Norm.", "Cost/budget", "Overhead (s)", "Migrations"],
    );
    let mut reference = None;
    for (name, config) in variants {
        let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
        let obj = result.final_objective(&env);
        let base_time = *reference.get_or_insert(obj.transfer_time);
        t.row(vec![
            name.to_string(),
            f3(obj.transfer_time),
            f3(obj.transfer_time / base_time.max(1e-12)),
            f3(obj.total_cost() / budget),
            secs(result.total_duration),
            result.total_migrations().to_string(),
        ]);
    }
    t.print();
    println!("Reading: quality differences are within a few percent at this scale — the");
    println!("§V techniques are about *overhead* (batching, LPT, sampling) or robustness");
    println!("(reward-only converging within the 10-step horizon where penalty updates");
    println!("lag slightly). Thread count and straggler policy never change the plan");
    println!("(determinism), only the wall clock.");
}
