//! Exp#3 (Table IV): migration batch size vs optimization overhead and
//! result stability (TW-analog, PR, sampling rate pinned at 10%).

use crate::{f3, ExpContext, Table};
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::Twitter);
    let algo = Algorithm::pagerank();
    let profile = algo.profile(&geo);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);

    let mut t = Table::new(
        "Table IV — RLCut overhead vs batch size (TW-analog, PR, SR fixed 10%)",
        &[
            "Batch size",
            "Overhead (s)",
            "Migration phase (s)",
            "Migration speedup vs 1",
            "Transfer time",
            "Norm. time",
        ],
    );
    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8, 16, 32, 48] {
        let config = RlCutConfig::new(budget)
            .with_seed(ctx.seed)
            .with_threads(ctx.threads)
            .with_fixed_sample_rate(0.10)
            .with_batch_size(batch);
        let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
        let migrate: f64 = result.steps.iter().map(|s| s.migrate_duration.as_secs_f64()).sum();
        rows.push((
            batch,
            result.total_duration.as_secs_f64(),
            migrate,
            result.final_objective(&env).transfer_time,
        ));
    }
    let (base_migrate, base_time) = (rows[0].2, rows[0].3);
    for &(batch, overhead, migrate, time) in &rows {
        t.row(vec![
            batch.to_string(),
            f3(overhead),
            f3(migrate),
            format!("{:.1}x", base_migrate / migrate.max(1e-9)),
            f3(time),
            f3(time / base_time.max(1e-12)),
        ]);
    }
    t.print();
    println!("Paper reference: Table IV — overhead 271s at batch 1 down to 16s at batch");
    println!("48; transfer-time variance across batch sizes below 1%. Note: in this");
    println!("implementation the O(deg) incremental evaluator removes the migration");
    println!("bottleneck the paper's batching addresses, so the speedup concentrates in");
    println!("the (much smaller) migration phase.");
}
