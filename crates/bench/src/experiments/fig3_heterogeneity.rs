//! Fig 3: Ginger's inter-DC data transfer time normalized to RLCut's under
//! Low/Medium/High network heterogeneity (PR, five graphs).

use crate::{f3, timed, ExpContext, Table};
use geobase::ginger::GingerConfig;
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::Heterogeneity;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let algo = Algorithm::pagerank();
    let mut t = Table::new(
        "Fig 3 — Ginger transfer time normalized to RLCut (PR)",
        &["Graph", "Low", "Medium", "High"],
    );
    for ds in Dataset::ALL {
        let geo = ctx.build_geo(ds);
        let profile = algo.profile(&geo);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let mut cells = vec![ds.notation().to_string()];
        for level in Heterogeneity::ALL {
            let env = level.ec2_environment();
            let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
            let (ginger, ginger_overhead) = timed(|| {
                geobase::ginger(
                    &geo,
                    &env,
                    GingerConfig::new(theta, ctx.seed),
                    profile.clone(),
                    10.0,
                )
            });
            let config = RlCutConfig::new(budget)
                .with_seed(ctx.seed)
                .with_threads(ctx.threads)
                .with_t_opt(crate::default_t_opt(ginger_overhead));
            let ours = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
            let ratio = ginger.objective(&env).transfer_time
                / ours.final_objective(&env).transfer_time.max(1e-12);
            cells.push(f3(ratio));
        }
        t.row(cells);
    }
    t.print();
    println!("Paper reference: Fig 3 — Ginger's normalized time grows with heterogeneity");
    println!("and graph size (worse relative to RLCut when the network is more skewed).");
}
