//! Exp#4 (Fig 13/14): sensitivity to the required optimization overhead
//! T_opt — 1x/10x/20x/50x of Ginger's overhead (TW-analog, PR) — plus the
//! per-iteration sampling-rate detail.

use crate::{f3, timed, ExpContext, Table};
use geobase::ginger::GingerConfig;
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;
use rlcut::RlCutConfig;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let geo = ctx.build_geo(Dataset::Twitter);
    let algo = Algorithm::pagerank();
    let profile = algo.profile(&geo);
    let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
    let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);

    let (_, ginger_overhead) = timed(|| {
        geobase::ginger(&geo, &env, GingerConfig::new(theta, ctx.seed), profile.clone(), 10.0)
    });
    // The sweep's 1x point is Ginger's *raw* overhead — deliberately tight
    // so the 10x/20x/50x points have headroom to buy more agents (the
    // paper's Fig 13 regime, where even 50x Ginger is far below a
    // full-sampling training run).
    let base = ginger_overhead.max(std::time::Duration::from_millis(50));

    let mut t = Table::new(
        &format!(
            "Fig 13 — T_opt sensitivity (TW-analog, PR); 1x = Ginger's overhead = {:.3}s",
            base.as_secs_f64()
        ),
        &["T_opt", "Overhead (s)", "Transfer time", "Norm. to 1x", "Cost / budget"],
    );
    let mut detail: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let mut base_time = None;
    for mult in [1u32, 10, 20, 50] {
        let config = RlCutConfig::new(budget)
            .with_seed(ctx.seed)
            .with_threads(ctx.threads)
            .with_t_opt(base * mult);
        let result = rlcut::partition(&geo, &env, profile.clone(), 10.0, &config);
        let obj = result.final_objective(&env);
        let reference = *base_time.get_or_insert(obj.transfer_time);
        t.row(vec![
            format!("{mult}x"),
            f3(result.total_duration.as_secs_f64()),
            f3(obj.transfer_time),
            f3(obj.transfer_time / reference.max(1e-12)),
            f3(obj.total_cost() / budget),
        ]);
        detail.push((format!("{mult}x"), result.sampling_history()));
    }
    t.print();

    let mut t14 = Table::new(
        "Fig 14 — sampling rate per training iteration (a) and overhead/SR proportion (b)",
        &["T_opt", "Iter", "Sampling rate", "Step time (s)", "time/SR"],
    );
    for (label, history) in &detail {
        for (i, &(sr, secs)) in history.iter().enumerate() {
            t14.row(vec![label.clone(), i.to_string(), f3(sr), f3(secs), f3(secs / sr.max(1e-9))]);
        }
    }
    t14.print();
    println!("Paper reference: Fig 13 — transfer time improves by up to 26/32/43% at");
    println!("10x/20x/50x T_opt. Fig 14 — sampling rates are higher for larger T_opt and");
    println!("rise over iterations; the overhead/SR proportion shrinks near convergence.");
}
