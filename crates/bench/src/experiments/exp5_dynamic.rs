//! Exp#5 (Fig 15): adaptivity on dynamic graphs — RLCut vs Spinner while
//! 1-30% of held-out edges arrive in a fixed time window.
//!
//! All three systems consume the *same* [`GraphDelta`] per update ratio:
//! Spinner re-propagates the delta's touched neighborhoods
//! (`adapt_delta`), Leopard streams the net-inserted edges
//! (`apply_delta`), and RLCut resumes its carried placement state
//! incrementally (`on_window_delta`) — no system rebuilds per-window
//! state from the full snapshot.
//!
//! The paper's 60-second window matches 40M-vertex graphs on a 48-core
//! testbed; at reproduction scale we pick the window as the median of
//! Spinner's adaptation overheads so the *crossover* (Spinner under the
//! window at low update rates, over it at high rates, Fig 15b) lands
//! inside the plotted range, exactly as in the paper.

use crate::{f3, timed, ExpContext, Table};
use geobase::spinner::{Spinner, SpinnerConfig};
use geoengine::Algorithm;
use geograph::dynamic::{EdgeEvent, EventKind};
use geograph::generators::preferential::preferential_attachment_edges;
use geograph::locality::{assign_locations, LocalityConfig};
use geograph::{Dataset, GeoGraph, GraphBuilder, GraphDelta, VertexId};
use geosim::regions::ec2_eight_regions;
use rlcut::{AdaptiveRlCut, RlCutConfig};

struct Workload {
    initial: GeoGraph,
    grown: GeoGraph,
    /// The window's net edge changes over `initial` — the single source of
    /// truth every system adapts from.
    delta: GraphDelta,
}

/// Builds the LJ-scale dynamic workload for one insert ratio.
fn workload(ctx: &ExpContext, ratio: f64) -> Workload {
    let n = Dataset::LiveJournal.scaled_vertices(ctx.scale);
    let epv = (Dataset::LiveJournal.paper_edges() as f64
        / Dataset::LiveJournal.paper_vertices() as f64)
        .round() as usize;
    let edges = preferential_attachment_edges(n, epv, ctx.seed);
    let split = (edges.len() as f64 * 0.7) as usize;
    let inserted = ((edges.len() - split) as f64 * ratio) as usize;

    let mut b = GraphBuilder::new(n).with_edge_capacity(split);
    b.add_edges(edges[..split].iter().copied());
    let initial_graph = b.build();
    let events: Vec<EdgeEvent> = edges[split..split + inserted]
        .iter()
        .map(|&(src, dst)| EdgeEvent { src, dst, timestamp_ms: 0, kind: EventKind::Insert })
        .collect();
    let delta = GraphDelta::from_events(&initial_graph, &events);
    let grown_graph = initial_graph.apply_delta(&delta);

    let cfg = LocalityConfig::paper_default(ctx.seed);
    let locations = assign_locations(&grown_graph, &cfg);
    let sizes: Vec<u64> =
        (0..n as VertexId).map(|v| 65536 + 256 * grown_graph.out_degree(v) as u64).collect();
    Workload {
        initial: GeoGraph::new(initial_graph, locations.clone(), sizes.clone(), cfg.num_dcs),
        grown: GeoGraph::new(grown_graph, locations, sizes, cfg.num_dcs),
        delta,
    }
}

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let algo = Algorithm::pagerank();
    let ratios = [0.01, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

    // Pass 1: Spinner and Leopard, measuring adaptation overheads. All
    // partitioners feed the same hybrid-cut execution engine (the paper
    // integrates everything into PowerLyra): Spinner's labels become the
    // master locations.
    struct BaselineRun {
        time: f64,
        overhead: f64,
        /// Leopard (extension baseline, §II-B [26]): streaming vertex-cut,
        /// fed the same delta through its streaming path.
        leopard_time: f64,
    }
    let mut baseline_runs = Vec::new();
    for &ratio in &ratios {
        let w = workload(ctx, ratio);
        let mut spinner = Spinner::partition(&w.initial, SpinnerConfig::default());
        let ((), overhead) = timed(|| spinner.adapt_delta(&w.grown, &w.delta));
        let profile = algo.profile(&w.grown);
        let theta = geograph::degree::suggest_theta(&w.grown.graph, 0.05);
        let plan = geopart::HybridState::from_masters(
            &w.grown,
            &env,
            spinner.assignment().to_vec(),
            theta,
            profile.clone(),
            10.0,
        );
        let mut leopard = geobase::Leopard::new(
            w.initial.num_vertices(),
            &w.initial.locations,
            w.initial.num_dcs,
            geobase::leopard::LeopardConfig::default(),
        );
        for (u, v) in w.initial.graph.edges() {
            leopard.place_edge(u, v, |id| w.initial.locations[id as usize]);
        }
        leopard.apply_delta(&w.delta, |id| w.grown.locations[id as usize]);
        let leopard_state = leopard.state(&w.grown, &env, profile, 10.0);
        baseline_runs.push(BaselineRun {
            time: plan.objective(&env).transfer_time,
            overhead: overhead.as_secs_f64(),
            leopard_time: leopard_state.objective(&env).transfer_time,
        });
    }
    let mut overheads: Vec<f64> = baseline_runs.iter().map(|r| r.overhead).collect();
    overheads.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let window_secs = overheads[overheads.len() / 2].max(0.05);

    // Pass 2: RLCut with T_opt = the window, resuming the carried state
    // through the same delta instead of rebuilding.
    let mut t = Table::new(
        &format!(
            "Fig 15 — dynamic graphs (LJ-analog, PR); window T_opt = {window_secs:.3}s; \
             times normalized to Spinner @ 1%"
        ),
        &[
            "Inserted edges",
            "Spinner time",
            "Leopard time",
            "RLCut time",
            "Spinner overhead (s)",
            "RLCut overhead (s)",
            "RLCut prep (s)",
            "Delta work items",
            "Spinner in window?",
            "RLCut in window?",
        ],
    );
    let norm = baseline_runs[0].time.max(1e-12);
    for (i, &ratio) in ratios.iter().enumerate() {
        let w = workload(ctx, ratio);
        let config = RlCutConfig::new(f64::INFINITY).with_seed(ctx.seed).with_threads(ctx.threads);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let window = std::time::Duration::from_secs_f64(window_secs);
        let p_init = algo.profile(&w.initial);
        adaptive.on_window(&w.initial, &env, p_init, 10.0, window).expect("initial window");
        let p_full = algo.profile(&w.grown);
        let report = adaptive
            .on_window_delta(&w.grown, &env, &w.delta, p_full, 10.0, window)
            .expect("delta window");
        let stats = report.delta_stats.expect("the delta window must take the incremental path");
        // Incremental ≡ rebuild gate: the carried state must match a
        // from-scratch rebuild over the grown snapshot bit-for-bit.
        let validated = adaptive
            .validate_carried(&w.grown, &env)
            .expect("carried state must match a from-scratch rebuild");
        assert!(validated, "a state must be carried after the delta window");

        let s = &baseline_runs[i];
        // Allow one step of schedule overshoot when checking the window.
        let tolerance = 1.25;
        t.row(vec![
            format!("{:.0}%", ratio * 100.0),
            f3(s.time / norm),
            f3(s.leopard_time / norm),
            f3(report.transfer_time / norm),
            f3(s.overhead),
            f3(report.overhead.as_secs_f64()),
            f3(report.delta_apply.as_secs_f64()),
            stats.work_items().to_string(),
            if s.overhead <= window_secs * tolerance { "yes" } else { "NO" }.to_string(),
            if report.overhead.as_secs_f64() <= window_secs * tolerance { "yes" } else { "NO" }
                .to_string(),
        ]);
    }
    t.print();
    println!("Paper reference: Fig 15 — RLCut reduces transfer time by 43-60% vs Spinner");
    println!("and stays stable as more edges arrive; Spinner degrades with update rate and");
    println!("violates the window at high rates while wasting time at low rates.");
    println!("Reproduction note: every system consumed the same GraphDelta; RLCut's state");
    println!("prep is incremental (work ∝ delta, see the work-items column) and verified");
    println!("bit-for-bit against a from-scratch rebuild each window.");
}
