//! Fig 2: WAN usage and replication factor of vertex-cut (balanced p-way,
//! PowerGraph) vs hybrid-cut (PowerLyra) on the five graphs with PageRank.

use crate::{f3, ExpContext, Table};
use geoengine::Algorithm;
use geograph::Dataset;
use geosim::regions::ec2_eight_regions;

pub fn run(ctx: &ExpContext) {
    let env = ec2_eight_regions();
    let algo = Algorithm::pagerank();
    let mut t = Table::new(
        "Fig 2 — normalized WAN usage and replication factor λ (PR, 8 DCs)",
        &["Graph", "WAN vertex-cut", "WAN hybrid-cut", "WAN reduction", "λ vertex", "λ hybrid"],
    );
    for ds in Dataset::ALL {
        let geo = ctx.build_geo(ds);
        let profile = algo.profile(&geo);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let vertex = geobase::randpg(&geo, &env, profile.clone(), 10.0, ctx.seed);
        let hybrid = geobase::hashpl(&geo, &env, theta, profile, 10.0, ctx.seed);
        let wan_v = vertex.core().wan_bytes_per_iteration();
        let wan_h = hybrid.core().wan_bytes_per_iteration();
        t.row(vec![
            ds.notation().to_string(),
            "1.00".to_string(),
            f3(wan_h / wan_v),
            format!("{:.0}%", (1.0 - wan_h / wan_v) * 100.0),
            f3(vertex.replication_factor()),
            f3(hybrid.core().replication_factor()),
        ]);
    }
    t.print();
    println!("Paper reference: Fig 2 — hybrid-cut reduces WAN usage by up to 87% and");
    println!("achieves much lower replication factors than balanced p-way vertex-cut.");
}
