//! Geo-location assignment: mapping vertices to home data centers.
//!
//! The paper's graphs come with natural geo-distribution (Twitter user
//! locations clustered into eight DCs, Fig 1); the key empirical facts are
//! (a) the regional population is *skewed* and (b) edges show *homophily*
//! (users follow nearby users more) yet **most edges still cross DCs** —
//! the paper measures >75 % inter-DC edges. This module reproduces that.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::{DcId, VertexId, MAX_DCS};

/// Configuration for geo-location assignment.
#[derive(Clone, Debug)]
pub struct LocalityConfig {
    /// Number of data centers (≤ [`MAX_DCS`]).
    pub num_dcs: usize,
    /// Relative population of each region. Empty = uniform.
    pub region_weights: Vec<f64>,
    /// Probability that a vertex is re-homed to the region of one of its
    /// neighbors (one smoothing pass). 0 = independent placement,
    /// 1 = strong clustering. The paper's Twitter measurement corresponds to
    /// mild homophily (inter-DC edge share stays above 70 %).
    pub homophily: f64,
    pub seed: u64,
}

impl LocalityConfig {
    /// Default 8-DC setup matching the paper's Twitter study: skewed
    /// populations (USA/Europe/Asia heavy) and mild homophily.
    pub fn paper_default(seed: u64) -> Self {
        LocalityConfig {
            num_dcs: 8,
            // South America, USA West, USA East, Africa, Oceania,
            // North America (other), Asia, Europe — loosely matching the
            // population shares visible in the paper's Fig 1 row sums.
            region_weights: vec![0.06, 0.13, 0.20, 0.04, 0.05, 0.10, 0.18, 0.24],
            homophily: 0.25,
            seed,
        }
    }

    /// Uniform placement over `num_dcs` regions, no homophily.
    pub fn uniform(num_dcs: usize, seed: u64) -> Self {
        LocalityConfig { num_dcs, region_weights: Vec::new(), homophily: 0.0, seed }
    }
}

/// Assigns a home DC to every vertex.
pub fn assign_locations(graph: &Graph, config: &LocalityConfig) -> Vec<DcId> {
    assert!(config.num_dcs >= 1 && config.num_dcs <= MAX_DCS);
    assert!(
        config.region_weights.is_empty() || config.region_weights.len() == config.num_dcs,
        "region_weights must be empty or one per DC"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x6a09_e667_f3bc_c909);
    let cumulative = cumulative_weights(config);
    let n = graph.num_vertices();
    let mut locations: Vec<DcId> = (0..n).map(|_| sample_region(&cumulative, &mut rng)).collect();
    if config.homophily > 0.0 {
        // One smoothing pass: each vertex may adopt a random neighbor's
        // region. Processing against the pre-pass snapshot keeps the result
        // order-independent and deterministic.
        let snapshot = locations.clone();
        for v in 0..n as VertexId {
            if rng.gen::<f64>() >= config.homophily {
                continue;
            }
            let outs = graph.out_neighbors(v);
            let ins = graph.in_neighbors(v);
            let total = outs.len() + ins.len();
            if total == 0 {
                continue;
            }
            let pick = rng.gen_range(0..total);
            let neighbor = if pick < outs.len() { outs[pick] } else { ins[pick - outs.len()] };
            locations[v as usize] = snapshot[neighbor as usize];
        }
    }
    locations
}

/// The `num_dcs × num_dcs` matrix of edge counts between home DCs —
/// the quantity plotted in the paper's Fig 1. `matrix[s][d]` counts edges
/// whose source lives in DC `s` and destination in DC `d`.
pub fn inter_dc_edge_matrix(graph: &Graph, locations: &[DcId], num_dcs: usize) -> Vec<Vec<u64>> {
    let mut matrix = vec![vec![0u64; num_dcs]; num_dcs];
    for (u, v) in graph.edges() {
        matrix[locations[u as usize] as usize][locations[v as usize] as usize] += 1;
    }
    matrix
}

/// Fraction of edges whose endpoints live in different DCs.
pub fn inter_dc_edge_fraction(graph: &Graph, locations: &[DcId]) -> f64 {
    let m = graph.num_edges();
    if m == 0 {
        return 0.0;
    }
    let cross =
        graph.edges().filter(|&(u, v)| locations[u as usize] != locations[v as usize]).count();
    cross as f64 / m as f64
}

fn cumulative_weights(config: &LocalityConfig) -> Vec<f64> {
    let weights: Vec<f64> = if config.region_weights.is_empty() {
        vec![1.0; config.num_dcs]
    } else {
        config.region_weights.clone()
    };
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "region weights must be positive");
    let mut acc = 0.0;
    weights
        .iter()
        .map(|w| {
            acc += w / total;
            acc
        })
        .collect()
}

fn sample_region(cumulative: &[f64], rng: &mut SmallRng) -> DcId {
    let roll = rng.gen::<f64>();
    cumulative.iter().position(|&c| roll < c).unwrap_or(cumulative.len() - 1) as DcId
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, RmatConfig};

    fn test_graph() -> Graph {
        rmat(&RmatConfig::social(4096, 32_768), 77)
    }

    #[test]
    fn deterministic() {
        let g = test_graph();
        let cfg = LocalityConfig::paper_default(5);
        assert_eq!(assign_locations(&g, &cfg), assign_locations(&g, &cfg));
    }

    #[test]
    fn respects_dc_range() {
        let g = test_graph();
        let cfg = LocalityConfig::paper_default(5);
        let locs = assign_locations(&g, &cfg);
        assert!(locs.iter().all(|&d| (d as usize) < cfg.num_dcs));
        assert_eq!(locs.len(), g.num_vertices());
    }

    #[test]
    fn skewed_weights_produce_skewed_populations() {
        let g = test_graph();
        let cfg = LocalityConfig {
            num_dcs: 4,
            region_weights: vec![0.7, 0.1, 0.1, 0.1],
            homophily: 0.0,
            seed: 1,
        };
        let locs = assign_locations(&g, &cfg);
        let big = locs.iter().filter(|&&d| d == 0).count() as f64 / locs.len() as f64;
        assert!(big > 0.6, "expected ~0.7 share, got {big}");
    }

    #[test]
    fn paper_default_keeps_most_edges_inter_dc() {
        // The headline observation behind Fig 1: >75 % of edges cross DCs.
        let g = test_graph();
        let cfg = LocalityConfig::paper_default(9);
        let locs = assign_locations(&g, &cfg);
        let frac = inter_dc_edge_fraction(&g, &locs);
        assert!(frac > 0.7, "inter-DC fraction {frac}");
    }

    #[test]
    fn homophily_reduces_inter_dc_edges() {
        let g = test_graph();
        let mut low = LocalityConfig::paper_default(3);
        low.homophily = 0.0;
        let mut high = LocalityConfig::paper_default(3);
        high.homophily = 0.9;
        let f_low = inter_dc_edge_fraction(&g, &assign_locations(&g, &low));
        let f_high = inter_dc_edge_fraction(&g, &assign_locations(&g, &high));
        assert!(f_high < f_low, "homophily 0.9 gave {f_high}, 0.0 gave {f_low}");
    }

    #[test]
    fn edge_matrix_sums_to_edge_count() {
        let g = test_graph();
        let cfg = LocalityConfig::paper_default(2);
        let locs = assign_locations(&g, &cfg);
        let matrix = inter_dc_edge_matrix(&g, &locs, cfg.num_dcs);
        let total: u64 = matrix.iter().flatten().sum();
        assert_eq!(total, g.num_edges() as u64);
    }

    #[test]
    fn uniform_config() {
        let g = test_graph();
        let locs = assign_locations(&g, &LocalityConfig::uniform(5, 2));
        for dc in 0..5u8 {
            let share = locs.iter().filter(|&&d| d == dc).count() as f64 / locs.len() as f64;
            assert!((share - 0.2).abs() < 0.05, "dc {dc} share {share}");
        }
    }
}
