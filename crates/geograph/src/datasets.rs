//! Scaled analogs of the paper's evaluation datasets (Table II).
//!
//! The real datasets (LiveJournal, Orkut, uk-2005, it-2004, Twitter) total
//! several billion edges and cannot ship with the repository. Each preset
//! here records the paper's true vertex/edge counts and generates an R-MAT
//! analog with the **same edge density** (edges per vertex) and a skew
//! preset appropriate to the graph family (social vs web). Experiment
//! binaries take `--scale` so the analog can approach paper sizes when the
//! host allows.

use crate::csr::Graph;
use crate::generators::{rmat, rmat_streamed, RmatConfig};
use crate::stream::{BuildError, IngestPool, IngestReport};

/// Default edges-per-chunk for streamed dataset generation. 2^20 edges
/// keeps per-chunk RNG setup amortized while giving hundreds of chunks at
/// paper scale for the ingest pool to balance.
pub const DEFAULT_CHUNK_EDGES: usize = 1 << 20;

/// The five evaluation graphs of the paper (Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    LiveJournal,
    Orkut,
    Uk2005,
    It2004,
    Twitter,
}

impl Dataset {
    /// All datasets, in the paper's Table II order.
    pub const ALL: [Dataset; 5] =
        [Dataset::LiveJournal, Dataset::Orkut, Dataset::Uk2005, Dataset::It2004, Dataset::Twitter];

    /// The paper's two-letter notation.
    pub fn notation(self) -> &'static str {
        match self {
            Dataset::LiveJournal => "LJ",
            Dataset::Orkut => "OT",
            Dataset::Uk2005 => "UK",
            Dataset::It2004 => "IT",
            Dataset::Twitter => "TW",
        }
    }

    /// Vertex count of the real dataset (Table II).
    pub fn paper_vertices(self) -> u64 {
        match self {
            Dataset::LiveJournal => 4_847_571,
            Dataset::Orkut => 3_072_441,
            Dataset::Uk2005 => 39_454_746,
            Dataset::It2004 => 41_290_682,
            Dataset::Twitter => 41_652_230,
        }
    }

    /// Edge count of the real dataset (Table II).
    pub fn paper_edges(self) -> u64 {
        match self {
            Dataset::LiveJournal => 68_993_773,
            Dataset::Orkut => 117_185_083,
            Dataset::Uk2005 => 936_364_282,
            Dataset::It2004 => 1_150_725_436,
            Dataset::Twitter => 1_468_365_182,
        }
    }

    /// Whether the graph is a web crawl (heavier skew) or a social network.
    pub fn is_web_graph(self) -> bool {
        matches!(self, Dataset::Uk2005 | Dataset::It2004)
    }

    /// Vertex count of the analog at `scale` (fraction of the paper size),
    /// floored at 1 024 so tiny scales still exercise real structure.
    pub fn scaled_vertices(self, scale: f64) -> usize {
        ((self.paper_vertices() as f64 * scale) as usize).max(1024)
    }

    /// Edge count of the analog at `scale`, preserving the paper density.
    pub fn scaled_edges(self, scale: f64) -> usize {
        let density = self.paper_edges() as f64 / self.paper_vertices() as f64;
        (self.scaled_vertices(scale) as f64 * density) as usize
    }

    /// Generates the R-MAT analog at `scale` with a deterministic seed
    /// derived from the dataset identity and the caller's seed.
    pub fn generate(self, scale: f64, seed: u64) -> Graph {
        let n = self.scaled_vertices(scale);
        let m = self.scaled_edges(scale);
        let config =
            if self.is_web_graph() { RmatConfig::web(n, m) } else { RmatConfig::social(n, m) };
        rmat(&config, seed ^ (self as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// The R-MAT config and derived seed [`Dataset::generate`] would use at
    /// this scale — exposed so streaming callers build the same analog.
    pub fn rmat_setup(self, scale: f64, seed: u64) -> (RmatConfig, u64) {
        let n = self.scaled_vertices(scale);
        let m = self.scaled_edges(scale);
        let config =
            if self.is_web_graph() { RmatConfig::web(n, m) } else { RmatConfig::social(n, m) };
        (config, seed ^ (self as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Generates the analog through streaming two-pass ingest — no staged
    /// edge list, so peak build memory stays near the final CSR size even
    /// at `scale = 1.0` (LiveJournal: 4.8M vertices / ~69M edges).
    /// Deterministic for `(self, scale, seed)` at any `pool.threads()`;
    /// a distinct pinned stream from [`Dataset::generate`]'s.
    pub fn generate_streamed(
        self,
        scale: f64,
        seed: u64,
        pool: &dyn IngestPool,
    ) -> Result<(Graph, IngestReport), BuildError> {
        let (config, seed) = self.rmat_setup(scale, seed);
        rmat_streamed(&config, seed, DEFAULT_CHUNK_EDGES, pool)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_preserved_at_scale() {
        for ds in Dataset::ALL {
            let paper_density = ds.paper_edges() as f64 / ds.paper_vertices() as f64;
            let scaled_density = ds.scaled_edges(0.001) as f64 / ds.scaled_vertices(0.001) as f64;
            assert!(
                (paper_density - scaled_density).abs() / paper_density < 0.01,
                "{ds}: paper {paper_density:.2} scaled {scaled_density:.2}"
            );
        }
    }

    #[test]
    fn tiny_scale_floors_at_1024() {
        assert_eq!(Dataset::Orkut.scaled_vertices(1e-9), 1024);
    }

    #[test]
    fn generation_is_deterministic_and_distinct_per_dataset() {
        let lj = Dataset::LiveJournal.generate(0.0002, 1);
        let lj2 = Dataset::LiveJournal.generate(0.0002, 1);
        let ot = Dataset::Orkut.generate(0.0002, 1);
        assert_eq!(lj, lj2);
        assert_ne!(lj, ot);
    }

    #[test]
    fn streamed_generation_deterministic_across_threads() {
        use crate::stream::ScopedPool;
        let (a, _) = Dataset::LiveJournal.generate_streamed(0.0005, 1, &ScopedPool(1)).unwrap();
        let (b, rep) = Dataset::LiveJournal.generate_streamed(0.0005, 1, &ScopedPool(4)).unwrap();
        assert_eq!(a, b);
        assert!(rep.build_ratio() < 1.2, "ratio {}", rep.build_ratio());
        assert_eq!(a.num_vertices(), Dataset::LiveJournal.scaled_vertices(0.0005));
    }

    #[test]
    fn table_ii_ordering_by_size() {
        // The paper orders Table II by increasing edge count.
        let edges: Vec<u64> = Dataset::ALL.iter().map(|d| d.paper_edges()).collect();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        assert_eq!(edges, sorted);
    }

    #[test]
    fn web_graphs_skewier_than_social() {
        use crate::degree::DegreeStats;
        let social = Dataset::Orkut.generate(0.002, 3);
        let web = Dataset::Uk2005.generate(0.0002, 3);
        let ss = DegreeStats::compute(&social);
        let sw = DegreeStats::compute(&web);
        assert!(sw.top1pct_edge_share > ss.top1pct_edge_share);
    }
}
