//! Immutable compressed-sparse-row graph with both adjacency directions.

use crate::VertexId;

/// A directed graph in CSR form, storing both out-edges (`v -> ?`) and
/// in-edges (`? -> v`).
///
/// The hybrid-cut model (PowerLyra, adopted by RLCut §III-B) places each
/// edge according to the *in*-degree class of its destination, so in-edge
/// iteration must be as cheap as out-edge iteration; we pay the memory to
/// store both directions.
///
/// Construction is via [`Graph::from_edges`] or [`crate::GraphBuilder`];
/// once built the structure is immutable. Dynamic workloads rebuild
/// snapshots per time window (see [`crate::dynamic`]), matching the paper's
/// window-batched update model (§VI-A, Exp#5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph with `n` vertices from a list of directed edges.
    ///
    /// Edges referencing vertices `>= n` are rejected with a panic — this is
    /// a programming error, not a data error (callers validate input data in
    /// [`crate::io`]). Duplicate edges and self-loops are kept verbatim;
    /// use [`crate::GraphBuilder`] for cleaning.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        assert!(n < VertexId::MAX as usize, "vertex count exceeds VertexId range");
        let mut out_degree = vec![0usize; n];
        let mut in_degree = vec![0usize; n];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range for n={n}");
            out_degree[u as usize] += 1;
            in_degree[v as usize] += 1;
        }
        let out_offsets = prefix_sum(&out_degree);
        let in_offsets = prefix_sum(&in_degree);
        let mut out_targets = vec![0 as VertexId; edges.len()];
        let mut in_sources = vec![0 as VertexId; edges.len()];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(u, v) in edges {
            out_targets[out_cursor[u as usize]] = v;
            out_cursor[u as usize] += 1;
            in_sources[in_cursor[v as usize]] = u;
            in_cursor[v as usize] += 1;
        }
        // Sort each adjacency run so neighbor slices are deterministic and
        // binary-searchable regardless of input edge order.
        for v in 0..n {
            out_targets[out_offsets[v]..out_offsets[v + 1]].sort_unstable();
            in_sources[in_offsets[v]..in_offsets[v + 1]].sort_unstable();
        }
        Graph { n, out_offsets, out_targets, in_offsets, in_sources }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `v` (sorted).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.out_targets[self.out_offsets[v]..self.out_offsets[v + 1]]
    }

    /// In-neighbors of `v` (sorted). These are the sources of `v`'s
    /// in-edges — the edges hybrid-cut assigns by `v`'s degree class.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.in_sources[self.in_offsets[v]..self.in_offsets[v + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.out_offsets[v + 1] - self.out_offsets[v]
    }

    /// In-degree of `v`. Hybrid-cut classifies `v` as high-degree when this
    /// is at least the threshold θ (paper §III-B).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.in_offsets[v + 1] - self.in_offsets[v]
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.in_degree(v) + self.out_degree(v)
    }

    /// Iterates all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n as VertexId
    }

    /// Iterates all directed edges `(src, dst)` in source order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
                .iter()
                .map(move |&v| (u as VertexId, v))
        })
    }

    /// Offset of `v`'s first out-edge in the flat out-edge array. Together
    /// with [`Graph::out_neighbors`] this gives every out-edge `(v, k)` a
    /// stable flat index `out_edge_offset(v) + k` (matching the
    /// [`Graph::edges`] iteration order), which per-edge metadata such as
    /// [`crate::weights::EdgeWeights`] is keyed by.
    #[inline]
    pub fn out_edge_offset(&self, v: VertexId) -> usize {
        self.out_offsets[v as usize]
    }

    /// Offset of `v`'s first in-edge in the flat in-edge array. Together
    /// with [`Graph::in_neighbors`] this gives every in-edge `(v, k)` a
    /// stable flat index `in_edge_offset(v) + k`, which per-edge metadata
    /// (e.g. vertex-cut DC assignments) can be keyed by.
    #[inline]
    pub fn in_edge_offset(&self, v: VertexId) -> usize {
        self.in_offsets[v as usize]
    }

    /// True if the directed edge `(u, v)` exists (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph::from_edges(n, &[])
    }
}

fn prefix_sum(counts: &[usize]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in counts {
        acc += c;
        offsets.push(acc);
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn adjacency_both_directions() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[VertexId]);
        assert_eq!(g.out_neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g2 = Graph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn neighbor_slices_sorted_regardless_of_input_order() {
        let g = Graph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn has_edge() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn duplicate_edges_preserved() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 2)]);
    }
}
