//! Immutable compressed-sparse-row graph with both adjacency directions.

use crate::delta::GraphDelta;
use crate::offsets::{OffsetWidth, Offsets};
use crate::stream::BuildError;
use crate::VertexId;

/// A directed graph in CSR form, storing both out-edges (`v -> ?`) and
/// in-edges (`? -> v`).
///
/// The hybrid-cut model (PowerLyra, adopted by RLCut §III-B) places each
/// edge according to the *in*-degree class of its destination, so in-edge
/// iteration must be as cheap as out-edge iteration; we pay the memory to
/// store both directions.
///
/// Offset arrays are width-adaptive ([`Offsets`]): 4-byte entries whenever
/// the edge count fits `u32`, selected at build time. Equality is over
/// logical content, so graphs at different offset widths compare equal
/// when they hold the same adjacency.
///
/// Construction is via [`Graph::from_edges`] or [`crate::GraphBuilder`];
/// once built the structure is immutable. Dynamic workloads rebuild
/// snapshots per time window (see [`crate::dynamic`]), matching the paper's
/// window-batched update model (§VI-A, Exp#5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    out_offsets: Offsets,
    out_targets: Vec<VertexId>,
    in_offsets: Offsets,
    in_sources: Vec<VertexId>,
}

impl Graph {
    /// Builds a graph with `n` vertices from a list of directed edges.
    ///
    /// Edges referencing vertices `>= n` are rejected with a panic — this is
    /// a programming error, not a data error (callers validate input data in
    /// [`crate::io`]). Duplicate edges and self-loops are kept verbatim;
    /// use [`crate::GraphBuilder`] for cleaning.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        assert!(n < VertexId::MAX as usize, "vertex count exceeds VertexId range");
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range for n={n}");
        }
        Self::build_validated(n, edges).expect("offset accumulation overflowed usize")
    }

    /// Non-panicking [`Graph::from_edges`]: every range and overflow
    /// condition is a typed [`BuildError`]. At paper scale (>2^31 edges)
    /// these are data errors a caller must be able to handle, not
    /// programming errors.
    pub fn try_from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self, BuildError> {
        if n >= VertexId::MAX as usize {
            return Err(BuildError::TooManyVertices { n });
        }
        for &(u, v) in edges {
            if (u as usize) >= n || (v as usize) >= n {
                return Err(BuildError::EdgeOutOfRange { u, v, n });
            }
        }
        Self::build_validated(n, edges)
    }

    /// Count/scatter/sort over pre-validated edges; offset accumulation is
    /// the one remaining failure point (checked). The final offset arrays
    /// narrow to the width the edge count needs.
    fn build_validated(n: usize, edges: &[(VertexId, VertexId)]) -> Result<Self, BuildError> {
        let mut out_degree = vec![0usize; n];
        let mut in_degree = vec![0usize; n];
        for &(u, v) in edges {
            out_degree[u as usize] += 1;
            in_degree[v as usize] += 1;
        }
        let out_offsets = prefix_sum(&out_degree).ok_or(BuildError::OffsetOverflow)?;
        let in_offsets = prefix_sum(&in_degree).ok_or(BuildError::OffsetOverflow)?;
        let mut out_targets = vec![0 as VertexId; edges.len()];
        let mut in_sources = vec![0 as VertexId; edges.len()];
        let mut out_cursor = out_offsets.clone();
        let mut in_cursor = in_offsets.clone();
        for &(u, v) in edges {
            out_targets[out_cursor[u as usize]] = v;
            out_cursor[u as usize] += 1;
            in_sources[in_cursor[v as usize]] = u;
            in_cursor[v as usize] += 1;
        }
        // Sort each adjacency run so neighbor slices are deterministic and
        // binary-searchable regardless of input edge order.
        for v in 0..n {
            out_targets[out_offsets[v]..out_offsets[v + 1]].sort_unstable();
            in_sources[in_offsets[v]..in_offsets[v + 1]].sort_unstable();
        }
        Ok(Graph {
            n,
            out_offsets: Offsets::from_usize(out_offsets),
            out_targets,
            in_offsets: Offsets::from_usize(in_offsets),
            in_sources,
        })
    }

    /// Assembles a graph directly from CSR arrays. Used by the streaming
    /// ingest path ([`crate::stream`]), the compressed-adjacency decoder
    /// ([`crate::compress`]) and the wire decoder ([`crate::wire`]), which
    /// produce canonical (sorted-run) arrays without ever materializing an
    /// edge list.
    ///
    /// Invariants (checked in debug builds): offset arrays have `n + 1`
    /// monotone entries starting at 0 and ending at the flat length, both
    /// directions hold the same edge count, and every run is sorted.
    pub(crate) fn from_csr_parts(
        n: usize,
        out_offsets: Offsets,
        out_targets: Vec<VertexId>,
        in_offsets: Offsets,
        in_sources: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_offsets.get(0), 0);
        debug_assert_eq!(in_offsets.get(0), 0);
        debug_assert_eq!(out_offsets.get(n), out_targets.len());
        debug_assert_eq!(in_offsets.get(n), in_sources.len());
        debug_assert_eq!(out_targets.len(), in_sources.len());
        #[cfg(debug_assertions)]
        for v in 0..n {
            let (os, oe) = out_offsets.run(v);
            let (is, ie) = in_offsets.run(v);
            debug_assert!(os <= oe);
            debug_assert!(is <= ie);
            debug_assert!(out_targets[os..oe].is_sorted());
            debug_assert!(in_sources[is..ie].is_sorted());
        }
        Graph { n, out_offsets, out_targets, in_offsets, in_sources }
    }

    /// Heap bytes held by the CSR arrays (capacity, both directions).
    pub fn heap_bytes(&self) -> usize {
        self.out_offsets.heap_bytes()
            + self.in_offsets.heap_bytes()
            + (self.out_targets.capacity() + self.in_sources.capacity())
                * std::mem::size_of::<VertexId>()
    }

    /// Storage width of the offset arrays — [`OffsetWidth::U32`] whenever
    /// the edge count fits, which is every graph below 2^32 edges.
    #[inline]
    pub fn offset_width(&self) -> OffsetWidth {
        self.out_offsets.width()
    }

    /// Re-encodes the offset arrays at `width` (adjacency is unchanged and
    /// the result compares equal to `self`). Narrowing a graph whose edge
    /// count exceeds the target width fails with
    /// [`BuildError::OffsetOverflow`]. Mostly useful for pinning
    /// narrow ≡ wide equivalence in tests.
    pub fn with_offset_width(&self, width: OffsetWidth) -> Result<Graph, BuildError> {
        Ok(Graph {
            n: self.n,
            out_offsets: self.out_offsets.with_width(width)?,
            out_targets: self.out_targets.clone(),
            in_offsets: self.in_offsets.with_width(width)?,
            in_sources: self.in_sources.clone(),
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-neighbors of `v` (sorted).
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.out_offsets.run(v as usize);
        &self.out_targets[s..e]
    }

    /// In-neighbors of `v` (sorted). These are the sources of `v`'s
    /// in-edges — the edges hybrid-cut assigns by `v`'s degree class.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        let (s, e) = self.in_offsets.run(v as usize);
        &self.in_sources[s..e]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let (s, e) = self.out_offsets.run(v as usize);
        e - s
    }

    /// In-degree of `v`. Hybrid-cut classifies `v` as high-degree when this
    /// is at least the threshold θ (paper §III-B).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        let (s, e) = self.in_offsets.run(v as usize);
        e - s
    }

    /// Total degree (in + out) of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.in_degree(v) + self.out_degree(v)
    }

    /// Iterates all vertices `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.n as VertexId
    }

    /// Iterates all directed edges `(src, dst)` in source order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n).flat_map(move |u| {
            let (s, e) = self.out_offsets.run(u);
            self.out_targets[s..e].iter().map(move |&v| (u as VertexId, v))
        })
    }

    /// Offset of `v`'s first out-edge in the flat out-edge array. Together
    /// with [`Graph::out_neighbors`] this gives every out-edge `(v, k)` a
    /// stable flat index `out_edge_offset(v) + k` (matching the
    /// [`Graph::edges`] iteration order), which per-edge metadata such as
    /// [`crate::weights::EdgeWeights`] is keyed by.
    #[inline]
    pub fn out_edge_offset(&self, v: VertexId) -> usize {
        self.out_offsets.get(v as usize)
    }

    /// Offset of `v`'s first in-edge in the flat in-edge array. Together
    /// with [`Graph::in_neighbors`] this gives every in-edge `(v, k)` a
    /// stable flat index `in_edge_offset(v) + k`, which per-edge metadata
    /// (e.g. vertex-cut DC assignments) can be keyed by.
    #[inline]
    pub fn in_edge_offset(&self, v: VertexId) -> usize {
        self.in_offsets.get(v as usize)
    }

    /// True if the directed edge `(u, v)` exists (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph::from_edges(n, &[])
    }

    /// Builds the successor snapshot by overlaying a [`GraphDelta`] —
    /// adjacency runs of untouched vertices are bulk-copied from this
    /// graph, only touched vertices get a sorted three-way merge
    /// (old ∖ deleted ∪ inserted), so no edge list is re-sorted and no
    /// builder replay happens. The offset arrays are re-emitted with a
    /// running shift (O(n) scalar adds; the flat edge arrays, which
    /// dominate, are memcpy'd) at the width the successor's exact edge
    /// count needs — a snapshot chain stays narrow until it genuinely
    /// outgrows `u32`.
    ///
    /// `delta` must target this graph (`delta.old_num_vertices() == n`,
    /// checked) and honor the [`GraphDelta`] cleaning contract: deltas
    /// built by [`GraphDelta::from_events`] always do; hand-rolled deltas
    /// that insert existing edges or delete missing ones produce a
    /// corrupt snapshot (caught by `debug_assert` in debug builds).
    pub fn apply_delta(&self, delta: &GraphDelta) -> Graph {
        assert_eq!(
            delta.old_num_vertices(),
            self.n,
            "delta targets a graph with {} vertices, this graph has {}",
            delta.old_num_vertices(),
            self.n
        );
        let n = delta.new_num_vertices();
        // The cleaning contract makes the successor's edge count exact:
        // every inserted edge is new, every deleted edge exists.
        let new_m = self.num_edges() + delta.inserted().len() - delta.deleted().len();
        let width = OffsetWidth::for_len(new_m);
        // `inserted`/`deleted` are sorted by (src, dst) — ready for the
        // out-direction. The in-direction needs (dst, src) order.
        let (out_offsets, out_targets) = overlay_direction(
            n,
            width,
            &self.out_offsets,
            &self.out_targets,
            delta.inserted(),
            delta.deleted(),
        );
        let mut ins_by_dst: Vec<(VertexId, VertexId)> =
            delta.inserted().iter().map(|&(u, v)| (v, u)).collect();
        let mut del_by_dst: Vec<(VertexId, VertexId)> =
            delta.deleted().iter().map(|&(u, v)| (v, u)).collect();
        ins_by_dst.sort_unstable();
        del_by_dst.sort_unstable();
        let (in_offsets, in_sources) = overlay_direction(
            n,
            width,
            &self.in_offsets,
            &self.in_sources,
            &ins_by_dst,
            &del_by_dst,
        );
        Graph { n, out_offsets, out_targets, in_offsets, in_sources }
    }
}

/// Overlays one adjacency direction: `ins`/`del` are `(key, neighbor)`
/// pairs sorted by `(key, neighbor)`; untouched keys' runs are bulk-copied.
fn overlay_direction(
    new_n: usize,
    width: OffsetWidth,
    old_offsets: &Offsets,
    old_flat: &[VertexId],
    ins: &[(VertexId, VertexId)],
    del: &[(VertexId, VertexId)],
) -> (Offsets, Vec<VertexId>) {
    let old_n = old_offsets.len() - 1;
    let mut offsets = Offsets::with_capacity(width, new_n + 1);
    let mut flat: Vec<VertexId> = Vec::with_capacity(old_flat.len() + ins.len());
    offsets.push(0);
    let mut ins_i = 0usize;
    let mut del_i = 0usize;
    let mut done = 0usize;
    loop {
        let next_key = match (ins.get(ins_i), del.get(del_i)) {
            (Some(&(a, _)), Some(&(b, _))) => a.min(b) as usize,
            (Some(&(a, _)), None) => a as usize,
            (None, Some(&(b, _))) => b as usize,
            (None, None) => new_n,
        };
        if next_key > done {
            // Untouched old vertices: one memcpy of their runs.
            let hi = next_key.min(old_n);
            if hi > done {
                let lo_off = old_offsets.get(done);
                flat.extend_from_slice(&old_flat[lo_off..old_offsets.get(hi)]);
                // Wrapping: deletions earlier in the array make the shift
                // negative; the additions below re-wrap to the right value.
                let shift = offsets.get(done).wrapping_sub(lo_off);
                for v in done + 1..=hi {
                    offsets.push(old_offsets.get(v).wrapping_add(shift));
                }
            }
            // Untouched new vertices are isolated in this direction.
            for _ in hi.max(done)..next_key {
                offsets.push(offsets.last());
            }
            done = next_key;
        }
        if done >= new_n {
            break;
        }
        // Merge vertex `done`: old run minus deletions, union insertions.
        let v = done;
        let old_run: &[VertexId] = if v < old_n {
            let (s, e) = old_offsets.run(v);
            &old_flat[s..e]
        } else {
            &[]
        };
        let ins_start = ins_i;
        while ins_i < ins.len() && ins[ins_i].0 as usize == v {
            ins_i += 1;
        }
        let del_start = del_i;
        while del_i < del.len() && del[del_i].0 as usize == v {
            del_i += 1;
        }
        let ins_run = &ins[ins_start..ins_i];
        let del_run = &del[del_start..del_i];
        let mut oi = 0usize;
        let mut ii = 0usize;
        let mut di = 0usize;
        while oi < old_run.len() || ii < ins_run.len() {
            let old_next = old_run.get(oi).copied();
            let ins_next = ins_run.get(ii).map(|e| e.1);
            match (old_next, ins_next) {
                (Some(ov), iv) if iv.is_none_or(|iv| ov <= iv) => {
                    debug_assert!(ins_next != Some(ov), "delta inserts existing edge ({v}, {ov})");
                    oi += 1;
                    if di < del_run.len() && del_run[di].1 == ov {
                        di += 1; // deleted: skip
                    } else {
                        flat.push(ov);
                    }
                }
                (_, Some(iv)) => {
                    flat.push(iv);
                    ii += 1;
                }
                _ => unreachable!(),
            }
        }
        debug_assert_eq!(di, del_run.len(), "delta deletes edges missing from vertex {v}");
        offsets.push(flat.len());
        done += 1;
    }
    (offsets, flat)
}

fn prefix_sum(counts: &[usize]) -> Option<Vec<usize>> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &c in counts {
        acc = acc.checked_add(c)?;
        offsets.push(acc);
    }
    Some(offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn adjacency_both_directions() {
        let g = diamond();
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_neighbors(0), &[] as &[VertexId]);
        assert_eq!(g.out_neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g2 = Graph::from_edges(4, &edges);
        assert_eq!(g, g2);
    }

    #[test]
    fn neighbor_slices_sorted_regardless_of_input_order() {
        let g = Graph::from_edges(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
    }

    #[test]
    fn has_edge() {
        let g = diamond();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn duplicate_edges_preserved() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::from_edges(2, &[(0, 2)]);
    }

    #[test]
    fn try_from_edges_matches_panicking_path() {
        let edges = [(0, 1), (0, 2), (1, 3), (2, 3)];
        assert_eq!(Graph::try_from_edges(4, &edges).unwrap(), Graph::from_edges(4, &edges));
    }

    #[test]
    fn try_from_edges_typed_errors() {
        assert_eq!(
            Graph::try_from_edges(2, &[(0, 2)]),
            Err(BuildError::EdgeOutOfRange { u: 0, v: 2, n: 2 })
        );
        assert_eq!(
            Graph::try_from_edges(u32::MAX as usize, &[]),
            Err(BuildError::TooManyVertices { n: u32::MAX as usize })
        );
    }

    #[test]
    fn builds_narrow_by_default() {
        let g = diamond();
        assert_eq!(g.offset_width(), OffsetWidth::U32);
    }

    #[test]
    fn heap_bytes_counts_all_four_arrays() {
        let g = diamond();
        // 2 offset arrays of (4+1) narrow (u32) entries + 2 flat arrays of
        // 4 u32s, at least — capacity may exceed length.
        assert!(g.heap_bytes() >= 2 * 5 * 4 + 2 * 4 * 4);
        // Widening costs exactly 4 extra bytes per offset entry.
        let wide = g.with_offset_width(OffsetWidth::U64).unwrap();
        assert!(wide.heap_bytes() >= g.heap_bytes() + 2 * 5 * 4);
    }

    #[test]
    fn narrow_and_wide_graphs_compare_equal() {
        let g = diamond();
        let wide = g.with_offset_width(OffsetWidth::U64).unwrap();
        assert_eq!(wide.offset_width(), OffsetWidth::U64);
        assert_eq!(g, wide);
        // Same adjacency through the accessors, too.
        for v in g.vertices() {
            assert_eq!(g.out_neighbors(v), wide.out_neighbors(v));
            assert_eq!(g.in_neighbors(v), wide.in_neighbors(v));
        }
        // And the round-trip back down narrows losslessly.
        assert_eq!(wide.with_offset_width(OffsetWidth::U32).unwrap(), g);
    }

    mod overlay {
        use super::*;
        use crate::dynamic::{EdgeEvent, EventKind};
        use crate::GraphBuilder;

        fn ev(src: u32, dst: u32, kind: EventKind) -> EdgeEvent {
            EdgeEvent { src, dst, timestamp_ms: 0, kind }
        }

        fn clean(n: usize, edges: &[(VertexId, VertexId)]) -> Graph {
            let mut b = GraphBuilder::new(n);
            b.add_edges(edges.iter().copied());
            b.build()
        }

        #[test]
        fn overlay_matches_full_rebuild() {
            let g = clean(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
            let events = vec![
                ev(4, 0, EventKind::Insert),
                ev(0, 2, EventKind::Delete),
                ev(6, 3, EventKind::Insert), // grows to 7 vertices
                ev(1, 3, EventKind::Delete),
            ];
            let delta = GraphDelta::from_events(&g, &events);
            let overlaid = g.apply_delta(&delta);
            let rebuilt = clean(7, &[(0, 1), (2, 3), (3, 4), (4, 0), (6, 3)]);
            assert_eq!(overlaid, rebuilt);
        }

        #[test]
        fn overlay_from_wide_source_stays_correct() {
            // A wide-offset source graph overlays to the same successor as
            // its narrow twin (the successor re-narrows to its own width).
            let g = clean(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
            let wide = g.with_offset_width(OffsetWidth::U64).unwrap();
            let events = vec![ev(4, 0, EventKind::Insert), ev(0, 2, EventKind::Delete)];
            let delta = GraphDelta::from_events(&g, &events);
            let from_narrow = g.apply_delta(&delta);
            let from_wide = wide.apply_delta(&delta);
            assert_eq!(from_narrow, from_wide);
            assert_eq!(from_wide.offset_width(), OffsetWidth::U32);
        }

        #[test]
        fn empty_delta_is_identity() {
            let g = clean(4, &[(0, 1), (1, 2), (2, 3)]);
            let delta = GraphDelta::from_events(&g, &[]);
            assert_eq!(g.apply_delta(&delta), g);
        }

        #[test]
        fn overlay_only_grows_vertices() {
            let g = clean(2, &[(0, 1)]);
            let delta = GraphDelta::from_events(&g, &[ev(5, 5, EventKind::Insert)]);
            // The self-loop is dropped but vertex 5 still arrives, isolated.
            let next = g.apply_delta(&delta);
            assert_eq!(next.num_vertices(), 6);
            assert_eq!(next.num_edges(), 1);
            assert!(next.has_edge(0, 1));
        }

        #[test]
        fn deletions_shift_later_untouched_runs() {
            // Deleting early edges makes the bulk-copied tail runs land at
            // smaller offsets than in the source graph.
            let g = clean(6, &[(0, 1), (0, 2), (0, 3), (4, 5), (5, 4)]);
            let delta = GraphDelta::from_events(
                &g,
                &[ev(0, 1, EventKind::Delete), ev(0, 2, EventKind::Delete)],
            );
            let next = g.apply_delta(&delta);
            assert_eq!(next.out_neighbors(0), &[3]);
            assert_eq!(next.out_neighbors(4), &[5]);
            assert_eq!(next.in_neighbors(4), &[5]);
            assert_eq!(next.num_edges(), 3);
        }

        #[test]
        fn chained_overlays_match_replay() {
            // Three windows of random-ish mutations; each overlay must
            // equal the cleaned rebuild of the live edge set.
            let mut live: Vec<(VertexId, VertexId)> = vec![(0, 1), (1, 2), (2, 0)];
            let mut g = clean(3, &live);
            let windows: Vec<Vec<EdgeEvent>> = vec![
                vec![ev(2, 1, EventKind::Insert), ev(0, 1, EventKind::Delete)],
                vec![ev(3, 0, EventKind::Insert), ev(3, 2, EventKind::Insert)],
                vec![ev(3, 2, EventKind::Delete), ev(1, 0, EventKind::Insert)],
            ];
            for events in &windows {
                let delta = GraphDelta::from_events(&g, events);
                g = g.apply_delta(&delta);
                for e in events {
                    match e.kind {
                        EventKind::Insert => {
                            if !live.contains(&(e.src, e.dst)) {
                                live.push((e.src, e.dst));
                            }
                        }
                        EventKind::Delete => live.retain(|&x| x != (e.src, e.dst)),
                    }
                }
                assert_eq!(g, clean(g.num_vertices(), &live));
            }
        }
    }
}
