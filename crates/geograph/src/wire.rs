//! Stable wire encoding for graph types crossing a durability boundary.
//!
//! The WAL and snapshot machinery (`crates/durable`) persists
//! [`GraphDelta`]s and whole [`Graph`]s across process restarts, so their
//! byte layout must be explicit and version-stable rather than whatever
//! the in-memory structs happen to be. Everything here is little-endian
//! with `u64` length prefixes, decoded through a bounds-checked [`Reader`]
//! that returns typed [`WireError`]s — malformed input never panics and
//! never silently produces a half-valid value.
//!
//! ## What travels
//!
//! A [`GraphDelta`] is encoded as `(old_n, new_n, inserted, deleted)`
//! only: `touched` and the sparse degree changes are *derivations* of the
//! edge lists, so the decoder recomputes them through the same code path
//! [`GraphDelta::from_events`] uses. Derived state never travels, so a
//! decoded delta cannot disagree with itself.
//!
//! A [`Graph`] is encoded as `n` plus its sorted edge list — CSR
//! construction (`Graph::from_edges`) is canonical, so
//! `decode(encode(g)) == g` bit-for-bit (proven by
//! `csr::tests::edges_iterator_round_trips`).

use crate::csr::Graph;
use crate::delta::GraphDelta;
use crate::geo::GeoGraph;
use crate::{DcId, VertexId, MAX_DCS};

/// Why a wire blob failed to decode.
#[derive(Debug)]
pub enum WireError {
    /// The buffer ended before the declared payload did.
    Truncated,
    /// Decoding finished with unconsumed bytes (full-buffer decodes only).
    TrailingBytes,
    /// The bytes decoded but violate a structural invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire blob truncated"),
            WireError::TrailingBytes => write!(f, "wire blob has trailing bytes"),
            WireError::Malformed(what) => write!(f, "wire blob malformed: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// A `u64` length prefix sanity-checked against the bytes actually
    /// available (`width` = bytes per element), so a corrupted length
    /// cannot trigger a huge allocation before the read fails.
    pub fn len(&mut self, width: usize) -> Result<usize, WireError> {
        let n = self.u64()?;
        if (n as usize).checked_mul(width).is_none_or(|total| total > self.remaining()) {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    pub fn u32s(&mut self, n: usize) -> Result<Vec<u32>, WireError> {
        Ok(self
            .take(n * 4)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        Ok(self
            .take(n * 4)?
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn u64s(&mut self, n: usize) -> Result<Vec<u64>, WireError> {
        Ok(self
            .take(n * 8)?
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn f64s(&mut self, n: usize) -> Result<Vec<f64>, WireError> {
        Ok(self
            .take(n * 8)?
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    /// `(u32, u32)` pairs — edge lists.
    pub fn pairs(&mut self, n: usize) -> Result<Vec<(VertexId, VertexId)>, WireError> {
        Ok(self
            .take(n * 8)?
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..].try_into().unwrap()),
                )
            })
            .collect())
    }

    /// Requires every byte to have been consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(())
    }
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(VertexId, VertexId)]) {
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(u, v) in pairs {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// `true` when `edges` is strictly increasing by `(src, dst)` (sorted and
/// duplicate-free) with every endpoint below `n` and no self-loops.
fn edges_canonical(edges: &[(VertexId, VertexId)], n: usize) -> bool {
    edges.windows(2).all(|w| w[0] < w[1])
        && edges.iter().all(|&(u, v)| (u as usize) < n && (v as usize) < n && u != v)
}

/// Appends the wire form of `delta` to `out`.
pub fn encode_delta(delta: &GraphDelta, out: &mut Vec<u8>) {
    out.extend_from_slice(&(delta.old_num_vertices() as u64).to_le_bytes());
    out.extend_from_slice(&(delta.new_num_vertices() as u64).to_le_bytes());
    put_pairs(out, delta.inserted());
    put_pairs(out, delta.deleted());
}

/// Decodes one delta from `r`, validating the canonical-form invariants
/// `from_events` guarantees and re-deriving `touched` / degree changes.
pub fn decode_delta(r: &mut Reader<'_>) -> Result<GraphDelta, WireError> {
    let old_n = r.u64()? as usize;
    let new_n = r.u64()? as usize;
    if new_n < old_n || new_n >= u32::MAX as usize {
        return Err(WireError::Malformed("delta vertex counts"));
    }
    let n_ins = r.len(8)?;
    let inserted = r.pairs(n_ins)?;
    let n_del = r.len(8)?;
    let deleted = r.pairs(n_del)?;
    if !edges_canonical(&inserted, new_n) {
        return Err(WireError::Malformed("inserted edges not canonical"));
    }
    // Deleted edges exist in the base graph, so both endpoints predate it.
    if !edges_canonical(&deleted, old_n) {
        return Err(WireError::Malformed("deleted edges not canonical"));
    }
    // One net event per edge key: the lists must be disjoint.
    let mut i = 0;
    for &e in &deleted {
        while i < inserted.len() && inserted[i] < e {
            i += 1;
        }
        if i < inserted.len() && inserted[i] == e {
            return Err(WireError::Malformed("edge both inserted and deleted"));
        }
    }
    Ok(GraphDelta::from_net_edges(old_n, new_n, inserted, deleted))
}

/// `delta` as a standalone byte blob.
pub fn delta_to_bytes(delta: &GraphDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 8 * delta.num_edge_changes());
    encode_delta(delta, &mut out);
    out
}

/// Decodes a standalone delta blob, requiring full consumption.
pub fn delta_from_bytes(bytes: &[u8]) -> Result<GraphDelta, WireError> {
    let mut r = Reader::new(bytes);
    let d = decode_delta(&mut r)?;
    r.finish()?;
    Ok(d)
}

/// Appends the wire form of `graph` (vertex count + sorted edge list).
pub fn encode_graph(graph: &Graph, out: &mut Vec<u8>) {
    out.extend_from_slice(&(graph.num_vertices() as u64).to_le_bytes());
    out.extend_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    for (u, v) in graph.edges() {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes one graph from `r`. Validates endpoints before CSR
/// construction so corrupted ids surface as errors, not index panics.
pub fn decode_graph(r: &mut Reader<'_>) -> Result<Graph, WireError> {
    let n = r.u64()? as usize;
    if n >= u32::MAX as usize {
        return Err(WireError::Malformed("graph vertex count"));
    }
    let n_edges = r.len(8)?;
    let edges = r.pairs(n_edges)?;
    if edges.iter().any(|&(u, v)| (u as usize) >= n || (v as usize) >= n) {
        return Err(WireError::Malformed("edge endpoint out of range"));
    }
    Ok(Graph::from_edges(n, &edges))
}

/// Appends the wire form of `geo` (graph + locations + data sizes + DCs).
pub fn encode_geo(geo: &GeoGraph, out: &mut Vec<u8>) {
    encode_graph(&geo.graph, out);
    out.extend_from_slice(&(geo.num_dcs as u32).to_le_bytes());
    out.extend_from_slice(&geo.locations);
    for &s in &geo.data_sizes {
        out.extend_from_slice(&s.to_le_bytes());
    }
}

/// Decodes one geo-graph from `r`, validating shapes and DC bounds.
pub fn decode_geo(r: &mut Reader<'_>) -> Result<GeoGraph, WireError> {
    let graph = decode_graph(r)?;
    let n = graph.num_vertices();
    let num_dcs = r.u32()? as usize;
    if num_dcs == 0 || num_dcs > MAX_DCS {
        return Err(WireError::Malformed("DC count out of range"));
    }
    let locations: Vec<DcId> = r.take(n)?.to_vec();
    if locations.iter().any(|&d| (d as usize) >= num_dcs) {
        return Err(WireError::Malformed("vertex location out of range"));
    }
    let data_sizes = r.u64s(n)?;
    Ok(GeoGraph { graph, locations, data_sizes, num_dcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{EdgeEvent, EventKind};
    use crate::{GraphBuilder, LocalityConfig};

    fn base() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        b.build()
    }

    fn ev(src: u32, dst: u32, ts: u64, kind: EventKind) -> EdgeEvent {
        EdgeEvent { src, dst, timestamp_ms: ts, kind }
    }

    #[test]
    fn delta_round_trips() {
        let g = base();
        let events = vec![
            ev(0, 3, 0, EventKind::Insert),
            ev(1, 2, 1, EventKind::Delete),
            ev(8, 0, 2, EventKind::Insert),
            ev(4, 5, 3, EventKind::Delete),
            ev(4, 5, 4, EventKind::Insert), // nets out
        ];
        let d = GraphDelta::from_events(&g, &events);
        let restored = delta_from_bytes(&delta_to_bytes(&d)).unwrap();
        assert_eq!(d, restored);
    }

    #[test]
    fn empty_delta_round_trips() {
        let d = GraphDelta::from_events(&base(), &[]);
        assert!(d.is_empty());
        assert_eq!(delta_from_bytes(&delta_to_bytes(&d)).unwrap(), d);
    }

    #[test]
    fn graph_round_trips() {
        let g = base();
        let mut out = Vec::new();
        encode_graph(&g, &mut out);
        let mut r = Reader::new(&out);
        let restored = decode_graph(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(g, restored);
    }

    #[test]
    fn geo_round_trips() {
        let geo = GeoGraph::from_graph(base(), &LocalityConfig::uniform(4, 7));
        let mut out = Vec::new();
        encode_geo(&geo, &mut out);
        let mut r = Reader::new(&out);
        let restored = decode_geo(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(geo.graph, restored.graph);
        assert_eq!(geo.locations, restored.locations);
        assert_eq!(geo.data_sizes, restored.data_sizes);
        assert_eq!(geo.num_dcs, restored.num_dcs);
    }

    #[test]
    fn truncation_never_panics() {
        let g = base();
        let d = GraphDelta::from_events(&g, &[ev(0, 3, 0, EventKind::Insert)]);
        let bytes = delta_to_bytes(&d);
        for len in 0..bytes.len() {
            assert!(delta_from_bytes(&bytes[..len]).is_err(), "len {len} decoded");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let d = GraphDelta::from_events(&base(), &[]);
        let mut bytes = delta_to_bytes(&d);
        bytes.push(0);
        assert!(matches!(delta_from_bytes(&bytes), Err(WireError::TrailingBytes)));
    }

    #[test]
    fn malformed_deltas_rejected() {
        // Unsorted inserted list.
        let mut out = Vec::new();
        out.extend_from_slice(&4u64.to_le_bytes());
        out.extend_from_slice(&4u64.to_le_bytes());
        put_pairs(&mut out, &[(2, 3), (0, 1)]);
        put_pairs(&mut out, &[]);
        assert!(matches!(delta_from_bytes(&out), Err(WireError::Malformed(_))));

        // Shrinking vertex count.
        let mut out = Vec::new();
        out.extend_from_slice(&4u64.to_le_bytes());
        out.extend_from_slice(&2u64.to_le_bytes());
        put_pairs(&mut out, &[]);
        put_pairs(&mut out, &[]);
        assert!(matches!(delta_from_bytes(&out), Err(WireError::Malformed(_))));

        // Same edge inserted and deleted.
        let mut out = Vec::new();
        out.extend_from_slice(&4u64.to_le_bytes());
        out.extend_from_slice(&4u64.to_le_bytes());
        put_pairs(&mut out, &[(0, 1)]);
        put_pairs(&mut out, &[(0, 1)]);
        assert!(matches!(delta_from_bytes(&out), Err(WireError::Malformed(_))));
    }

    #[test]
    fn corrupt_length_prefix_is_truncation_not_alloc() {
        let d = GraphDelta::from_events(&base(), &[ev(0, 3, 0, EventKind::Insert)]);
        let mut bytes = delta_to_bytes(&d);
        // Blow up the inserted-list length prefix to a huge value.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(delta_from_bytes(&bytes), Err(WireError::Truncated)));
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// A random base graph plus a random raw event stream against it.
        /// Vertex ids run past the base count so streams exercise growth;
        /// kind 0 = insert, 1 = delete (of possibly-absent edges — the
        /// cleaner drops those, which is part of what's under test).
        fn build(n: usize, edges: &[(u32, u32)], raw: &[(u32, u32, u8)]) -> GraphDelta {
            let mut b = GraphBuilder::new(n);
            b.add_edges(edges.iter().map(|&(u, v)| (u % n as u32, v % n as u32)));
            let g = b.build();
            let events: Vec<EdgeEvent> = raw
                .iter()
                .enumerate()
                .map(|(t, &(src, dst, k))| EdgeEvent {
                    src,
                    dst,
                    timestamp_ms: t as u64,
                    kind: if k == 0 { EventKind::Insert } else { EventKind::Delete },
                })
                .collect();
            GraphDelta::from_events(&g, &events)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// encode → decode ≡ identity for the net-effect cleaned form
            /// of arbitrary insert/delete streams, including streams that
            /// net out to the empty delta.
            #[test]
            fn delta_wire_round_trip(
                n in 2usize..40,
                edges in vec((0u32..64, 0u32..64), 0..80),
                raw in vec((0u32..56, 0u32..56, 0u8..2), 0..120),
            ) {
                let d = build(n, &edges, &raw);
                let restored = delta_from_bytes(&delta_to_bytes(&d)).unwrap();
                prop_assert_eq!(&d, &restored);
                // Encoding the decoded delta is byte-identical too: the
                // derived fields (touched, degree changes) never travel,
                // so one round trip is a fixed point.
                prop_assert_eq!(delta_to_bytes(&d), delta_to_bytes(&restored));
            }

            /// Every truncation of a random delta's encoding errors
            /// instead of decoding or panicking.
            #[test]
            fn delta_wire_truncations_all_error(
                n in 2usize..24,
                edges in vec((0u32..32, 0u32..32), 0..30),
                raw in vec((0u32..28, 0u32..28, 0u8..2), 1..40),
            ) {
                let bytes = delta_to_bytes(&build(n, &edges, &raw));
                for len in 0..bytes.len() {
                    prop_assert!(delta_from_bytes(&bytes[..len]).is_err(), "len {} decoded", len);
                }
            }
        }

        #[test]
        fn empty_stream_is_the_empty_delta() {
            let d = build(4, &[(0, 1)], &[]);
            assert!(d.is_empty());
            assert_eq!(delta_from_bytes(&delta_to_bytes(&d)).unwrap(), d);
        }
    }
}
