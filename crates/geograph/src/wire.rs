//! Stable wire encoding for graph types crossing a durability boundary.
//!
//! The WAL and snapshot machinery (`crates/durable`) persists
//! [`GraphDelta`]s and whole [`Graph`]s across process restarts, so their
//! byte layout must be explicit and version-stable rather than whatever
//! the in-memory structs happen to be. Everything here is little-endian
//! with `u64` length prefixes, decoded through a bounds-checked [`Reader`]
//! that returns typed [`WireError`]s — malformed input never panics and
//! never silently produces a half-valid value.
//!
//! ## What travels
//!
//! A [`GraphDelta`] is encoded as `(old_n, new_n, inserted, deleted)`
//! only: `touched` and the sparse degree changes are *derivations* of the
//! edge lists, so the decoder recomputes them through the same code path
//! [`GraphDelta::from_events`] uses. Derived state never travels, so a
//! decoded delta cannot disagree with itself.
//!
//! A [`Graph`] travels in the **v2** layout: a magic tag, the vertex
//! count, one byte naming the offset width (4 or 8), the edge count, then
//! the out-direction CSR itself — offsets at the declared width followed
//! by the flat target array. That is roughly half the bytes of the v1
//! edge-list form (one `u32` per edge plus 4 B/vertex, vs one `(u32,u32)`
//! pair per edge), and the decoder rebuilds the in-direction by a
//! counting scatter in ascending source order, which lands every run
//! pre-sorted — canonical without a sort. The width byte makes index
//! width explicit *on the wire*: a blob whose declared width cannot hold
//! its edge count is a typed [`WireError::Malformed`] rejected before any
//! allocation, never a silent truncation.
//!
//! **Back-compat**: v1 blobs (vertex count + sorted edge list) still
//! decode — the v2 magic is ≥ 2^32 while every valid v1 blob leads with a
//! vertex count below `u32::MAX`, so the first `u64` disambiguates. A v1
//! blob decodes into the same narrow-offset graph its v2 re-encoding
//! would ([`crate::csr::Graph`] selects width at build time either way).

use crate::csr::Graph;
use crate::delta::GraphDelta;
use crate::geo::GeoGraph;
use crate::offsets::{OffsetWidth, Offsets};
use crate::{DcId, VertexId, MAX_DCS};

/// Leading `u64` of a v2 graph blob (`b"graph_v2"`, little-endian). Any
/// value below `u32::MAX` in that position is a v1 vertex count instead.
const GRAPH_MAGIC_V2: u64 = u64::from_le_bytes(*b"graph_v2");

/// Why a wire blob failed to decode.
#[derive(Debug)]
pub enum WireError {
    /// The buffer ended before the declared payload did.
    Truncated,
    /// Decoding finished with unconsumed bytes (full-buffer decodes only).
    TrailingBytes,
    /// The bytes decoded but violate a structural invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire blob truncated"),
            WireError::TrailingBytes => write!(f, "wire blob has trailing bytes"),
            WireError::Malformed(what) => write!(f, "wire blob malformed: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Bounds-checked little-endian reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if n > self.remaining() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// A `u64` length prefix sanity-checked against the bytes actually
    /// available (`width` = bytes per element), so a corrupted length
    /// cannot trigger a huge allocation before the read fails.
    pub fn len(&mut self, width: usize) -> Result<usize, WireError> {
        let n = self.u64()?;
        if (n as usize).checked_mul(width).is_none_or(|total| total > self.remaining()) {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    pub fn u32s(&mut self, n: usize) -> Result<Vec<u32>, WireError> {
        Ok(self
            .take(n * 4)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        Ok(self
            .take(n * 4)?
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn u64s(&mut self, n: usize) -> Result<Vec<u64>, WireError> {
        Ok(self
            .take(n * 8)?
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    pub fn f64s(&mut self, n: usize) -> Result<Vec<f64>, WireError> {
        Ok(self
            .take(n * 8)?
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    /// `(u32, u32)` pairs — edge lists.
    pub fn pairs(&mut self, n: usize) -> Result<Vec<(VertexId, VertexId)>, WireError> {
        Ok(self
            .take(n * 8)?
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes(c[..4].try_into().unwrap()),
                    u32::from_le_bytes(c[4..].try_into().unwrap()),
                )
            })
            .collect())
    }

    /// Requires every byte to have been consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes);
        }
        Ok(())
    }
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(VertexId, VertexId)]) {
    out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
    for &(u, v) in pairs {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// `true` when `edges` is strictly increasing by `(src, dst)` (sorted and
/// duplicate-free) with every endpoint below `n` and no self-loops.
fn edges_canonical(edges: &[(VertexId, VertexId)], n: usize) -> bool {
    edges.windows(2).all(|w| w[0] < w[1])
        && edges.iter().all(|&(u, v)| (u as usize) < n && (v as usize) < n && u != v)
}

/// Appends the wire form of `delta` to `out`.
pub fn encode_delta(delta: &GraphDelta, out: &mut Vec<u8>) {
    out.extend_from_slice(&(delta.old_num_vertices() as u64).to_le_bytes());
    out.extend_from_slice(&(delta.new_num_vertices() as u64).to_le_bytes());
    put_pairs(out, delta.inserted());
    put_pairs(out, delta.deleted());
}

/// Decodes one delta from `r`, validating the canonical-form invariants
/// `from_events` guarantees and re-deriving `touched` / degree changes.
pub fn decode_delta(r: &mut Reader<'_>) -> Result<GraphDelta, WireError> {
    let old_n = r.u64()? as usize;
    let new_n = r.u64()? as usize;
    if new_n < old_n || new_n >= u32::MAX as usize {
        return Err(WireError::Malformed("delta vertex counts"));
    }
    let n_ins = r.len(8)?;
    let inserted = r.pairs(n_ins)?;
    let n_del = r.len(8)?;
    let deleted = r.pairs(n_del)?;
    if !edges_canonical(&inserted, new_n) {
        return Err(WireError::Malformed("inserted edges not canonical"));
    }
    // Deleted edges exist in the base graph, so both endpoints predate it.
    if !edges_canonical(&deleted, old_n) {
        return Err(WireError::Malformed("deleted edges not canonical"));
    }
    // One net event per edge key: the lists must be disjoint.
    let mut i = 0;
    for &e in &deleted {
        while i < inserted.len() && inserted[i] < e {
            i += 1;
        }
        if i < inserted.len() && inserted[i] == e {
            return Err(WireError::Malformed("edge both inserted and deleted"));
        }
    }
    Ok(GraphDelta::from_net_edges(old_n, new_n, inserted, deleted))
}

/// `delta` as a standalone byte blob.
pub fn delta_to_bytes(delta: &GraphDelta) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + 8 * delta.num_edge_changes());
    encode_delta(delta, &mut out);
    out
}

/// Decodes a standalone delta blob, requiring full consumption.
pub fn delta_from_bytes(bytes: &[u8]) -> Result<GraphDelta, WireError> {
    let mut r = Reader::new(bytes);
    let d = decode_delta(&mut r)?;
    r.finish()?;
    Ok(d)
}

/// Appends the v2 wire form of `graph`: magic, vertex count, offset-width
/// tag, edge count, out-offsets at that width, flat out-targets.
///
/// The encoded width is the *minimal* width for the edge count, not the
/// graph's in-memory width — encoding is a function of logical content,
/// so a graph and its force-widened twin produce byte-identical blobs.
pub fn encode_graph(graph: &Graph, out: &mut Vec<u8>) {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let width = OffsetWidth::for_len(m);
    out.extend_from_slice(&GRAPH_MAGIC_V2.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.push(width.tag());
    out.extend_from_slice(&(m as u64).to_le_bytes());
    match width {
        OffsetWidth::U32 => {
            for v in 0..n {
                out.extend_from_slice(&(graph.out_edge_offset(v as VertexId) as u32).to_le_bytes());
            }
            out.extend_from_slice(&(m as u32).to_le_bytes());
        }
        OffsetWidth::U64 => {
            for v in 0..n {
                out.extend_from_slice(&(graph.out_edge_offset(v as VertexId) as u64).to_le_bytes());
            }
            out.extend_from_slice(&(m as u64).to_le_bytes());
        }
    }
    for v in 0..n {
        for &t in graph.out_neighbors(v as VertexId) {
            out.extend_from_slice(&t.to_le_bytes());
        }
    }
}

/// Decodes one graph from `r`, accepting both layouts: the first `u64`
/// either carries the v2 magic or is a v1 vertex count. Every structural
/// invariant is validated before CSR assembly — corrupted ids, widths, or
/// lengths surface as typed errors, not index panics or giant allocations.
pub fn decode_graph(r: &mut Reader<'_>) -> Result<Graph, WireError> {
    let head = r.u64()?;
    if head == GRAPH_MAGIC_V2 {
        return decode_graph_v2(r);
    }
    // ---- v1: vertex count + sorted edge list. ----------------------------
    let n = head as usize;
    if n >= u32::MAX as usize {
        return Err(WireError::Malformed("graph vertex count"));
    }
    let n_edges = r.len(8)?;
    let edges = r.pairs(n_edges)?;
    if edges.iter().any(|&(u, v)| (u as usize) >= n || (v as usize) >= n) {
        return Err(WireError::Malformed("edge endpoint out of range"));
    }
    Ok(Graph::from_edges(n, &edges))
}

/// The v2 body (magic already consumed).
fn decode_graph_v2(r: &mut Reader<'_>) -> Result<Graph, WireError> {
    let n = r.u64()? as usize;
    if n >= u32::MAX as usize {
        return Err(WireError::Malformed("graph vertex count"));
    }
    let width =
        OffsetWidth::from_tag(r.u8()?).ok_or(WireError::Malformed("unknown offset width tag"))?;
    let m_u64 = r.u64()?;
    // The declared width must hold the declared edge count. Checked before
    // touching the offset bytes: a crafted narrow-width blob claiming 2^32
    // edges is a typed misfit, never a wrapped or truncated index.
    if !width.fits(m_u64 as usize) || m_u64 > u64::MAX >> 3 {
        return Err(WireError::Malformed("edge count exceeds stored offset width"));
    }
    let m = m_u64 as usize;
    // Reader::take bounds each batch read against the buffer before any
    // allocation, so corrupted n/m cannot trigger huge allocs.
    let out_offsets = match width {
        OffsetWidth::U32 => Offsets::U32(r.u32s(n + 1)?),
        OffsetWidth::U64 => Offsets::U64(r.u64s(n + 1)?),
    };
    if out_offsets.get(0) != 0 || out_offsets.last() != m {
        return Err(WireError::Malformed("offset array endpoints"));
    }
    if (0..n).any(|v| out_offsets.get(v) > out_offsets.get(v + 1)) {
        return Err(WireError::Malformed("offsets not monotone"));
    }
    let out_targets = r.u32s(m)?;
    if out_targets.iter().any(|&t| (t as usize) >= n) {
        return Err(WireError::Malformed("edge endpoint out of range"));
    }
    for v in 0..n {
        let (s, e) = out_offsets.run(v);
        if !out_targets[s..e].is_sorted() {
            return Err(WireError::Malformed("adjacency run not sorted"));
        }
    }
    // Canonical in-memory width regardless of how the blob was encoded.
    let out_offsets = match out_offsets.with_width(OffsetWidth::for_len(m)) {
        Ok(o) => o,
        Err(_) => return Err(WireError::Malformed("edge count exceeds stored offset width")),
    };
    let (in_offsets, in_sources) = rebuild_in_direction(n, &out_offsets, &out_targets);
    Ok(Graph::from_csr_parts(n, out_offsets, out_targets, in_offsets, in_sources))
}

/// Rebuilds the in-direction CSR from the out-direction by a counting
/// scatter. Sources are visited in ascending order, so every in-run lands
/// pre-sorted — the canonical layout, with no per-run sort. The degree
/// plane stays `u32` whenever the edge count fits (always, for any blob a
/// narrow-width encoder produced).
fn rebuild_in_direction(
    n: usize,
    out_offsets: &Offsets,
    out_targets: &[VertexId],
) -> (Offsets, Vec<VertexId>) {
    let m = out_targets.len();
    let mut in_sources = vec![0 as VertexId; m];
    if m <= u32::MAX as usize {
        let mut deg = vec![0u32; n];
        for &t in out_targets {
            deg[t as usize] += 1;
        }
        let mut offs: Vec<u32> = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offs.push(0);
        for &d in &deg {
            acc += d;
            offs.push(acc);
        }
        // Reuse the degree plane as scatter cursors.
        for d in deg.iter_mut() {
            *d = 0;
        }
        for u in 0..n {
            let (s, e) = out_offsets.run(u);
            for &t in &out_targets[s..e] {
                let ti = t as usize;
                in_sources[offs[ti] as usize + deg[ti] as usize] = u as VertexId;
                deg[ti] += 1;
            }
        }
        (Offsets::U32(offs), in_sources)
    } else {
        let mut deg = vec![0usize; n];
        for &t in out_targets {
            deg[t as usize] += 1;
        }
        let mut offs: Vec<usize> = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offs.push(0);
        for &d in &deg {
            acc += d;
            offs.push(acc);
        }
        for d in deg.iter_mut() {
            *d = 0;
        }
        for u in 0..n {
            let (s, e) = out_offsets.run(u);
            for &t in &out_targets[s..e] {
                let ti = t as usize;
                in_sources[offs[ti] + deg[ti]] = u as VertexId;
                deg[ti] += 1;
            }
        }
        (Offsets::from_usize(offs), in_sources)
    }
}

/// Appends the wire form of `geo` (graph + locations + data sizes + DCs).
pub fn encode_geo(geo: &GeoGraph, out: &mut Vec<u8>) {
    encode_graph(&geo.graph, out);
    out.extend_from_slice(&(geo.num_dcs as u32).to_le_bytes());
    out.extend_from_slice(&geo.locations);
    for &s in &geo.data_sizes {
        out.extend_from_slice(&s.to_le_bytes());
    }
}

/// Decodes one geo-graph from `r`, validating shapes and DC bounds.
pub fn decode_geo(r: &mut Reader<'_>) -> Result<GeoGraph, WireError> {
    let graph = decode_graph(r)?;
    let n = graph.num_vertices();
    let num_dcs = r.u32()? as usize;
    if num_dcs == 0 || num_dcs > MAX_DCS {
        return Err(WireError::Malformed("DC count out of range"));
    }
    let locations: Vec<DcId> = r.take(n)?.to_vec();
    if locations.iter().any(|&d| (d as usize) >= num_dcs) {
        return Err(WireError::Malformed("vertex location out of range"));
    }
    let data_sizes = r.u64s(n)?;
    Ok(GeoGraph { graph, locations, data_sizes, num_dcs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{EdgeEvent, EventKind};
    use crate::{GraphBuilder, LocalityConfig};

    fn base() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_edges([(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        b.build()
    }

    fn ev(src: u32, dst: u32, ts: u64, kind: EventKind) -> EdgeEvent {
        EdgeEvent { src, dst, timestamp_ms: ts, kind }
    }

    #[test]
    fn delta_round_trips() {
        let g = base();
        let events = vec![
            ev(0, 3, 0, EventKind::Insert),
            ev(1, 2, 1, EventKind::Delete),
            ev(8, 0, 2, EventKind::Insert),
            ev(4, 5, 3, EventKind::Delete),
            ev(4, 5, 4, EventKind::Insert), // nets out
        ];
        let d = GraphDelta::from_events(&g, &events);
        let restored = delta_from_bytes(&delta_to_bytes(&d)).unwrap();
        assert_eq!(d, restored);
    }

    #[test]
    fn empty_delta_round_trips() {
        let d = GraphDelta::from_events(&base(), &[]);
        assert!(d.is_empty());
        assert_eq!(delta_from_bytes(&delta_to_bytes(&d)).unwrap(), d);
    }

    #[test]
    fn graph_round_trips() {
        let g = base();
        let mut out = Vec::new();
        encode_graph(&g, &mut out);
        let mut r = Reader::new(&out);
        let restored = decode_graph(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(g, restored);
        assert_eq!(restored.offset_width(), OffsetWidth::U32);
    }

    #[test]
    fn graph_with_duplicates_and_isolated_tail_round_trips() {
        // Verbatim graphs carry duplicate edges (equal adjacent targets in
        // a run) and trailing isolated vertices — both must survive v2.
        let g = Graph::from_edges(6, &[(0, 1), (0, 1), (2, 2), (1, 0)]);
        let mut out = Vec::new();
        encode_graph(&g, &mut out);
        let mut r = Reader::new(&out);
        let restored = decode_graph(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(g, restored);
    }

    #[test]
    fn v2_blob_is_smaller_than_v1_edge_list() {
        // At paper densities (edges ≫ vertices) the CSR form stores one
        // u32 per edge instead of a pair: ~half the blob.
        let edges: Vec<(VertexId, VertexId)> =
            (0..20u32).flat_map(|u| (0..8u32).map(move |k| (u, (u + k + 1) % 20))).collect();
        let g = Graph::from_edges(20, &edges);
        let mut v2 = Vec::new();
        encode_graph(&g, &mut v2);
        // v1: n u64 + m u64 + m (u32,u32) pairs.
        let v1_len = 16 + 8 * g.num_edges();
        assert!(v2.len() < (v1_len * 3) / 4, "v2 {} vs v1 {}", v2.len(), v1_len);
    }

    #[test]
    fn encode_is_width_canonical() {
        // A force-widened graph encodes byte-identically to its narrow
        // twin: the wire width is a function of the edge count alone.
        let g = base();
        let wide = g.with_offset_width(crate::OffsetWidth::U64).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        encode_graph(&g, &mut a);
        encode_graph(&wide, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn v1_blob_decodes_into_narrow_graph() {
        // Hand-crafted v1 layout: n u64, edge count u64, (u,v) pairs —
        // what pre-v2 snapshots hold on disk.
        let g = base();
        let mut v1 = Vec::new();
        v1.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
        let edges: Vec<_> = g.edges().collect();
        put_pairs(&mut v1, &edges);
        let mut r = Reader::new(&v1);
        let restored = decode_graph(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(g, restored);
        assert_eq!(restored.offset_width(), OffsetWidth::U32);
    }

    fn v2_header(n: u64, width_tag: u8, m: u64) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&GRAPH_MAGIC_V2.to_le_bytes());
        out.extend_from_slice(&n.to_le_bytes());
        out.push(width_tag);
        out.extend_from_slice(&m.to_le_bytes());
        out
    }

    fn decode_full(bytes: &[u8]) -> Result<Graph, WireError> {
        let mut r = Reader::new(bytes);
        let g = decode_graph(&mut r)?;
        r.finish()?;
        Ok(g)
    }

    #[test]
    fn v2_width_misfit_is_typed_error_before_allocation() {
        // A narrow-width blob declaring 2^32 edges: the edge count cannot
        // be indexed at the stored width. Must fail typed, with no attempt
        // to read (or allocate) the offset array.
        let bytes = v2_header(4, 4, 1u64 << 32);
        assert!(matches!(
            decode_full(&bytes),
            Err(WireError::Malformed("edge count exceeds stored offset width"))
        ));
        // Same blob at width 8 fails as truncated instead (no payload),
        // proving the misfit check is about width, not length.
        let bytes = v2_header(4, 8, 1u64 << 32);
        assert!(matches!(decode_full(&bytes), Err(WireError::Truncated)));
    }

    #[test]
    fn v2_unknown_width_tag_rejected() {
        for tag in [0u8, 1, 2, 3, 5, 6, 7, 9, 255] {
            let mut bytes = v2_header(1, tag, 0);
            bytes.extend_from_slice(&0u32.to_le_bytes());
            bytes.extend_from_slice(&0u32.to_le_bytes());
            assert!(
                matches!(
                    decode_full(&bytes),
                    Err(WireError::Malformed("unknown offset width tag"))
                ),
                "tag {tag} accepted"
            );
        }
    }

    #[test]
    fn v2_structural_corruption_rejected() {
        // Offsets not starting at 0.
        let mut bytes = v2_header(1, 4, 1);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(decode_full(&bytes), Err(WireError::Malformed(_))));

        // Non-monotone offsets.
        let mut bytes = v2_header(2, 4, 2);
        for o in [0u32, 2, 2] {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        // offsets [0,2,2] are fine; craft [0,3,2]-style by rewriting.
        let base = 8 + 8 + 1 + 8;
        bytes[base..base + 4].copy_from_slice(&0u32.to_le_bytes());
        bytes[base + 4..base + 8].copy_from_slice(&3u32.to_le_bytes());
        bytes[base + 8..base + 12].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(decode_full(&bytes), Err(WireError::Malformed("offsets not monotone"))));

        // Target id out of range.
        let mut bytes = v2_header(2, 4, 1);
        for o in [0u32, 1, 1] {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        bytes.extend_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            decode_full(&bytes),
            Err(WireError::Malformed("edge endpoint out of range"))
        ));

        // Unsorted adjacency run.
        let mut bytes = v2_header(2, 4, 2);
        for o in [0u32, 2, 2] {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            decode_full(&bytes),
            Err(WireError::Malformed("adjacency run not sorted"))
        ));
    }

    #[test]
    fn v2_truncations_all_error() {
        let g = base();
        let mut bytes = Vec::new();
        encode_graph(&g, &mut bytes);
        for len in 0..bytes.len() {
            assert!(decode_full(&bytes[..len]).is_err(), "len {len} decoded");
        }
    }

    #[test]
    fn v2_corrupt_length_is_truncation_not_alloc() {
        // Blow the edge count up to the width guard's limit: the take()
        // bound fails before any allocation happens.
        let g = base();
        let mut bytes = Vec::new();
        encode_graph(&g, &mut bytes);
        let m_pos = 8 + 8 + 1;
        bytes[m_pos..m_pos + 8].copy_from_slice(&(u64::MAX >> 3).to_le_bytes());
        let mut r = Reader::new(&bytes);
        // Width is 4 in the encoded header, so the misfit check fires.
        assert!(matches!(
            decode_graph(&mut r),
            Err(WireError::Malformed("edge count exceeds stored offset width"))
        ));
    }

    #[test]
    fn geo_round_trips() {
        let geo = GeoGraph::from_graph(base(), &LocalityConfig::uniform(4, 7));
        let mut out = Vec::new();
        encode_geo(&geo, &mut out);
        let mut r = Reader::new(&out);
        let restored = decode_geo(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(geo.graph, restored.graph);
        assert_eq!(geo.locations, restored.locations);
        assert_eq!(geo.data_sizes, restored.data_sizes);
        assert_eq!(geo.num_dcs, restored.num_dcs);
    }

    #[test]
    fn truncation_never_panics() {
        let g = base();
        let d = GraphDelta::from_events(&g, &[ev(0, 3, 0, EventKind::Insert)]);
        let bytes = delta_to_bytes(&d);
        for len in 0..bytes.len() {
            assert!(delta_from_bytes(&bytes[..len]).is_err(), "len {len} decoded");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let d = GraphDelta::from_events(&base(), &[]);
        let mut bytes = delta_to_bytes(&d);
        bytes.push(0);
        assert!(matches!(delta_from_bytes(&bytes), Err(WireError::TrailingBytes)));
    }

    #[test]
    fn malformed_deltas_rejected() {
        // Unsorted inserted list.
        let mut out = Vec::new();
        out.extend_from_slice(&4u64.to_le_bytes());
        out.extend_from_slice(&4u64.to_le_bytes());
        put_pairs(&mut out, &[(2, 3), (0, 1)]);
        put_pairs(&mut out, &[]);
        assert!(matches!(delta_from_bytes(&out), Err(WireError::Malformed(_))));

        // Shrinking vertex count.
        let mut out = Vec::new();
        out.extend_from_slice(&4u64.to_le_bytes());
        out.extend_from_slice(&2u64.to_le_bytes());
        put_pairs(&mut out, &[]);
        put_pairs(&mut out, &[]);
        assert!(matches!(delta_from_bytes(&out), Err(WireError::Malformed(_))));

        // Same edge inserted and deleted.
        let mut out = Vec::new();
        out.extend_from_slice(&4u64.to_le_bytes());
        out.extend_from_slice(&4u64.to_le_bytes());
        put_pairs(&mut out, &[(0, 1)]);
        put_pairs(&mut out, &[(0, 1)]);
        assert!(matches!(delta_from_bytes(&out), Err(WireError::Malformed(_))));
    }

    #[test]
    fn corrupt_length_prefix_is_truncation_not_alloc() {
        let d = GraphDelta::from_events(&base(), &[ev(0, 3, 0, EventKind::Insert)]);
        let mut bytes = delta_to_bytes(&d);
        // Blow up the inserted-list length prefix to a huge value.
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(delta_from_bytes(&bytes), Err(WireError::Truncated)));
    }

    mod properties {
        use super::*;
        use proptest::collection::vec;
        use proptest::prelude::*;

        /// A random base graph plus a random raw event stream against it.
        /// Vertex ids run past the base count so streams exercise growth;
        /// kind 0 = insert, 1 = delete (of possibly-absent edges — the
        /// cleaner drops those, which is part of what's under test).
        fn build(n: usize, edges: &[(u32, u32)], raw: &[(u32, u32, u8)]) -> GraphDelta {
            let mut b = GraphBuilder::new(n);
            b.add_edges(edges.iter().map(|&(u, v)| (u % n as u32, v % n as u32)));
            let g = b.build();
            let events: Vec<EdgeEvent> = raw
                .iter()
                .enumerate()
                .map(|(t, &(src, dst, k))| EdgeEvent {
                    src,
                    dst,
                    timestamp_ms: t as u64,
                    kind: if k == 0 { EventKind::Insert } else { EventKind::Delete },
                })
                .collect();
            GraphDelta::from_events(&g, &events)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// encode → decode ≡ identity for the net-effect cleaned form
            /// of arbitrary insert/delete streams, including streams that
            /// net out to the empty delta.
            #[test]
            fn delta_wire_round_trip(
                n in 2usize..40,
                edges in vec((0u32..64, 0u32..64), 0..80),
                raw in vec((0u32..56, 0u32..56, 0u8..2), 0..120),
            ) {
                let d = build(n, &edges, &raw);
                let restored = delta_from_bytes(&delta_to_bytes(&d)).unwrap();
                prop_assert_eq!(&d, &restored);
                // Encoding the decoded delta is byte-identical too: the
                // derived fields (touched, degree changes) never travel,
                // so one round trip is a fixed point.
                prop_assert_eq!(delta_to_bytes(&d), delta_to_bytes(&restored));
            }

            /// v2 graph encode → decode ≡ identity for arbitrary graphs
            /// (duplicates and self-loops included — verbatim graphs
            /// travel too), and re-encoding the decoded graph is a byte
            /// fixed point.
            #[test]
            fn graph_wire_round_trip(
                n in 1usize..40,
                edges in vec((0u32..64, 0u32..64), 0..120),
            ) {
                let edges: Vec<_> =
                    edges.iter().map(|&(u, v)| (u % n as u32, v % n as u32)).collect();
                let g = Graph::from_edges(n, &edges);
                let mut out = Vec::new();
                encode_graph(&g, &mut out);
                let restored = decode_full(&out).unwrap();
                prop_assert_eq!(&g, &restored);
                let mut out2 = Vec::new();
                encode_graph(&restored, &mut out2);
                prop_assert_eq!(out, out2);
            }

            /// Every truncation of a random v2 graph blob errors instead
            /// of decoding or panicking.
            #[test]
            fn graph_wire_truncations_all_error(
                n in 1usize..16,
                edges in vec((0u32..16, 0u32..16), 0..24),
            ) {
                let edges: Vec<_> =
                    edges.iter().map(|&(u, v)| (u % n as u32, v % n as u32)).collect();
                let g = Graph::from_edges(n, &edges);
                let mut bytes = Vec::new();
                encode_graph(&g, &mut bytes);
                for len in 0..bytes.len() {
                    prop_assert!(decode_full(&bytes[..len]).is_err(), "len {} decoded", len);
                }
            }

            /// Every truncation of a random delta's encoding errors
            /// instead of decoding or panicking.
            #[test]
            fn delta_wire_truncations_all_error(
                n in 2usize..24,
                edges in vec((0u32..32, 0u32..32), 0..30),
                raw in vec((0u32..28, 0u32..28, 0u8..2), 1..40),
            ) {
                let bytes = delta_to_bytes(&build(n, &edges, &raw));
                for len in 0..bytes.len() {
                    prop_assert!(delta_from_bytes(&bytes[..len]).is_err(), "len {} decoded", len);
                }
            }
        }

        #[test]
        fn empty_stream_is_the_empty_delta() {
            let d = build(4, &[(0, 1)], &[]);
            assert!(d.is_empty());
            assert_eq!(delta_from_bytes(&delta_to_bytes(&d)).unwrap(), d);
        }
    }
}
