//! Plain-text edge-list I/O (the SNAP dataset format).
//!
//! Lets users run the partitioners on the paper's real datasets when they
//! have them on disk: `read_edge_list` accepts the `u<TAB>v` / `u v` format
//! used by SNAP and LAW, with `#` comments.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::csr::Graph;
use crate::stream::{build_chunked, ChunkedEdges, IngestPool, ScopedPool, StreamConfig};
use crate::GraphBuilder;
use crate::VertexId;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    /// Line number and content of the malformed line.
    Parse {
        line: usize,
        content: String,
    },
    /// The edge list names more distinct vertices than [`VertexId`] can
    /// address.
    TooManyVertices {
        max: u64,
    },
    /// Any of the above, annotated with the file it came from.
    InFile {
        path: PathBuf,
        source: Box<IoError>,
    },
}

impl IoError {
    /// Attaches the originating file, so callers see *which* input was
    /// malformed, not just where inside it.
    fn in_file(self, path: &Path) -> IoError {
        match self {
            already @ IoError::InFile { .. } => already,
            other => IoError::InFile { path: path.to_path_buf(), source: Box::new(other) },
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
            IoError::TooManyVertices { max } => {
                write!(f, "edge list names more than {max} distinct vertices")
            }
            IoError::InFile { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::InFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a whitespace-separated edge list. Vertex ids are compacted to a
/// dense `0..n` range in first-appearance order; the graph is built with
/// dedup + self-loop removal. Errors name `path`.
pub fn read_edge_list(path: &Path) -> Result<Graph, IoError> {
    let reader = BufReader::new(File::open(path).map_err(|e| IoError::from(e).in_file(path))?);
    parse_edge_list(reader).map_err(|e| e.in_file(path))
}

/// Parses an edge list from any reader (see [`read_edge_list`]).
pub fn parse_edge_list<R: BufRead>(mut reader: R) -> Result<Graph, IoError> {
    let mut remap = crate::fxhash::FxHashMap::default();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;
    let intern = |raw: u64,
                  remap: &mut crate::fxhash::FxHashMap<u64, VertexId>|
     -> Result<VertexId, IoError> {
        // `len() as VertexId` silently truncates past 2^32 distinct ids —
        // refuse instead of corrupting the remap.
        if remap.len() > VertexId::MAX as usize && !remap.contains_key(&raw) {
            return Err(IoError::TooManyVertices { max: VertexId::MAX as u64 + 1 });
        }
        let next = remap.len() as VertexId;
        Ok(*remap.entry(raw).or_insert(next))
    };
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Parse { line: line_no, content: trimmed.to_string() });
        };
        let (Ok(u), Ok(v)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(IoError::Parse { line: line_no, content: trimmed.to_string() });
        };
        let u = intern(u, &mut remap)?;
        let v = intern(v, &mut remap)?;
        edges.push((u, v));
    }
    let mut builder = GraphBuilder::new(remap.len()).with_edge_capacity(edges.len());
    builder.add_edges(edges);
    Ok(builder.build())
}

/// Raw `mmap(2)`/`munmap(2)` bindings, declared directly — the build
/// environment has no `libc` crate, but glibc is linked regardless.
#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// The bytes of an edge-list file: memory-mapped read-only where the
/// platform allows, read into an owned buffer otherwise. Either way the
/// parser sees one flat `&[u8]` it can re-scan per ingest pass.
enum FileBytes {
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    Owned(Vec<u8>),
}

impl FileBytes {
    fn open(path: &Path) -> io::Result<FileBytes> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = File::open(path)?;
            let len = file.metadata()?.len() as usize;
            if len > 0 {
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr != sys::map_failed() {
                    // The mapping outlives `file`: POSIX keeps pages valid
                    // after the descriptor closes.
                    return Ok(FileBytes::Mapped { ptr, len });
                }
            } else {
                return Ok(FileBytes::Owned(Vec::new()));
            }
        }
        Ok(FileBytes::Owned(std::fs::read(path)?))
    }

    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            FileBytes::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            FileBytes::Owned(v) => v,
        }
    }
}

impl Drop for FileBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let FileBytes::Mapped { ptr, len } = *self {
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

// SAFETY: the mapping is read-only and owned for the struct's lifetime.
unsafe impl Send for FileBytes {}
unsafe impl Sync for FileBytes {}

/// One parsed edge-list line: an edge, a skippable line, or a malformed
/// line.
enum Line {
    Edge(u64, u64),
    Skip,
    Bad,
}

fn parse_line(raw: &[u8]) -> Line {
    let Ok(text) = std::str::from_utf8(raw) else { return Line::Bad };
    let trimmed = text.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
        return Line::Skip;
    }
    let mut parts = trimmed.split_whitespace();
    let (Some(a), Some(b)) = (parts.next(), parts.next()) else { return Line::Bad };
    match (a.parse::<u64>(), b.parse::<u64>()) {
        (Ok(u), Ok(v)) => Line::Edge(u, v),
        _ => Line::Bad,
    }
}

/// Edge-list bytes as a re-emittable chunked stream. A chunk is a byte
/// range snapped outward to line boundaries (a line belongs to the chunk
/// containing its first byte), re-tokenized on every pass — parsing the
/// text twice more costs CPU, holding the pair list would cost 8 bytes per
/// edge of peak memory.
struct EdgeListChunks<'a> {
    data: &'a [u8],
    remap: &'a crate::fxhash::FxHashMap<u64, VertexId>,
    chunk_bytes: usize,
}

impl EdgeListChunks<'_> {
    /// First line start at or after `pos`.
    fn snap(&self, pos: usize) -> usize {
        if pos == 0 || pos >= self.data.len() {
            return pos.min(self.data.len());
        }
        match self.data[pos - 1..].iter().position(|&b| b == b'\n') {
            Some(off) => pos + off,
            None => self.data.len(),
        }
    }
}

impl ChunkedEdges for EdgeListChunks<'_> {
    fn num_vertices(&self) -> usize {
        self.remap.len()
    }

    fn num_chunks(&self) -> usize {
        self.data.len().div_ceil(self.chunk_bytes).max(1)
    }

    fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
        let lo = self.snap(chunk * self.chunk_bytes);
        let hi = self.snap((chunk + 1) * self.chunk_bytes);
        for raw in self.data[lo..hi].split(|&b| b == b'\n') {
            if let Line::Edge(u, v) = parse_line(raw) {
                // The validation pass interned every id; absence here would
                // mean the bytes changed between passes.
                let u = *self.remap.get(&u).expect("edge list mutated during ingest");
                let v = *self.remap.get(&v).expect("edge list mutated during ingest");
                sink(u, v);
            }
        }
    }
}

/// Reads a whitespace-separated edge list through `mmap` + streamed
/// two-pass CSR ingest: one sequential validation/interning scan, then
/// count and scatter passes that re-tokenize the mapped bytes in parallel.
/// No `Vec<(u32, u32)>` pair list ever materializes, so peak memory is the
/// remap table plus the final CSR — the path for paper-scale edge lists on
/// disk. Semantically identical to [`read_edge_list`] (same interning
/// order, same cleaning); falls back to an owned read of the file when
/// mapping is unavailable.
pub fn read_edge_list_mmap(path: &Path) -> Result<Graph, IoError> {
    read_edge_list_mmap_with(path, &ScopedPool(1))
}

/// [`read_edge_list_mmap`] over a caller-supplied ingest pool.
pub fn read_edge_list_mmap_with(path: &Path, pool: &dyn IngestPool) -> Result<Graph, IoError> {
    let bytes = FileBytes::open(path).map_err(|e| IoError::from(e).in_file(path))?;
    let data = bytes.bytes();

    // Validation + interning pass: sequential, so dense ids keep the
    // first-appearance order `read_edge_list` assigns.
    let mut remap = crate::fxhash::FxHashMap::default();
    for (idx, raw) in data.split(|&b| b == b'\n').enumerate() {
        let line_no = idx + 1;
        match parse_line(raw) {
            Line::Skip => {}
            Line::Bad => {
                let content = String::from_utf8_lossy(raw).trim().to_string();
                return Err(IoError::Parse { line: line_no, content }.in_file(path));
            }
            Line::Edge(u, v) => {
                for raw_id in [u, v] {
                    if remap.len() > VertexId::MAX as usize && !remap.contains_key(&raw_id) {
                        return Err(IoError::TooManyVertices { max: VertexId::MAX as u64 + 1 }
                            .in_file(path));
                    }
                    let next = remap.len() as VertexId;
                    remap.entry(raw_id).or_insert(next);
                }
            }
        }
    }

    const CHUNK_BYTES: usize = 4 << 20;
    let src = EdgeListChunks { data, remap: &remap, chunk_bytes: CHUNK_BYTES };
    // Interned ids are dense by construction; only count/offset overflow
    // can surface here, and it has no IoError analog beyond a generic
    // I/O wrapper.
    let (graph, _report) = build_chunked(&src, StreamConfig::cleaned(), pool)
        .map_err(|e| IoError::Io(io::Error::other(e.to_string())).in_file(path))?;
    Ok(graph)
}

/// Writes a graph as a `u\tv` edge list with a header comment.
pub fn write_edge_list(graph: &Graph, path: &Path) -> io::Result<()> {
    let mut writer = BufWriter::new(File::create(path)?);
    writeln!(
        writer,
        "# geograph edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic() {
        let input = "# comment\n0 1\n1\t2\n\n% also comment\n2 0\n";
        let g = parse_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn ids_compacted_in_first_appearance_order() {
        let input = "100 7\n7 100\n";
        let g = parse_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn malformed_line_reports_position() {
        let input = "0 1\nnot an edge\n";
        match parse_edge_list(Cursor::new(input)) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn single_token_line_is_an_error() {
        assert!(parse_edge_list(Cursor::new("5\n")).is_err());
    }

    #[test]
    fn file_errors_name_the_file() {
        let dir = std::env::temp_dir().join("geograph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_edges.txt");
        std::fs::write(&path, "0 1\nbroken line here\n").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        let IoError::InFile { path: reported, source } = &err else {
            panic!("expected file context, got {err:?}");
        };
        assert!(reported.ends_with("bad_edges.txt"));
        assert!(matches!(**source, IoError::Parse { line: 2, .. }));
        let msg = err.to_string();
        assert!(msg.contains("bad_edges.txt") && msg.contains("line 2"), "unhelpful: {msg}");
        std::fs::remove_file(&path).ok();

        let missing = read_edge_list(&dir.join("does_not_exist.txt")).unwrap_err();
        assert!(missing.to_string().contains("does_not_exist.txt"));
    }

    #[test]
    fn mmap_loader_matches_buffered_loader() {
        let dir = std::env::temp_dir().join("geograph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmap_rt.txt");
        let g = crate::generators::rmat(&crate::generators::RmatConfig::social(300, 2400), 9);
        write_edge_list(&g, &path).unwrap();
        let buffered = read_edge_list(&path).unwrap();
        let mapped = read_edge_list_mmap(&path).unwrap();
        assert_eq!(mapped, buffered);
        // Parallel parse over small chunks must agree too.
        let pooled = read_edge_list_mmap_with(&path, &crate::stream::ScopedPool(4)).unwrap();
        assert_eq!(pooled, buffered);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_loader_reports_malformed_lines() {
        let dir = std::env::temp_dir().join("geograph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mmap_bad.txt");
        std::fs::write(&path, "0 1\n# fine\nnope\n").unwrap();
        let err = read_edge_list_mmap(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 3") && msg.contains("mmap_bad.txt"), "{msg}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_loader_handles_empty_and_comment_only_files() {
        let dir = std::env::temp_dir().join("geograph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, content) in [("mmap_empty.txt", ""), ("mmap_comments.txt", "# a\n% b\n")] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let g = read_edge_list_mmap(&path).unwrap();
            assert_eq!(g.num_vertices(), 0);
            assert_eq!(g.num_edges(), 0);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn round_trip_through_files() {
        let dir = std::env::temp_dir().join("geograph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.txt");
        let g = crate::generators::erdos_renyi(50, 200, 1);
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
        std::fs::remove_file(&path).ok();
    }
}
