//! Plain-text edge-list I/O (the SNAP dataset format).
//!
//! Lets users run the partitioners on the paper's real datasets when they
//! have them on disk: `read_edge_list` accepts the `u<TAB>v` / `u v` format
//! used by SNAP and LAW, with `#` comments.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::csr::Graph;
use crate::GraphBuilder;
use crate::VertexId;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum IoError {
    Io(io::Error),
    /// Line number and content of the malformed line.
    Parse {
        line: usize,
        content: String,
    },
    /// The edge list names more distinct vertices than [`VertexId`] can
    /// address.
    TooManyVertices {
        max: u64,
    },
    /// Any of the above, annotated with the file it came from.
    InFile {
        path: PathBuf,
        source: Box<IoError>,
    },
}

impl IoError {
    /// Attaches the originating file, so callers see *which* input was
    /// malformed, not just where inside it.
    fn in_file(self, path: &Path) -> IoError {
        match self {
            already @ IoError::InFile { .. } => already,
            other => IoError::InFile { path: path.to_path_buf(), source: Box::new(other) },
        }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
            IoError::TooManyVertices { max } => {
                write!(f, "edge list names more than {max} distinct vertices")
            }
            IoError::InFile { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::InFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads a whitespace-separated edge list. Vertex ids are compacted to a
/// dense `0..n` range in first-appearance order; the graph is built with
/// dedup + self-loop removal. Errors name `path`.
pub fn read_edge_list(path: &Path) -> Result<Graph, IoError> {
    let reader = BufReader::new(File::open(path).map_err(|e| IoError::from(e).in_file(path))?);
    parse_edge_list(reader).map_err(|e| e.in_file(path))
}

/// Parses an edge list from any reader (see [`read_edge_list`]).
pub fn parse_edge_list<R: BufRead>(mut reader: R) -> Result<Graph, IoError> {
    let mut remap = crate::fxhash::FxHashMap::default();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut line = String::new();
    let mut line_no = 0usize;
    let intern = |raw: u64,
                  remap: &mut crate::fxhash::FxHashMap<u64, VertexId>|
     -> Result<VertexId, IoError> {
        // `len() as VertexId` silently truncates past 2^32 distinct ids —
        // refuse instead of corrupting the remap.
        if remap.len() > VertexId::MAX as usize && !remap.contains_key(&raw) {
            return Err(IoError::TooManyVertices { max: VertexId::MAX as u64 + 1 });
        }
        let next = remap.len() as VertexId;
        Ok(*remap.entry(raw).or_insert(next))
    };
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(IoError::Parse { line: line_no, content: trimmed.to_string() });
        };
        let (Ok(u), Ok(v)) = (a.parse::<u64>(), b.parse::<u64>()) else {
            return Err(IoError::Parse { line: line_no, content: trimmed.to_string() });
        };
        let u = intern(u, &mut remap)?;
        let v = intern(v, &mut remap)?;
        edges.push((u, v));
    }
    let mut builder = GraphBuilder::new(remap.len()).with_edge_capacity(edges.len());
    builder.add_edges(edges);
    Ok(builder.build())
}

/// Writes a graph as a `u\tv` edge list with a header comment.
pub fn write_edge_list(graph: &Graph, path: &Path) -> io::Result<()> {
    let mut writer = BufWriter::new(File::create(path)?);
    writeln!(
        writer,
        "# geograph edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u}\t{v}")?;
    }
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic() {
        let input = "# comment\n0 1\n1\t2\n\n% also comment\n2 0\n";
        let g = parse_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn ids_compacted_in_first_appearance_order() {
        let input = "100 7\n7 100\n";
        let g = parse_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn malformed_line_reports_position() {
        let input = "0 1\nnot an edge\n";
        match parse_edge_list(Cursor::new(input)) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn single_token_line_is_an_error() {
        assert!(parse_edge_list(Cursor::new("5\n")).is_err());
    }

    #[test]
    fn file_errors_name_the_file() {
        let dir = std::env::temp_dir().join("geograph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_edges.txt");
        std::fs::write(&path, "0 1\nbroken line here\n").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        let IoError::InFile { path: reported, source } = &err else {
            panic!("expected file context, got {err:?}");
        };
        assert!(reported.ends_with("bad_edges.txt"));
        assert!(matches!(**source, IoError::Parse { line: 2, .. }));
        let msg = err.to_string();
        assert!(msg.contains("bad_edges.txt") && msg.contains("line 2"), "unhelpful: {msg}");
        std::fs::remove_file(&path).ok();

        let missing = read_edge_list(&dir.join("does_not_exist.txt")).unwrap_err();
        assert!(missing.to_string().contains("does_not_exist.txt"));
    }

    #[test]
    fn round_trip_through_files() {
        let dir = std::env::temp_dir().join("geograph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.txt");
        let g = crate::generators::erdos_renyi(50, 200, 1);
        write_edge_list(&g, &path).unwrap();
        let g2 = read_edge_list(&path).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        assert_eq!(g.num_vertices(), g2.num_vertices());
        std::fs::remove_file(&path).ok();
    }
}
