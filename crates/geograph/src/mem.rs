//! Memory accounting as a first-class benchmark axis.
//!
//! Speed regressions are gated in `verify.sh`; memory regressions were
//! invisible until they OOMed a paper-scale run. [`MemReport`] makes the
//! footprint explicit: named components (CSR, placement state, arenas, …)
//! with byte counts, totals normalized to bytes/edge, and the kernel's own
//! view of the process (`VmRSS`/`VmHWM` from `/proc/self/status`) alongside
//! the accounted numbers so unaccounted allocations show up as a gap.

/// A named breakdown of heap usage, rendered into the `BENCH_*.json` files.
#[derive(Clone, Debug, Default)]
pub struct MemReport {
    components: Vec<(String, usize)>,
    edges: u64,
}

impl MemReport {
    /// New report normalizing against `edges` directed edges.
    pub fn new(edges: u64) -> MemReport {
        MemReport { components: Vec::new(), edges }
    }

    /// Adds (or accumulates into) a named component.
    pub fn add(&mut self, name: &str, bytes: usize) {
        if let Some(entry) = self.components.iter_mut().find(|(n, _)| n == name) {
            entry.1 += bytes;
        } else {
            self.components.push((name.to_string(), bytes));
        }
    }

    /// The components in insertion order.
    pub fn components(&self) -> &[(String, usize)] {
        &self.components
    }

    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Sum of all accounted components.
    pub fn total_bytes(&self) -> usize {
        self.components.iter().map(|(_, b)| b).sum()
    }

    /// Accounted bytes per directed edge — the scale-free number the
    /// bench gates compare against a ceiling.
    pub fn bytes_per_edge(&self) -> f64 {
        if self.edges == 0 {
            return 0.0;
        }
        self.total_bytes() as f64 / self.edges as f64
    }

    /// Bytes of one named component, if present.
    pub fn component_bytes(&self, name: &str) -> Option<usize> {
        self.components.iter().find(|(n, _)| n == name).map(|(_, b)| *b)
    }

    /// Renders as a JSON object (no trailing newline), matching the
    /// hand-rolled style of the bench bins. `indent` is the prefix applied
    /// to inner lines.
    pub fn to_json(&self, indent: &str) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("{indent}  \"components\": {{\n"));
        for (i, (name, bytes)) in self.components.iter().enumerate() {
            let comma = if i + 1 == self.components.len() { "" } else { "," };
            out.push_str(&format!("{indent}    \"{name}\": {bytes}{comma}\n"));
        }
        out.push_str(&format!("{indent}  }},\n"));
        out.push_str(&format!("{indent}  \"total_bytes\": {},\n", self.total_bytes()));
        out.push_str(&format!("{indent}  \"edges\": {},\n", self.edges));
        out.push_str(&format!("{indent}  \"bytes_per_edge\": {:.3},\n", self.bytes_per_edge()));
        let rss = match current_rss_bytes() {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        let hwm = match peak_rss_bytes() {
            Some(b) => b.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!("{indent}  \"rss_bytes\": {rss},\n"));
        out.push_str(&format!("{indent}  \"peak_rss_bytes\": {hwm}\n"));
        out.push_str(&format!("{indent}}}"));
        out
    }
}

/// Current resident set size of this process, from `/proc/self/status`
/// `VmRSS`. `None` off Linux or if the field is missing.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Peak resident set size (high-water mark) of this process, from
/// `/proc/self/status` `VmHWM`. `None` off Linux.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|kib| kib * 1024)
}

fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kib: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kib);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_normalizes() {
        let mut r = MemReport::new(100);
        r.add("csr", 800);
        r.add("state", 150);
        r.add("csr", 50);
        assert_eq!(r.total_bytes(), 1000);
        assert_eq!(r.component_bytes("csr"), Some(850));
        assert!((r.bytes_per_edge() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn json_shape() {
        let mut r = MemReport::new(4);
        r.add("csr", 64);
        let json = r.to_json("  ");
        assert!(json.contains("\"csr\": 64"));
        assert!(json.contains("\"total_bytes\": 64"));
        assert!(json.contains("\"bytes_per_edge\": 16.000"));
        assert!(json.contains("\"peak_rss_bytes\""));
    }

    #[test]
    fn zero_edges_is_finite() {
        let mut r = MemReport::new(0);
        r.add("x", 10);
        assert_eq!(r.bytes_per_edge(), 0.0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_probes_read_proc() {
        let rss = current_rss_bytes().expect("VmRSS should exist on Linux");
        let hwm = peak_rss_bytes().expect("VmHWM should exist on Linux");
        assert!(rss > 0);
        // The two reads are not atomic; allow a little growth in between.
        assert!(hwm + (1 << 20) >= rss);
    }
}
