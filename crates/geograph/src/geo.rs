//! [`GeoGraph`]: a graph plus its geo-distribution facts.

use crate::csr::Graph;
use crate::locality::{assign_locations, LocalityConfig};
use crate::{DcId, VertexId};

/// A graph whose vertices live in geo-distributed data centers.
///
/// This is the input to every partitioner in the workspace: the structure
/// (`graph`), where each vertex's input data initially resides
/// (`locations`, the paper's `L_v`), and how big that input data is
/// (`data_sizes`, the paper's `d_v` — what moving a master costs, Eq 4).
#[derive(Clone, Debug)]
pub struct GeoGraph {
    pub graph: Graph,
    /// Initial (natural) location of each vertex's input data.
    pub locations: Vec<DcId>,
    /// Input data size per vertex, in bytes.
    pub data_sizes: Vec<u64>,
    /// Number of data centers.
    pub num_dcs: usize,
}

impl GeoGraph {
    /// Assembles a `GeoGraph` from parts, validating shapes.
    pub fn new(graph: Graph, locations: Vec<DcId>, data_sizes: Vec<u64>, num_dcs: usize) -> Self {
        assert_eq!(locations.len(), graph.num_vertices());
        assert_eq!(data_sizes.len(), graph.num_vertices());
        assert!(locations.iter().all(|&d| (d as usize) < num_dcs));
        GeoGraph { graph, locations, data_sizes, num_dcs }
    }

    /// Builds a `GeoGraph` by assigning locations with `config` and sizing
    /// each vertex's input data as `base + per_edge * out_degree` bytes —
    /// a vertex's input record plus its adjacency payload.
    ///
    /// The defaults (64 KiB + 256 B/edge — a user profile plus content per
    /// relationship) keep input data two-plus orders of magnitude heavier
    /// than a whole job's 8-byte-per-vertex messages, matching the paper's
    /// regime: even a 1 % movement budget covers runtime traffic, and the
    /// default 40 % budget affords relocating roughly a third of the
    /// vertices (§VI-A.4, Exp#2).
    pub fn from_graph(graph: Graph, config: &LocalityConfig) -> Self {
        Self::from_graph_with_sizes(graph, config, 65536, 256)
    }

    /// [`GeoGraph::from_graph`] with explicit data-size model parameters.
    pub fn from_graph_with_sizes(
        graph: Graph,
        config: &LocalityConfig,
        base_bytes: u64,
        per_edge_bytes: u64,
    ) -> Self {
        let locations = assign_locations(&graph, config);
        let data_sizes = (0..graph.num_vertices() as VertexId)
            .map(|v| base_bytes + per_edge_bytes * graph.out_degree(v) as u64)
            .collect();
        GeoGraph { num_dcs: config.num_dcs, locations, data_sizes, graph }
    }

    /// Heap bytes: the CSR plus the per-vertex location and data-size
    /// arrays.
    pub fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes()
            + self.locations.capacity() * std::mem::size_of::<DcId>()
            + self.data_sizes.capacity() * std::mem::size_of::<u64>()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Total input bytes initially stored in DC `dc`.
    pub fn data_in_dc(&self, dc: DcId) -> u64 {
        self.locations.iter().zip(&self.data_sizes).filter(|(&l, _)| l == dc).map(|(_, &s)| s).sum()
    }

    /// Total input bytes across all DCs.
    pub fn total_data(&self) -> u64 {
        self.data_sizes.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn from_graph_shapes() {
        let g = erdos_renyi(500, 2500, 1);
        let gg = GeoGraph::from_graph(g, &LocalityConfig::uniform(4, 1));
        assert_eq!(gg.locations.len(), 500);
        assert_eq!(gg.data_sizes.len(), 500);
        assert_eq!(gg.num_dcs, 4);
    }

    #[test]
    fn data_size_model() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        let gg = GeoGraph::from_graph_with_sizes(g, &LocalityConfig::uniform(2, 1), 100, 10);
        assert_eq!(gg.data_sizes[0], 120); // 100 + 2 out-edges * 10
        assert_eq!(gg.data_sizes[1], 100);
    }

    #[test]
    fn dc_totals_partition_total() {
        let g = erdos_renyi(300, 900, 2);
        let gg = GeoGraph::from_graph(g, &LocalityConfig::uniform(3, 2));
        let sum: u64 = (0..3).map(|d| gg.data_in_dc(d)).sum();
        assert_eq!(sum, gg.total_data());
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_rejected() {
        let g = Graph::empty(3);
        GeoGraph::new(g, vec![0, 0], vec![1, 1, 1], 2);
    }
}
