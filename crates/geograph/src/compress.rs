//! Delta-compressed adjacency for cold rows.
//!
//! A power-law graph's memory is dominated by its long tail: millions of
//! low-degree rows whose neighbor ids, once sorted, are small gaps apart.
//! [`CompressedGraph`] stores those rows as varint-encoded gap sequences
//! (≈1–2 bytes per edge endpoint instead of 4) while keeping hot
//! high-degree rows as raw `u32` slices — the rows the trainer's score
//! kernels scan hardest stay zero-copy and branch-free.
//!
//! The hot/cold choice is **per row at build time** and invisible through
//! the API: [`CompressedGraph::out_neighbors`] returns the same sorted
//! slice contents [`Graph::out_neighbors`] would, decoding cold rows into a
//! caller-owned scratch buffer. Because every row round-trips exactly
//! ([`CompressedGraph::to_graph`] reproduces the source `Graph`
//! bit-for-bit), any kernel computing over neighbors sees identical inputs
//! in either representation — compression changes bytes held, never
//! results.

use crate::csr::Graph;
use crate::offsets::Offsets;
use crate::VertexId;

/// When a row stays raw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressPolicy {
    /// Rows with at least this many neighbors stay raw (`u32` slice).
    /// Below it, rows are varint-gap packed.
    pub hot_min_degree: usize,
}

impl CompressPolicy {
    /// Default threshold. 64 keeps the hub rows that dominate scan time
    /// raw; in an R-MAT/social tail almost all rows sit far below it, so
    /// the bulk of rows still compress.
    pub fn auto() -> Self {
        CompressPolicy { hot_min_degree: 64 }
    }

    /// Compress every row (for tests and maximum shrink).
    pub fn all_cold() -> Self {
        CompressPolicy { hot_min_degree: usize::MAX }
    }
}

impl Default for CompressPolicy {
    fn default() -> Self {
        CompressPolicy::auto()
    }
}

/// One adjacency direction: raw rows in a flat `u32` array, cold rows in a
/// flat varint byte array, each with its own n+1 offset array. A row lives
/// in exactly one of the two (its run in the other has zero length).
/// Offset arrays are width-adaptive ([`Offsets`]) — compressing a graph
/// must not *widen* its indexes, and the packed byte array is shorter than
/// the flat edge array it encodes, so both directions' offsets narrow to
/// `u32` whenever the source graph's did.
struct Direction {
    raw_offsets: Offsets,
    raw: Vec<VertexId>,
    packed_offsets: Offsets,
    packed: Vec<u8>,
}

impl Direction {
    fn compress(offsets: &[usize], flat: &[VertexId], policy: CompressPolicy) -> Direction {
        let n = offsets.len() - 1;
        let mut raw_offsets = Vec::with_capacity(n + 1);
        let mut packed_offsets = Vec::with_capacity(n + 1);
        let mut raw = Vec::new();
        let mut packed = Vec::new();
        raw_offsets.push(0);
        packed_offsets.push(0);
        for v in 0..n {
            let run = &flat[offsets[v]..offsets[v + 1]];
            if run.len() >= policy.hot_min_degree {
                raw.extend_from_slice(run);
            } else if !run.is_empty() {
                // Degree first, then the absolute first id, then gaps.
                // Gaps are >= 0 (sorted runs; 0 marks a duplicate edge).
                write_varint(&mut packed, run.len() as u32);
                write_varint(&mut packed, run[0]);
                for w in run.windows(2) {
                    write_varint(&mut packed, w[1] - w[0]);
                }
            }
            raw_offsets.push(raw.len());
            packed_offsets.push(packed.len());
        }
        raw.shrink_to_fit();
        packed.shrink_to_fit();
        Direction {
            raw_offsets: Offsets::from_usize(raw_offsets),
            raw,
            packed_offsets: Offsets::from_usize(packed_offsets),
            packed,
        }
    }

    #[inline]
    fn degree(&self, v: usize) -> usize {
        let (rs, re) = self.raw_offsets.run(v);
        if re > rs {
            return re - rs;
        }
        let (ps, pe) = self.packed_offsets.run(v);
        let bytes = &self.packed[ps..pe];
        if bytes.is_empty() {
            0
        } else {
            read_varint(bytes).0 as usize
        }
    }

    /// The row as a slice: raw rows zero-copy, cold rows decoded into
    /// `buf`.
    fn neighbors<'a>(&'a self, v: usize, buf: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        let (rs, re) = self.raw_offsets.run(v);
        if re > rs {
            return &self.raw[rs..re];
        }
        buf.clear();
        let (ps, pe) = self.packed_offsets.run(v);
        let bytes = &self.packed[ps..pe];
        if bytes.is_empty() {
            return buf;
        }
        let (degree, mut rest) = read_varint(bytes);
        let mut prev = 0u32;
        for i in 0..degree {
            let (x, r) = read_varint(rest);
            rest = r;
            prev = if i == 0 { x } else { prev + x };
            buf.push(prev);
        }
        buf
    }

    fn iter(&self, v: usize) -> NeighborIter<'_> {
        let (rs, re) = self.raw_offsets.run(v);
        if re > rs {
            return NeighborIter::Raw(self.raw[rs..re].iter());
        }
        let (ps, pe) = self.packed_offsets.run(v);
        let bytes = &self.packed[ps..pe];
        if bytes.is_empty() {
            return NeighborIter::Packed { bytes: &[], remaining: 0, prev: 0, first: false };
        }
        let (degree, rest) = read_varint(bytes);
        NeighborIter::Packed { bytes: rest, remaining: degree as usize, prev: 0, first: true }
    }

    fn heap_bytes(&self) -> usize {
        self.raw_offsets.heap_bytes()
            + self.packed_offsets.heap_bytes()
            + self.raw.capacity() * std::mem::size_of::<VertexId>()
            + self.packed.capacity()
    }
}

/// Zero-allocation neighbor iterator over either representation.
pub enum NeighborIter<'a> {
    Raw(std::slice::Iter<'a, VertexId>),
    Packed { bytes: &'a [u8], remaining: usize, prev: u32, first: bool },
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        match self {
            NeighborIter::Raw(it) => it.next().copied(),
            NeighborIter::Packed { bytes, remaining, prev, first } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                let (x, rest) = read_varint(bytes);
                *bytes = rest;
                *prev = if *first { x } else { *prev + x };
                *first = false;
                Some(*prev)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            NeighborIter::Raw(it) => it.size_hint(),
            NeighborIter::Packed { remaining, .. } => (*remaining, Some(*remaining)),
        }
    }
}

/// A [`Graph`] with cold adjacency rows varint-gap packed. Same logical
/// content, a fraction of the bytes; see the module docs for the layout.
pub struct CompressedGraph {
    n: usize,
    edges: usize,
    policy: CompressPolicy,
    out: Direction,
    inc: Direction,
}

impl CompressedGraph {
    /// Compresses `graph` under `policy`. The source can be dropped
    /// afterwards; [`CompressedGraph::to_graph`] reproduces it exactly.
    pub fn from_graph(graph: &Graph, policy: CompressPolicy) -> CompressedGraph {
        let n = graph.num_vertices();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0);
        in_offsets.push(0);
        for v in 0..n {
            out_offsets.push(out_offsets[v] + graph.out_degree(v as VertexId));
            in_offsets.push(in_offsets[v] + graph.in_degree(v as VertexId));
        }
        // Flat views of the source CSR, via the public neighbor API.
        let out_flat: Vec<VertexId> =
            (0..n).flat_map(|v| graph.out_neighbors(v as VertexId).iter().copied()).collect();
        let in_flat: Vec<VertexId> =
            (0..n).flat_map(|v| graph.in_neighbors(v as VertexId).iter().copied()).collect();
        CompressedGraph {
            n,
            edges: graph.num_edges(),
            policy,
            out: Direction::compress(&out_offsets, &out_flat, policy),
            inc: Direction::compress(&in_offsets, &in_flat, policy),
        }
    }

    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    pub fn policy(&self) -> CompressPolicy {
        self.policy
    }

    /// Out-neighbors of `v` (sorted) — identical contents to
    /// [`Graph::out_neighbors`]. Hot rows return a zero-copy slice; cold
    /// rows decode into `buf` (reuse one buffer across calls).
    #[inline]
    pub fn out_neighbors<'a>(&'a self, v: VertexId, buf: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        self.out.neighbors(v as usize, buf)
    }

    /// In-neighbors of `v` (sorted) — identical contents to
    /// [`Graph::in_neighbors`].
    #[inline]
    pub fn in_neighbors<'a>(&'a self, v: VertexId, buf: &'a mut Vec<VertexId>) -> &'a [VertexId] {
        self.inc.neighbors(v as usize, buf)
    }

    /// Streaming out-neighbors without a scratch buffer.
    pub fn out_neighbors_iter(&self, v: VertexId) -> NeighborIter<'_> {
        self.out.iter(v as usize)
    }

    /// Streaming in-neighbors without a scratch buffer.
    pub fn in_neighbors_iter(&self, v: VertexId) -> NeighborIter<'_> {
        self.inc.iter(v as usize)
    }

    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.degree(v as usize)
    }

    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.inc.degree(v as usize)
    }

    /// Number of rows kept raw (out-direction).
    pub fn hot_rows(&self) -> usize {
        (0..self.n)
            .filter(|&v| {
                let (s, e) = self.out.raw_offsets.run(v);
                e > s
            })
            .count()
    }

    /// Decompresses back to the exact source [`Graph`] — bit-identical,
    /// which is what lets kernels validate against either representation.
    pub fn to_graph(&self) -> Graph {
        let mut out_offsets = Vec::with_capacity(self.n + 1);
        let mut in_offsets = Vec::with_capacity(self.n + 1);
        out_offsets.push(0usize);
        in_offsets.push(0usize);
        let mut out_flat = Vec::with_capacity(self.edges);
        let mut in_flat = Vec::with_capacity(self.edges);
        for v in 0..self.n {
            out_flat.extend(self.out.iter(v));
            in_flat.extend(self.inc.iter(v));
            out_offsets.push(out_flat.len());
            in_offsets.push(in_flat.len());
        }
        Graph::from_csr_parts(
            self.n,
            Offsets::from_usize(out_offsets),
            out_flat,
            Offsets::from_usize(in_offsets),
            in_flat,
        )
    }

    /// Heap bytes of the compressed structure.
    pub fn heap_bytes(&self) -> usize {
        self.out.heap_bytes() + self.inc.heap_bytes()
    }

    /// Heap bytes per directed edge (both directions included, like
    /// [`Graph::heap_bytes`]).
    pub fn bytes_per_edge(&self) -> f64 {
        if self.edges == 0 {
            return 0.0;
        }
        self.heap_bytes() as f64 / self.edges as f64
    }
}

#[inline]
fn write_varint(out: &mut Vec<u8>, mut x: u32) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint; returns `(value, rest)`.
#[inline]
fn read_varint(bytes: &[u8]) -> (u32, &[u8]) {
    let mut x = 0u32;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        x |= ((b & 0x7f) as u32) << shift;
        if b & 0x80 == 0 {
            return (x, &bytes[i + 1..]);
        }
        shift += 7;
    }
    panic!("truncated varint in compressed adjacency");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{rmat, RmatConfig};

    fn check_equivalence(g: &Graph, policy: CompressPolicy) {
        let c = CompressedGraph::from_graph(g, policy);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        let mut buf = Vec::new();
        for v in g.vertices() {
            assert_eq!(c.out_neighbors(v, &mut buf), g.out_neighbors(v), "out row {v}");
            assert_eq!(c.in_neighbors(v, &mut buf), g.in_neighbors(v), "in row {v}");
            assert_eq!(c.out_degree(v), g.out_degree(v));
            assert_eq!(c.in_degree(v), g.in_degree(v));
            let it: Vec<VertexId> = c.out_neighbors_iter(v).collect();
            assert_eq!(it.as_slice(), g.out_neighbors(v));
        }
        assert_eq!(&c.to_graph(), g, "decompression must round-trip exactly");
    }

    #[test]
    fn equivalent_under_every_policy() {
        let g = rmat(&RmatConfig::social(1 << 9, 8 << 9), 5);
        for policy in [
            CompressPolicy::auto(),
            CompressPolicy::all_cold(),
            CompressPolicy { hot_min_degree: 4 },
        ] {
            check_equivalence(&g, policy);
        }
    }

    #[test]
    fn empty_rows_and_empty_graph() {
        check_equivalence(&Graph::empty(10), CompressPolicy::auto());
        check_equivalence(&Graph::from_edges(5, &[(0, 4)]), CompressPolicy::all_cold());
    }

    #[test]
    fn duplicate_edges_survive_gap_encoding() {
        // Zero gaps: duplicates kept verbatim by from_edges.
        let g = Graph::from_edges(3, &[(0, 1), (0, 1), (0, 2), (2, 2), (2, 2)]);
        check_equivalence(&g, CompressPolicy::all_cold());
    }

    #[test]
    fn max_degree_row() {
        // One vertex adjacent to everything — a max-degree row both raw
        // (auto keeps it hot) and packed (all_cold forces encoding).
        let n = 300usize;
        let edges: Vec<(VertexId, VertexId)> =
            (1..n as VertexId).map(|v| (0, v)).chain((1..n as VertexId).map(|v| (v, 0))).collect();
        let g = Graph::from_edges(n, &edges);
        check_equivalence(&g, CompressPolicy::auto());
        check_equivalence(&g, CompressPolicy::all_cold());
    }

    #[test]
    fn compresses_the_tail() {
        let g = rmat(&RmatConfig::social(1 << 11, 16 << 11), 5);
        let c = CompressedGraph::from_graph(&g, CompressPolicy::auto());
        assert!(
            c.heap_bytes() < g.heap_bytes(),
            "compressed {} >= raw {}",
            c.heap_bytes(),
            g.heap_bytes()
        );
        assert!(c.hot_rows() < g.num_vertices() / 10);
    }

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        for x in [0u32, 1, 127, 128, 16_383, 16_384, u32::MAX] {
            buf.clear();
            write_varint(&mut buf, x);
            let (y, rest) = read_varint(&buf);
            assert_eq!(x, y);
            assert!(rest.is_empty());
        }
    }
}
