//! Mutable edge accumulation with cleaning, producing [`Graph`] snapshots.

use crate::csr::Graph;
use crate::stream::BuildError;
use crate::VertexId;

/// Accumulates directed edges and builds CSR [`Graph`] snapshots.
///
/// The builder is the mutation point of the crate: generators, dataset
/// loaders and dynamic streams all funnel through it. It optionally removes
/// self-loops and duplicate edges at build time — real-world partitioning
/// papers (including RLCut's evaluation graphs) work on simple digraphs.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// New builder for a graph with `n` vertices. Deduplication and
    /// self-loop removal are on by default.
    pub fn new(n: usize) -> Self {
        GraphBuilder { num_vertices: n, edges: Vec::new(), dedup: true, drop_self_loops: true }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Keep duplicate edges instead of deduplicating at build time.
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Keep self-loops instead of dropping them at build time.
    pub fn keep_self_loops(mut self) -> Self {
        self.drop_self_loops = false;
        self
    }

    /// Adds a directed edge. Ids must be `< n`.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        debug_assert!((u as usize) < self.num_vertices && (v as usize) < self.num_vertices);
        self.edges.push((u, v));
    }

    /// Adds many edges.
    pub fn add_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }

    /// Grows the vertex set (new vertices are isolated until edges arrive).
    /// Used by dynamic streams when inserted edges reference new vertices.
    pub fn grow_vertices(&mut self, n: usize) {
        if n > self.num_vertices {
            self.num_vertices = n;
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of raw (pre-cleaning) edges currently accumulated.
    pub fn num_raw_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds an immutable CSR snapshot, applying the configured cleaning.
    /// The builder keeps its edges, so further additions and rebuilds are
    /// possible (dynamic-graph windows rebuild per window).
    pub fn build(&self) -> Graph {
        let mut edges = self.edges.clone();
        if self.drop_self_loops {
            edges.retain(|&(u, v)| u != v);
        }
        if self.dedup {
            edges.sort_unstable();
            edges.dedup();
        }
        Graph::from_edges(self.num_vertices, &edges)
    }

    /// Non-panicking [`GraphBuilder::build`]: out-of-range ids and offset
    /// overflow come back as typed [`BuildError`]s. Release builds skip the
    /// `add_edge` debug range check, so this is the path that makes
    /// untrusted edge streams safe end to end.
    pub fn try_build(&self) -> Result<Graph, BuildError> {
        let mut edges = self.edges.clone();
        Self::clean(&mut edges, self.dedup, self.drop_self_loops);
        Graph::try_from_edges(self.num_vertices, &edges)
    }

    /// Consumes the builder, cleaning its edge list **in place** — no
    /// clone. `build` holds two copies of the edge list at peak (the
    /// accumulated list plus the cleaned clone) on top of the CSR being
    /// constructed; `finish` holds one. Use it whenever the builder is not
    /// rebuilt across windows.
    pub fn finish(mut self) -> Result<Graph, BuildError> {
        Self::clean(&mut self.edges, self.dedup, self.drop_self_loops);
        let g = Graph::try_from_edges(self.num_vertices, &self.edges)?;
        drop(self.edges);
        Ok(g)
    }

    fn clean(edges: &mut Vec<(VertexId, VertexId)>, dedup: bool, drop_self_loops: bool) {
        if drop_self_loops {
            edges.retain(|&(u, v)| u != v);
        }
        if dedup {
            edges.sort_unstable();
            edges.dedup();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn keep_duplicates_and_loops() {
        let mut b = GraphBuilder::new(2).keep_duplicates().keep_self_loops();
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.build().num_edges(), 3);
    }

    #[test]
    fn grow_vertices_allows_new_ids() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.grow_vertices(4);
        b.add_edge(3, 0);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn rebuild_after_additions() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g1 = b.build();
        b.add_edge(1, 2);
        let g2 = b.build();
        assert_eq!(g1.num_edges(), 1);
        assert_eq!(g2.num_edges(), 2);
    }

    #[test]
    fn finish_matches_build() {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0, 1), (0, 1), (2, 2), (3, 0), (1, 2)]);
        let built = b.build();
        assert_eq!(b.finish().unwrap(), built);
    }

    #[test]
    fn try_build_reports_out_of_range() {
        let mut b = GraphBuilder::new(2).keep_self_loops().keep_duplicates();
        b.edges.push((0, 9)); // bypasses the debug_assert in add_edge
        assert!(matches!(
            b.try_build(),
            Err(crate::stream::BuildError::EdgeOutOfRange { u: 0, v: 9, n: 2 })
        ));
    }

    #[test]
    fn grow_never_shrinks() {
        let mut b = GraphBuilder::new(5);
        b.grow_vertices(2);
        assert_eq!(b.num_vertices(), 5);
    }
}
