//! Degree statistics and the hybrid-cut high/low-degree threshold θ.

use crate::csr::Graph;
use crate::VertexId;

/// Summary statistics over a graph's in-degree distribution.
///
/// Hybrid-cut (paper §III-B) splits vertices into high-degree (`in ≥ θ`) and
/// low-degree classes; everything downstream — partitioning rules, the
/// differentiated computation model, RLCut's degree-aware agent sampling —
/// keys off this classification.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub max_in: usize,
    pub max_out: usize,
    pub mean_in: f64,
    /// 99th-percentile in-degree.
    pub p99_in: usize,
    /// Fraction of edges pointing at the top 1 % of vertices by in-degree —
    /// a cheap skew indicator (≈0.01–0.05 for uniform graphs, ≫0.2 for
    /// power-law graphs).
    pub top1pct_edge_share: f64,
}

impl DegreeStats {
    /// Computes stats in one pass over the degree arrays. The in-degree
    /// scratch copy is `u32` whenever the edge count fits (every graph the
    /// substrate builds narrow — a per-vertex degree is bounded by the
    /// total edge count), halving the transient allocation; the widened
    /// path only exists for a hypothetical >2^32-edge graph.
    pub fn compute(graph: &Graph) -> Self {
        let n = graph.num_vertices().max(1);
        let max_out = (0..n as VertexId).map(|v| graph.out_degree(v)).max().unwrap_or(0);
        if graph.num_edges() <= u32::MAX as usize {
            let mut in_degrees: Vec<u32> =
                (0..n as VertexId).map(|v| graph.in_degree(v) as u32).collect();
            in_degrees.sort_unstable();
            Self::from_sorted(&in_degrees, max_out, n)
        } else {
            let mut in_degrees: Vec<usize> =
                (0..n as VertexId).map(|v| graph.in_degree(v)).collect();
            in_degrees.sort_unstable();
            Self::from_sorted(&in_degrees, max_out, n)
        }
    }

    /// The percentile/skew arithmetic, generic over the scratch width.
    fn from_sorted<T: DegreeCount>(in_degrees: &[T], max_out: usize, n: usize) -> Self {
        let max_in = in_degrees.last().map(|&d| d.as_u64() as usize).unwrap_or(0);
        let total: u64 = in_degrees.iter().map(|&d| d.as_u64()).sum();
        let mean_in = total as f64 / n as f64;
        let p99_in = in_degrees[((n - 1) as f64 * 0.99) as usize].as_u64() as usize;
        let top = n.div_ceil(100);
        let top_edges: u64 = in_degrees[n - top..].iter().map(|&d| d.as_u64()).sum();
        let top1pct_edge_share = if total == 0 { 0.0 } else { top_edges as f64 / total as f64 };
        DegreeStats { max_in, max_out, mean_in, p99_in, top1pct_edge_share }
    }
}

/// Degree scratch element: `u32` on the narrow path, `usize` on the
/// widened fallback.
trait DegreeCount: Copy + Ord {
    fn as_u64(self) -> u64;
}

impl DegreeCount for u32 {
    fn as_u64(self) -> u64 {
        self as u64
    }
}

impl DegreeCount for usize {
    fn as_u64(self) -> u64 {
        self as u64
    }
}

/// Suggests the hybrid-cut threshold θ so that roughly `high_fraction` of
/// vertices are classified high-degree.
///
/// PowerLyra's evaluation found thresholds around 100 work well for natural
/// graphs; scaled-down analogs need a proportionally lower θ, so the
/// reproduction picks it from the degree distribution instead of hardcoding.
/// Like [`DegreeStats::compute`], the scratch degree copy stays `u32`
/// whenever the edge count fits.
pub fn suggest_theta(graph: &Graph, high_fraction: f64) -> usize {
    assert!((0.0..=1.0).contains(&high_fraction));
    let n = graph.num_vertices();
    if n == 0 {
        return 1;
    }
    let idx = (((n as f64) * (1.0 - high_fraction)) as usize).min(n - 1);
    if graph.num_edges() <= u32::MAX as usize {
        let mut in_degrees: Vec<u32> =
            (0..n as VertexId).map(|v| graph.in_degree(v) as u32).collect();
        in_degrees.sort_unstable();
        (in_degrees[idx] as usize).max(1)
    } else {
        let mut in_degrees: Vec<usize> = (0..n as VertexId).map(|v| graph.in_degree(v)).collect();
        in_degrees.sort_unstable();
        in_degrees[idx].max(1)
    }
}

/// Classifies every vertex: `true` = high-degree (`in_degree >= theta`).
pub fn classify_high_degree(graph: &Graph, theta: usize) -> Vec<bool> {
    (0..graph.num_vertices() as VertexId).map(|v| graph.in_degree(v) >= theta).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{erdos_renyi, rmat, RmatConfig};

    #[test]
    fn stats_on_tiny_graph() {
        let g = Graph::from_edges(4, &[(0, 3), (1, 3), (2, 3)]);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.max_in, 3);
        assert_eq!(s.max_out, 1);
        assert!((s.mean_in - 0.75).abs() < 1e-9);
    }

    #[test]
    fn skew_indicator_separates_models() {
        let uniform = erdos_renyi(2000, 20_000, 1);
        let skewed = rmat(&RmatConfig::web(2048, 20_480), 1);
        let su = DegreeStats::compute(&uniform);
        let ss = DegreeStats::compute(&skewed);
        assert!(
            ss.top1pct_edge_share > 2.0 * su.top1pct_edge_share,
            "rmat {:.3} vs er {:.3}",
            ss.top1pct_edge_share,
            su.top1pct_edge_share
        );
    }

    #[test]
    fn theta_controls_high_fraction() {
        let g = rmat(&RmatConfig::social(4096, 40_960), 2);
        let theta = suggest_theta(&g, 0.05);
        let high = classify_high_degree(&g, theta);
        let frac = high.iter().filter(|&&h| h).count() as f64 / g.num_vertices() as f64;
        assert!(frac > 0.005 && frac < 0.2, "high fraction {frac}");
    }

    #[test]
    fn theta_at_extremes() {
        let g = erdos_renyi(100, 500, 3);
        assert!(suggest_theta(&g, 0.0) >= 1);
        let all_high_theta = suggest_theta(&g, 1.0);
        let high = classify_high_degree(&g, all_high_theta);
        // θ from the min degree: most vertices classify as high.
        assert!(high.iter().filter(|&&h| h).count() > 50);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::empty(1);
        let s = DegreeStats::compute(&g);
        assert_eq!(s.max_in, 0);
        assert_eq!(s.top1pct_edge_share, 0.0);
    }
}
