//! Streaming two-pass CSR ingest: build a [`Graph`] from a re-emittable
//! edge stream without ever staging a `Vec<(VertexId, VertexId)>`.
//!
//! The staged path ([`Graph::from_edges`] fed by [`crate::GraphBuilder`])
//! holds three copies of every edge at peak: the builder's pair list, the
//! cleaned clone, and the CSR arrays — ~3× the final footprint, which is
//! what has kept benchmarks on toy scales. This module replaces staging
//! with two passes over a [`ChunkedEdges`] source:
//!
//! 1. **Count** — every chunk is emitted once and per-vertex degrees are
//!    accumulated into atomic counters (8 bytes/vertex transient, both
//!    directions together).
//! 2. **Scatter** — offsets come from a checked prefix sum, the chunks are
//!    emitted again, and each edge is written straight into its CSR run
//!    through a per-vertex atomic cursor.
//!
//! A third parallel sweep sorts each adjacency run, which is what makes the
//! result *bit-identical* to [`Graph::from_edges`] at any thread count: the
//! scatter order is racy, but a sorted run has one canonical layout.
//! Optional cleaning (self-loop drop at emit time, per-run dedup compaction
//! after the sort) reproduces [`crate::GraphBuilder`]'s global
//! sort+dedup semantics exactly, because duplicates of `(u, v)` are
//! adjacent in `u`'s sorted out-run and in `v`'s sorted in-run.
//!
//! Peak transient memory is the two counter planes (`8n` bytes, reused as
//! scatter cursors) — for paper-density graphs (~14 edges/vertex) that is
//! well under 0.2× the final CSR, vs ~2× for the staged path.
//!
//! Because the kept-edge count is capped at `u32` (that is what keeps the
//! counter planes at 4 bytes/vertex/direction), the prefix sums build
//! narrow [`Offsets`] directly — the streamed path never widens an offset
//! to `usize` at any point of the build.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::csr::Graph;
use crate::offsets::Offsets;
use crate::VertexId;

/// Typed failure of a graph build — overflow and range conditions that the
/// panicking [`Graph::from_edges`] path treats as programming errors become
/// recoverable errors here, because at paper scale they are *data* errors
/// (a 2^31-edge stream is a real input, not a bug).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The vertex count does not fit [`VertexId`] (ids are `u32`; the
    /// all-ones value is reserved).
    TooManyVertices { n: usize },
    /// The stream emitted ≥ 2^32 kept edges. Streamed ingest tracks
    /// per-vertex degrees in `u32` counters (that is what keeps the
    /// transient footprint at 8 bytes/vertex), so a stream at or past
    /// 2^32 edges could wrap a counter; the exact total is tracked in
    /// 64 bits so the condition is detected, not wrapped.
    TooManyEdges { edges: u64 },
    /// An emitted edge references a vertex `>= n`.
    EdgeOutOfRange { u: VertexId, v: VertexId, n: usize },
    /// CSR offset accumulation overflowed `usize`.
    OffsetOverflow,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::TooManyVertices { n } => {
                write!(f, "vertex count {n} exceeds VertexId range")
            }
            BuildError::TooManyEdges { edges } => {
                write!(f, "edge stream emitted {edges} kept edges (streamed ingest caps at 2^32-1)")
            }
            BuildError::EdgeOutOfRange { u, v, n } => {
                write!(f, "edge ({u},{v}) out of range for n={n}")
            }
            BuildError::OffsetOverflow => write!(f, "CSR offset accumulation overflowed usize"),
        }
    }
}

impl std::error::Error for BuildError {}

/// An edge source that can re-emit any chunk of its stream on demand.
///
/// The contract that makes two-pass ingest sound: **`emit(chunk, ·)` must
/// produce the identical edge sequence every time it is called** for a
/// given chunk. Generators satisfy this by deriving a fresh RNG from
/// `(seed, chunk)`; file loaders by re-reading a byte range. Chunks may be
/// emitted in any order, concurrently, on any thread.
pub trait ChunkedEdges: Sync {
    /// Number of vertices of the output graph.
    fn num_vertices(&self) -> usize;
    /// Number of chunks the stream is split into.
    fn num_chunks(&self) -> usize;
    /// Emits every edge of `chunk` (0-based) into `sink`, in a
    /// deterministic per-chunk order.
    fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId));
    /// Optional total-edge hint (pre-cleaning), for progress reporting.
    fn edges_hint(&self) -> Option<u64> {
        None
    }
}

/// Minimal thread-pool abstraction for ingest, so `geograph` can run on the
/// trainer's persistent `WorkerPool` (which lives upstream in `rlcut` and
/// therefore cannot be named here) or on plain scoped threads.
///
/// `run` must invoke `job(i)` exactly once for every `i in 0..threads()`,
/// concurrently or not, and return only after all invocations finish.
pub trait IngestPool {
    /// Number of workers `run` will invoke.
    fn threads(&self) -> usize;
    /// Runs `job(0..threads())` to completion.
    fn run(&self, job: &(dyn Fn(usize) + Sync));
}

/// The built-in [`IngestPool`]: spawns scoped threads per call. Zero setup
/// cost, good enough for one-shot builds; long-lived training sessions pass
/// their persistent pool instead.
#[derive(Clone, Copy, Debug)]
pub struct ScopedPool(pub usize);

impl IngestPool for ScopedPool {
    fn threads(&self) -> usize {
        self.0.max(1)
    }

    fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        let t = self.threads();
        if t == 1 {
            job(0);
            return;
        }
        std::thread::scope(|s| {
            for i in 1..t {
                s.spawn(move || job(i));
            }
            job(0);
        });
    }
}

/// Cleaning options for streamed builds, mirroring [`crate::GraphBuilder`]'s
/// defaults.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Remove duplicate `(u, v)` edges (post-sort compaction).
    pub dedup: bool,
    /// Drop `(v, v)` edges at emit time.
    pub drop_self_loops: bool,
}

impl StreamConfig {
    /// `GraphBuilder` semantics: dedup + drop self-loops. A streamed build
    /// with this config is bit-identical to `GraphBuilder::build` over the
    /// same edge multiset.
    pub fn cleaned() -> Self {
        StreamConfig { dedup: true, drop_self_loops: true }
    }

    /// `Graph::from_edges` semantics: keep everything. A streamed build
    /// with this config is bit-identical to `from_edges` over the same
    /// edge multiset.
    pub fn verbatim() -> Self {
        StreamConfig { dedup: false, drop_self_loops: false }
    }
}

/// What a streamed build did and what it cost in memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IngestReport {
    /// Edges emitted by the source (pre-cleaning).
    pub raw_edges: u64,
    /// Edges in the built graph.
    pub edges: usize,
    /// Self-loops dropped at emit time.
    pub self_loops_dropped: u64,
    /// Duplicate edges removed by compaction.
    pub duplicates_removed: u64,
    /// Heap bytes of the final CSR (both directions, offsets + targets).
    pub csr_bytes: usize,
    /// Peak transient heap held *in addition to* the CSR during the build
    /// (the two atomic counter/cursor planes).
    pub transient_bytes: usize,
}

impl IngestReport {
    /// Peak accounted build footprint: final CSR plus transients.
    pub fn peak_bytes(&self) -> usize {
        self.csr_bytes + self.transient_bytes
    }

    /// Peak footprint as a multiple of the final CSR size. The staged path
    /// sits near 2–3×; streamed ingest must stay under ~1.2×.
    pub fn build_ratio(&self) -> f64 {
        if self.csr_bytes == 0 {
            return 1.0;
        }
        self.peak_bytes() as f64 / self.csr_bytes as f64
    }
}

/// Shared mutable slice for the scatter pass. Each write index is claimed
/// by a `fetch_add` on the owning vertex's cursor, so no two threads ever
/// write the same slot. Shared with the shard-resident ingest
/// ([`crate::shard::ShardView::build_streamed`]), which scatters the same
/// way into per-shard arrays.
pub(crate) struct SharedSlice<T>(pub(crate) *mut T);
unsafe impl<T: Send> Sync for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    #[inline]
    pub(crate) unsafe fn write(&self, idx: usize, value: T) {
        unsafe { self.0.add(idx).write(value) }
    }

    /// The base pointer. A method (rather than field access) so closures
    /// capture the whole `Sync` wrapper, not the raw pointer field.
    #[inline]
    pub(crate) fn base(&self) -> *mut T {
        self.0
    }
}

/// Builds a [`Graph`] from a chunked edge stream in two passes, without a
/// staging edge list. Deterministic — bit-identical output for a fixed
/// source and config — at any `pool.threads()`.
pub fn build_chunked<S: ChunkedEdges + ?Sized>(
    src: &S,
    cfg: StreamConfig,
    pool: &dyn IngestPool,
) -> Result<(Graph, IngestReport), BuildError> {
    let n = src.num_vertices();
    if n >= VertexId::MAX as usize {
        return Err(BuildError::TooManyVertices { n });
    }
    let num_chunks = src.num_chunks();

    // ---- Pass 1: count degrees. ------------------------------------------
    // One u32 counter per vertex per direction; wrap is impossible below
    // 2^32 total kept edges, and the exact total is tracked in 64 bits so
    // the >= 2^32 case is a typed error, never a silent wrap.
    let out_cnt: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let in_cnt: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let raw_edges = AtomicU64::new(0);
    let loops_dropped = AtomicU64::new(0);
    // First out-of-range edge, packed (u << 32) | v; u64::MAX = none.
    let bad_edge = AtomicU64::new(u64::MAX);

    let next_chunk = AtomicUsize::new(0);
    pool.run(&|_worker| {
        let mut local_raw = 0u64;
        let mut local_loops = 0u64;
        loop {
            let c = next_chunk.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            src.emit(c, &mut |u, v| {
                local_raw += 1;
                if (u as usize) >= n || (v as usize) >= n {
                    let packed = ((u as u64) << 32) | v as u64;
                    let _ = bad_edge.compare_exchange(
                        u64::MAX,
                        packed,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                    return;
                }
                if cfg.drop_self_loops && u == v {
                    local_loops += 1;
                    return;
                }
                out_cnt[u as usize].fetch_add(1, Ordering::Relaxed);
                in_cnt[v as usize].fetch_add(1, Ordering::Relaxed);
            });
        }
        raw_edges.fetch_add(local_raw, Ordering::Relaxed);
        loops_dropped.fetch_add(local_loops, Ordering::Relaxed);
    });

    let raw_edges = raw_edges.into_inner();
    let loops_dropped = loops_dropped.into_inner();
    let bad = bad_edge.into_inner();
    if bad != u64::MAX {
        return Err(BuildError::EdgeOutOfRange {
            u: (bad >> 32) as VertexId,
            v: bad as VertexId,
            n,
        });
    }
    let kept = raw_edges - loops_dropped;
    if kept > VertexId::MAX as u64 {
        return Err(BuildError::TooManyEdges { edges: kept });
    }

    // ---- Prefix sums (checked) and allocation. ---------------------------
    // `kept <= u32::MAX` (checked above), so every offset fits `u32`: the
    // sums accumulate narrow and are never widened to `usize`.
    let mut out_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    let mut in_offsets: Vec<u32> = Vec::with_capacity(n + 1);
    {
        let mut acc_out = 0u32;
        let mut acc_in = 0u32;
        out_offsets.push(0);
        in_offsets.push(0);
        for v in 0..n {
            acc_out = acc_out
                .checked_add(out_cnt[v].load(Ordering::Relaxed))
                .ok_or(BuildError::OffsetOverflow)?;
            acc_in = acc_in
                .checked_add(in_cnt[v].load(Ordering::Relaxed))
                .ok_or(BuildError::OffsetOverflow)?;
            out_offsets.push(acc_out);
            in_offsets.push(acc_in);
        }
    }
    let m = out_offsets[n] as usize;
    debug_assert_eq!(m as u64, kept);
    debug_assert_eq!(in_offsets[n] as usize, m);
    let mut out_targets = vec![0 as VertexId; m];
    let mut in_sources = vec![0 as VertexId; m];

    // Reuse the counter planes as scatter cursors.
    for c in &out_cnt {
        c.store(0, Ordering::Relaxed);
    }
    for c in &in_cnt {
        c.store(0, Ordering::Relaxed);
    }

    // ---- Pass 2: scatter. ------------------------------------------------
    {
        let out_slots = SharedSlice(out_targets.as_mut_ptr());
        let in_slots = SharedSlice(in_sources.as_mut_ptr());
        let out_offsets = &out_offsets;
        let in_offsets = &in_offsets;
        let out_cnt = &out_cnt;
        let in_cnt = &in_cnt;
        let next_chunk = AtomicUsize::new(0);
        pool.run(&|_worker| loop {
            let c = next_chunk.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            src.emit(c, &mut |u, v| {
                let (ui, vi) = (u as usize, v as usize);
                assert!(
                    ui < n && vi < n,
                    "ChunkedEdges emitted edge ({u},{v}) in pass 2 absent from pass 1"
                );
                if cfg.drop_self_loops && u == v {
                    return;
                }
                let slot = out_cnt[ui].fetch_add(1, Ordering::Relaxed) as usize;
                let idx = out_offsets[ui] as usize + slot;
                assert!(
                    idx < out_offsets[ui + 1] as usize,
                    "pass 2 emitted more out-edges of {u} than pass 1"
                );
                // SAFETY: idx is inside vertex u's run (checked above) and
                // uniquely claimed by the fetch_add.
                unsafe { out_slots.write(idx, v) };
                let slot = in_cnt[vi].fetch_add(1, Ordering::Relaxed) as usize;
                let idx = in_offsets[vi] as usize + slot;
                assert!(
                    idx < in_offsets[vi + 1] as usize,
                    "pass 2 emitted more in-edges of {v} than pass 1"
                );
                // SAFETY: as above, for the in-direction.
                unsafe { in_slots.write(idx, u) };
            });
        });
    }

    // ---- Pass 3: canonicalize runs (parallel per-vertex-block sort). -----
    // The scatter order within a run depends on thread interleaving; the
    // sort erases it. This matches `Graph::from_edges`, which sorts every
    // run, so the streamed result is bit-identical to the staged one.
    {
        const BLOCK: usize = 4096;
        let num_blocks = n.div_ceil(BLOCK);
        let out_ptr = SharedSlice(out_targets.as_mut_ptr());
        let in_ptr = SharedSlice(in_sources.as_mut_ptr());
        let out_offsets = &out_offsets;
        let in_offsets = &in_offsets;
        let next_block = AtomicUsize::new(0);
        pool.run(&|_worker| loop {
            let b = next_block.fetch_add(1, Ordering::Relaxed);
            if b >= num_blocks {
                break;
            }
            let lo = b * BLOCK;
            let hi = (lo + BLOCK).min(n);
            for v in lo..hi {
                // SAFETY: runs [offsets[v], offsets[v+1]) are disjoint per
                // vertex, and each vertex belongs to exactly one block.
                unsafe {
                    let run = std::slice::from_raw_parts_mut(
                        out_ptr.base().add(out_offsets[v] as usize),
                        (out_offsets[v + 1] - out_offsets[v]) as usize,
                    );
                    run.sort_unstable();
                    let run = std::slice::from_raw_parts_mut(
                        in_ptr.base().add(in_offsets[v] as usize),
                        (in_offsets[v + 1] - in_offsets[v]) as usize,
                    );
                    run.sort_unstable();
                }
            }
        });
        let _ = (out_ptr, in_ptr);
    }

    // ---- Optional dedup compaction (sequential, in place). ---------------
    // Duplicates of (u, v) sit adjacent in u's sorted out-run *and* in v's
    // sorted in-run, so per-run dedup removes exactly the same edge set in
    // both directions — equivalent to GraphBuilder's global sort+dedup.
    let mut duplicates_removed = 0u64;
    if cfg.dedup {
        let before = out_targets.len();
        compact_runs(&mut out_offsets, &mut out_targets);
        compact_runs(&mut in_offsets, &mut in_sources);
        debug_assert_eq!(out_targets.len(), in_sources.len());
        duplicates_removed = (before - out_targets.len()) as u64;
        // Return the compaction slack to the allocator — the dead
        // capacity is 8 bytes per removed duplicate across the two flat
        // arrays, and `heap_bytes` (deliberately) charges capacity. At
        // paper scale these are multi-MB blocks, which glibc shrinks in
        // place via mremap rather than copying.
        out_targets.shrink_to_fit();
        in_sources.shrink_to_fit();
    }

    let transient_bytes = 2 * n * std::mem::size_of::<AtomicU32>();
    drop(out_cnt);
    drop(in_cnt);

    let graph = Graph::from_csr_parts(
        n,
        Offsets::U32(out_offsets),
        out_targets,
        Offsets::U32(in_offsets),
        in_sources,
    );
    let csr_bytes = graph.heap_bytes();
    let report = IngestReport {
        raw_edges,
        edges: graph.num_edges(),
        self_loops_dropped: loops_dropped,
        duplicates_removed,
        csr_bytes,
        transient_bytes,
    };
    Ok((graph, report))
}

/// Removes adjacent duplicates from every sorted run, shifting the flat
/// array left and rewriting offsets in place. The flat vector is truncated
/// but not shrunk — reallocating to reclaim the slack would transiently
/// hold two copies, defeating the footprint goal; the slack equals the
/// duplicate count (4 bytes each), negligible for generator streams.
/// Offsets are narrow `u32` — both callers (streamed full-graph ingest and
/// shard-resident ingest) cap kept edges at `u32` range. Shared with
/// [`crate::shard`].
pub(crate) fn compact_runs(offsets: &mut [u32], flat: &mut Vec<VertexId>) {
    let n = offsets.len() - 1;
    let mut w = 0usize;
    let mut run_start = offsets[0] as usize;
    for v in 0..n {
        let run_end = offsets[v + 1] as usize;
        let mut prev: Option<VertexId> = None;
        for i in run_start..run_end {
            let t = flat[i];
            if prev != Some(t) {
                flat[w] = t;
                w += 1;
                prev = Some(t);
            }
        }
        run_start = run_end;
        offsets[v + 1] = w as u32;
    }
    flat.truncate(w);
}

/// Adapter: a re-creatable sequential iterator as a one-chunk stream. The
/// factory is called once per pass.
struct IterSource<F> {
    n: usize,
    make_iter: F,
}

impl<I, F> ChunkedEdges for IterSource<F>
where
    I: Iterator<Item = (VertexId, VertexId)>,
    F: Fn() -> I + Sync,
{
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_chunks(&self) -> usize {
        1
    }

    fn emit(&self, _chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
        for (u, v) in (self.make_iter)() {
            sink(u, v);
        }
    }
}

/// Builds a [`Graph`] from a sequential edge stream that can be replayed
/// from scratch (`make_iter` is called once per pass). For inherently
/// sequential sources — preferential attachment, arrival-ordered event
/// logs — where chunk-parallel emission is impossible but the staging copy
/// is still worth eliminating.
pub fn build_streamed<I, F>(
    n: usize,
    make_iter: F,
    cfg: StreamConfig,
) -> Result<(Graph, IngestReport), BuildError>
where
    I: Iterator<Item = (VertexId, VertexId)>,
    F: Fn() -> I + Sync,
{
    build_chunked(&IterSource { n, make_iter }, cfg, &ScopedPool(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// A fixed edge list exposed as a chunked stream.
    struct VecSource {
        n: usize,
        chunk: usize,
        edges: Vec<(VertexId, VertexId)>,
    }

    impl ChunkedEdges for VecSource {
        fn num_vertices(&self) -> usize {
            self.n
        }
        fn num_chunks(&self) -> usize {
            self.edges.len().div_ceil(self.chunk).max(1)
        }
        fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
            let lo = chunk * self.chunk;
            let hi = (lo + self.chunk).min(self.edges.len());
            for &(u, v) in &self.edges[lo..hi] {
                sink(u, v);
            }
        }
    }

    fn messy_edges() -> Vec<(VertexId, VertexId)> {
        // Duplicates, self-loops, out-of-order, hub vertex 0.
        let mut e = vec![(3, 3), (1, 0), (0, 2), (0, 2), (2, 1), (0, 1), (4, 0), (0, 3)];
        for i in 0..50 {
            e.push((0, (i % 5) as VertexId));
            e.push(((i % 5) as VertexId, 0));
        }
        e
    }

    #[test]
    fn verbatim_matches_from_edges() {
        let edges = messy_edges();
        let staged = Graph::from_edges(5, &edges);
        for threads in [1, 2, 4] {
            for chunk in [1, 3, 1000] {
                let src = VecSource { n: 5, chunk, edges: edges.clone() };
                let (g, rep) =
                    build_chunked(&src, StreamConfig::verbatim(), &ScopedPool(threads)).unwrap();
                assert_eq!(g, staged, "threads={threads} chunk={chunk}");
                assert_eq!(rep.raw_edges as usize, edges.len());
                assert_eq!(rep.edges, edges.len());
            }
        }
    }

    #[test]
    fn cleaned_matches_graph_builder() {
        let edges = messy_edges();
        let mut b = GraphBuilder::new(5);
        b.add_edges(edges.iter().copied());
        let staged = b.build();
        for threads in [1, 3] {
            let src = VecSource { n: 5, chunk: 4, edges: edges.clone() };
            let (g, rep) =
                build_chunked(&src, StreamConfig::cleaned(), &ScopedPool(threads)).unwrap();
            assert_eq!(g, staged, "threads={threads}");
            // (3,3) plus the 20 (0,0) pairs from the hub loop.
            assert_eq!(rep.self_loops_dropped, 21);
            assert!(rep.duplicates_removed > 0);
            assert_eq!(rep.edges, staged.num_edges());
        }
    }

    #[test]
    fn empty_stream() {
        let src = VecSource { n: 3, chunk: 8, edges: vec![] };
        let (g, rep) = build_chunked(&src, StreamConfig::cleaned(), &ScopedPool(2)).unwrap();
        assert_eq!(g, Graph::empty(3));
        assert_eq!(rep.raw_edges, 0);
        // Offset arrays still exist, so the ratio is finite and >= 1.
        assert!(rep.build_ratio() >= 1.0);
    }

    #[test]
    fn out_of_range_is_typed_error() {
        let src = VecSource { n: 3, chunk: 8, edges: vec![(0, 1), (5, 1)] };
        let err = build_chunked(&src, StreamConfig::verbatim(), &ScopedPool(1)).unwrap_err();
        assert_eq!(err, BuildError::EdgeOutOfRange { u: 5, v: 1, n: 3 });
    }

    #[test]
    fn too_many_vertices_is_typed_error() {
        let src = VecSource { n: u32::MAX as usize, chunk: 8, edges: vec![] };
        let err = build_chunked(&src, StreamConfig::verbatim(), &ScopedPool(1)).unwrap_err();
        assert!(matches!(err, BuildError::TooManyVertices { .. }));
    }

    #[test]
    fn sequential_stream_matches_staged() {
        let edges = messy_edges();
        let staged = Graph::from_edges(5, &edges);
        let (g, _) = build_streamed(5, || edges.iter().copied(), StreamConfig::verbatim()).unwrap();
        assert_eq!(g, staged);
    }

    #[test]
    fn report_accounts_transients() {
        let src = VecSource { n: 5, chunk: 4, edges: messy_edges() };
        let (g, rep) = build_chunked(&src, StreamConfig::verbatim(), &ScopedPool(2)).unwrap();
        assert_eq!(rep.csr_bytes, g.heap_bytes());
        assert_eq!(rep.transient_bytes, 2 * 5 * 4);
        assert!(rep.build_ratio() > 1.0);
    }

    #[test]
    fn display_messages() {
        assert!(BuildError::OffsetOverflow.to_string().contains("overflow"));
        assert!(BuildError::EdgeOutOfRange { u: 1, v: 2, n: 1 }.to_string().contains("(1,2)"));
    }
}
