//! Dynamic graphs: timestamped edge events, time windows, and arrival-rate
//! models.
//!
//! The paper treats a dynamic graph as a base graph plus batches of inserted
//! vertices/edges arriving in fixed-length time windows (§III-B, Exp#5), and
//! motivates adaptivity with the Stack Overflow temporal network whose
//! hourly update rate varies 5–10× over a day (Fig 4). This module provides
//! both: window-batched [`EdgeStream`]s and a diurnal arrival-rate
//! synthesizer reproducing the Fig 4 shape.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::generators::preferential::preferential_attachment_edges;
use crate::GraphBuilder;
use crate::VertexId;

/// Kind of a graph mutation event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    Insert,
    Delete,
}

/// A timestamped edge mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeEvent {
    pub src: VertexId,
    pub dst: VertexId,
    /// Milliseconds since stream start.
    pub timestamp_ms: u64,
    pub kind: EventKind,
}

/// An ordered stream of edge events.
#[derive(Clone, Debug, Default)]
pub struct EdgeStream {
    events: Vec<EdgeEvent>,
}

impl EdgeStream {
    /// Creates a stream, sorting events by timestamp (stable, so same-time
    /// events keep their submission order).
    pub fn new(mut events: Vec<EdgeEvent>) -> Self {
        events.sort_by_key(|e| e.timestamp_ms);
        EdgeStream { events }
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn events(&self) -> &[EdgeEvent] {
        &self.events
    }

    /// Splits the stream into consecutive windows of `window_ms`
    /// milliseconds, covering `[0, last_timestamp]`. Empty windows are
    /// included — a period with no updates is exactly when an adaptive
    /// partitioner should spend more effort.
    ///
    /// Returns a lazy [`Windows`] iterator (no up-front `Vec` of slices).
    ///
    /// # Panics
    ///
    /// Panics on `window_ms == 0` — a zero-width window never advances.
    /// Use [`EdgeStream::try_windows`] to handle that case as an error.
    pub fn windows(&self, window_ms: u64) -> Windows<'_> {
        self.try_windows(window_ms).expect("window_ms must be positive")
    }

    /// Fallible form of [`EdgeStream::windows`]: rejects zero-width
    /// windows with a typed error instead of panicking.
    pub fn try_windows(&self, window_ms: u64) -> Result<Windows<'_>, WindowSplitError> {
        if window_ms == 0 {
            return Err(WindowSplitError::ZeroWidthWindow);
        }
        let remaining = match self.events.last() {
            Some(last) => (last.timestamp_ms / window_ms + 1) as usize,
            None => 0,
        };
        Ok(Windows { events: &self.events, window_ms, next_end_ts: window_ms, remaining })
    }
}

/// Typed failure of [`EdgeStream::try_windows`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowSplitError {
    /// `window_ms == 0`: a zero-width window would never advance.
    ZeroWidthWindow,
}

impl std::fmt::Display for WindowSplitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowSplitError::ZeroWidthWindow => write!(f, "window_ms must be positive"),
        }
    }
}

impl std::error::Error for WindowSplitError {}

/// Lazy iterator over consecutive fixed-width windows of an
/// [`EdgeStream`]; each item borrows the stream's event slice. Empty
/// windows between events are yielded too (see [`EdgeStream::windows`]).
#[derive(Clone, Debug)]
pub struct Windows<'a> {
    /// Events not yet consumed by earlier windows.
    events: &'a [EdgeEvent],
    window_ms: u64,
    /// Exclusive timestamp bound of the next window to yield.
    next_end_ts: u64,
    /// Windows left to yield (fixed up front: `last_ts / window_ms + 1`).
    remaining: usize,
}

impl<'a> Iterator for Windows<'a> {
    type Item = &'a [EdgeEvent];

    fn next(&mut self) -> Option<&'a [EdgeEvent]> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let end = self.events.partition_point(|e| e.timestamp_ms < self.next_end_ts);
        let (window, rest) = self.events.split_at(end);
        self.events = rest;
        self.next_end_ts = self.next_end_ts.saturating_add(self.window_ms);
        Some(window)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for Windows<'_> {}

/// What a batch of events did to a builder: which vertices arrived and
/// which vertices' adjacency was touched. Both lists are sorted and
/// duplicate-free, so callers can use them directly as seed sets (the old
/// `Vec<VertexId>` return forced every caller to re-scan the events).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedEvents {
    /// Ids of newly introduced vertices, ascending.
    pub new_vertices: Vec<VertexId>,
    /// Sorted deduped endpoints of the applied (non-self-loop) insert
    /// events — the neighborhoods a delta-aware partitioner should focus
    /// on. Ignored delete events do not contribute.
    pub touched: Vec<VertexId>,
}

/// Applies a batch of *insert* events to a builder, growing the vertex set
/// as new ids appear. Deletions are ignored here (the builder is an insert
/// log); use [`materialize_with_deletes`] or
/// [`crate::GraphDelta::from_events`] for streams that contain them.
pub fn apply_events(builder: &mut GraphBuilder, events: &[EdgeEvent]) -> AppliedEvents {
    let mut applied = AppliedEvents::default();
    let mut known = builder.num_vertices() as VertexId;
    for event in events {
        let needed = event.src.max(event.dst) + 1;
        if needed > known {
            applied.new_vertices.extend(known..needed);
            builder.grow_vertices(needed as usize);
            known = needed;
        }
        if event.kind == EventKind::Insert {
            builder.add_edge(event.src, event.dst);
            if event.src != event.dst {
                // Self-loops are dropped by the builder's cleaning pass,
                // so they touch nobody's adjacency.
                applied.touched.push(event.src);
                applied.touched.push(event.dst);
            }
        }
    }
    applied.touched.sort_unstable();
    applied.touched.dedup();
    applied
}

/// Materializes the graph state after replaying *all* events (inserts and
/// deletes, in timestamp order) on top of an initial edge set. An edge
/// exists in the result iff its last event was an insert (or it was in the
/// initial set and never deleted). The paper's Exp#5 notes that deletion
/// streams show the same adaptivity behaviour as insertions — this is the
/// replay primitive those experiments need. Internally this is now the
/// delta pipeline: [`crate::GraphDelta::from_events`] plus the CSR overlay
/// [`Graph::apply_delta`], so replay cost past the initial build is
/// proportional to the event batch, not the graph.
pub fn materialize_with_deletes(
    num_vertices: usize,
    initial_edges: impl Iterator<Item = (VertexId, VertexId)>,
    events: &[EdgeEvent],
) -> Graph {
    let mut b = GraphBuilder::new(num_vertices);
    b.add_edges(initial_edges);
    let initial = b.build();
    let delta = crate::GraphDelta::from_events(&initial, events);
    initial.apply_delta(&delta)
}

/// The paper's Exp#5 workload: load `initial_fraction` of a graph's edges
/// as the base graph, and return the remaining edges as an insert stream
/// spread uniformly over `duration_ms`.
///
/// Edge order follows the source-vertex join order of the preferential
/// model when `arrival_order` is true, else the generator's edge order.
pub fn split_for_dynamic(
    edges: &[(VertexId, VertexId)],
    num_vertices: usize,
    initial_fraction: f64,
    duration_ms: u64,
) -> (Graph, EdgeStream) {
    assert!((0.0..=1.0).contains(&initial_fraction));
    let split = (edges.len() as f64 * initial_fraction) as usize;
    let mut builder = GraphBuilder::new(num_vertices).with_edge_capacity(split);
    builder.add_edges(edges[..split].iter().copied());
    let initial = builder.build();
    let rest = &edges[split..];
    let events = rest
        .iter()
        .enumerate()
        .map(|(i, &(src, dst))| EdgeEvent {
            src,
            dst,
            timestamp_ms: if rest.is_empty() {
                0
            } else {
                (i as u64 * duration_ms) / rest.len().max(1) as u64
            },
            kind: EventKind::Insert,
        })
        .collect();
    (initial, EdgeStream::new(events))
}

/// Hourly arrival counts for a synthetic "one day of Stack Overflow"
/// stream (Fig 4): a sinusoidal diurnal base rate plus random bursts, tuned
/// so the max/min hourly ratio lands in the paper's observed 5–10× band.
#[derive(Clone, Debug)]
pub struct DiurnalModel {
    /// Mean events per hour.
    pub mean_rate: f64,
    /// Peak-to-trough ratio of the sinusoidal component.
    pub diurnal_ratio: f64,
    /// Probability that any given hour is a burst hour.
    pub burst_probability: f64,
    /// Burst multiplier applied to the base rate.
    pub burst_factor: f64,
    pub seed: u64,
}

impl Default for DiurnalModel {
    fn default() -> Self {
        DiurnalModel {
            mean_rate: 1000.0,
            diurnal_ratio: 4.0,
            burst_probability: 0.08,
            burst_factor: 2.5,
            seed: 42,
        }
    }
}

impl DiurnalModel {
    /// Events per hour for each of the 24 hours.
    pub fn hourly_rates(&self) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0xc2b2_ae3d_27d4_eb4f);
        let r = self.diurnal_ratio;
        (0..24)
            .map(|h| {
                let phase = (h as f64 / 24.0) * std::f64::consts::TAU;
                // Oscillates in [2/(r+1), 2r/(r+1)] * mean, giving a
                // peak/trough ratio of exactly `r` before bursts.
                let base = self.mean_rate
                    * (2.0 / (r + 1.0))
                    * (1.0 + (r - 1.0) / 2.0 * (1.0 - phase.cos()));
                let burst =
                    if rng.gen::<f64>() < self.burst_probability { self.burst_factor } else { 1.0 };
                (base * burst) as u64
            })
            .collect()
    }

    /// Generates a full one-day insert stream over a growing
    /// preferential-attachment graph, returning `(initial_graph, stream)`.
    /// `initial_vertices` seeds the graph; each event may reference a new
    /// vertex (vertex arrivals track edge arrivals as in Fig 4).
    pub fn generate_day_stream(&self, initial_vertices: usize) -> (Graph, EdgeStream) {
        let rates = self.hourly_rates();
        let total_events: u64 = rates.iter().sum();
        // Grow a PA graph large enough to supply the whole day's edges.
        let edges_per_vertex = 4;
        let needed_vertices = initial_vertices + (total_events as usize / edges_per_vertex) + 2;
        let all_edges = preferential_attachment_edges(needed_vertices, edges_per_vertex, self.seed);
        // Edges sourced from the first `initial_vertices` form the base graph.
        let split = all_edges.partition_point(|&(u, _)| (u as usize) < initial_vertices);
        let mut builder = GraphBuilder::new(initial_vertices);
        builder.add_edges(all_edges[..split].iter().copied());
        let initial = builder.build();

        let mut events = Vec::new();
        let mut cursor = split;
        for (hour, &rate) in rates.iter().enumerate() {
            let hour_start = hour as u64 * 3_600_000;
            for k in 0..rate {
                if cursor >= all_edges.len() {
                    break;
                }
                let (src, dst) = all_edges[cursor];
                cursor += 1;
                events.push(EdgeEvent {
                    src,
                    dst,
                    timestamp_ms: hour_start + (k * 3_600_000) / rate.max(1),
                    kind: EventKind::Insert,
                });
            }
        }
        (initial, EdgeStream::new(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(src: u32, dst: u32, ts: u64) -> EdgeEvent {
        EdgeEvent { src, dst, timestamp_ms: ts, kind: EventKind::Insert }
    }

    #[test]
    fn stream_sorts_by_time() {
        let s = EdgeStream::new(vec![ev(0, 1, 50), ev(1, 2, 10)]);
        assert_eq!(s.events()[0].timestamp_ms, 10);
    }

    #[test]
    fn windows_cover_all_events() {
        let s = EdgeStream::new(vec![ev(0, 1, 0), ev(1, 2, 999), ev(2, 3, 1000), ev(3, 4, 2500)]);
        assert_eq!(s.windows(1000).len(), 3);
        let w: Vec<_> = s.windows(1000).collect();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].len(), 2);
        assert_eq!(w[1].len(), 1);
        assert_eq!(w[2].len(), 1);
        assert_eq!(w.iter().map(|x| x.len()).sum::<usize>(), s.len());
    }

    #[test]
    fn windows_include_empty_periods() {
        let s = EdgeStream::new(vec![ev(0, 1, 0), ev(1, 2, 3500)]);
        let w: Vec<_> = s.windows(1000).collect();
        assert_eq!(w.len(), 4);
        assert!(w[1].is_empty() && w[2].is_empty());
    }

    #[test]
    fn windows_are_lazy_and_sized() {
        let s = EdgeStream::new(vec![ev(0, 1, 0), ev(1, 2, 2500)]);
        let mut w = s.windows(1000);
        assert_eq!(w.size_hint(), (3, Some(3)));
        assert_eq!(w.next().map(<[EdgeEvent]>::len), Some(1));
        assert_eq!(w.len(), 2, "remaining windows shrink as the iterator advances");
    }

    #[test]
    fn zero_width_window_is_a_typed_error() {
        let s = EdgeStream::new(vec![ev(0, 1, 0)]);
        assert_eq!(s.try_windows(0).unwrap_err(), WindowSplitError::ZeroWidthWindow);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_window_panics_on_infallible_path() {
        let s = EdgeStream::new(vec![ev(0, 1, 0)]);
        let _ = s.windows(0);
    }

    #[test]
    fn empty_stream_has_no_windows() {
        let s = EdgeStream::new(Vec::new());
        assert_eq!(s.windows(1000).count(), 0);
    }

    #[test]
    fn apply_events_grows_vertices() {
        let mut b = GraphBuilder::new(2);
        let applied = apply_events(&mut b, &[ev(0, 1, 0), ev(4, 1, 1)]);
        assert_eq!(applied.new_vertices, vec![2, 3, 4]);
        assert_eq!(applied.touched, vec![0, 1, 4]);
        assert_eq!(b.build().num_vertices(), 5);
    }

    #[test]
    fn apply_events_touched_is_sorted_deduped_and_clean() {
        // One stream mixing duplicate edges, a self-loop, and a
        // delete-of-missing-edge: touched must come out sorted, deduped,
        // and free of self-loop/deletion noise.
        let mut b = GraphBuilder::new(3);
        let events = vec![
            ev(2, 0, 0),
            ev(2, 0, 1), // duplicate edge
            EdgeEvent { src: 1, dst: 1, timestamp_ms: 2, kind: EventKind::Insert }, // self-loop
            EdgeEvent { src: 0, dst: 2, timestamp_ms: 3, kind: EventKind::Delete }, // missing
            ev(4, 2, 4),
        ];
        let applied = apply_events(&mut b, &events);
        assert_eq!(applied.new_vertices, vec![3, 4]);
        assert_eq!(applied.touched, vec![0, 2, 4]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2, "duplicate and self-loop cleaned, delete ignored");
        assert!(g.has_edge(2, 0) && g.has_edge(4, 2));
    }

    #[test]
    fn materialize_replays_inserts_and_deletes() {
        let initial = vec![(0u32, 1u32), (1, 2)];
        let events = vec![
            EdgeEvent { src: 2, dst: 3, timestamp_ms: 1, kind: EventKind::Insert },
            EdgeEvent { src: 0, dst: 1, timestamp_ms: 2, kind: EventKind::Delete },
            EdgeEvent { src: 0, dst: 1, timestamp_ms: 3, kind: EventKind::Insert },
            EdgeEvent { src: 1, dst: 2, timestamp_ms: 4, kind: EventKind::Delete },
        ];
        let g = materialize_with_deletes(3, initial.into_iter(), &events);
        assert_eq!(g.num_vertices(), 4);
        assert!(g.has_edge(0, 1), "re-inserted edge must exist");
        assert!(!g.has_edge(1, 2), "deleted edge must be gone");
        assert!(g.has_edge(2, 3));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn materialize_delete_of_missing_edge_is_noop() {
        let events = vec![EdgeEvent { src: 0, dst: 1, timestamp_ms: 0, kind: EventKind::Delete }];
        let g = materialize_with_deletes(2, std::iter::empty(), &events);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn split_for_dynamic_fractions() {
        let edges: Vec<_> = (0..100u32).map(|i| (i, (i + 1) % 100)).collect();
        let (initial, stream) = split_for_dynamic(&edges, 100, 0.7, 60_000);
        assert_eq!(initial.num_edges(), 70);
        assert_eq!(stream.len(), 30);
        assert!(stream.events().last().unwrap().timestamp_ms < 60_000);
    }

    #[test]
    fn diurnal_ratio_in_paper_band() {
        let rates = DiurnalModel::default().hourly_rates();
        let max = *rates.iter().max().unwrap() as f64;
        let min = *rates.iter().min().unwrap() as f64;
        let ratio = max / min;
        assert!((3.0..=12.0).contains(&ratio), "diurnal ratio {ratio}");
    }

    #[test]
    fn day_stream_produces_events_and_new_vertices() {
        let model = DiurnalModel { mean_rate: 200.0, ..Default::default() };
        let (initial, stream) = model.generate_day_stream(500);
        assert!(initial.num_vertices() == 500);
        assert!(stream.len() > 1000);
        let max_id = stream.events().iter().map(|e| e.src.max(e.dst)).max().unwrap();
        assert!(max_id as usize >= 500, "stream must introduce new vertices");
        // All within one day.
        assert!(stream.events().last().unwrap().timestamp_ms < 24 * 3_600_000);
    }

    #[test]
    fn day_stream_deterministic() {
        let m = DiurnalModel { mean_rate: 100.0, ..Default::default() };
        let (g1, s1) = m.generate_day_stream(200);
        let (g2, s2) = m.generate_day_stream(200);
        assert_eq!(g1, g2);
        assert_eq!(s1.events(), s2.events());
    }
}
