//! Structural graph transforms: transpose, symmetrization, induced
//! subgraphs, and weakly-connected-component extraction — the usual
//! preprocessing steps before partitioning real datasets.

use crate::csr::Graph;
use crate::GraphBuilder;
use crate::VertexId;

/// The transpose: every edge `(u, v)` becomes `(v, u)`.
pub fn transpose(graph: &Graph) -> Graph {
    let mut b = GraphBuilder::new(graph.num_vertices()).with_edge_capacity(graph.num_edges());
    b.add_edges(graph.edges().map(|(u, v)| (v, u)));
    b.build()
}

/// The symmetric closure: for every edge `(u, v)`, both directions exist.
/// PageRank-style analytics on crawl data often symmetrize first.
pub fn symmetrize(graph: &Graph) -> Graph {
    let mut b = GraphBuilder::new(graph.num_vertices()).with_edge_capacity(2 * graph.num_edges());
    for (u, v) in graph.edges() {
        b.add_edge(u, v);
        b.add_edge(v, u);
    }
    b.build()
}

/// The subgraph induced by `keep` (a boolean mask): kept vertices are
/// renumbered densely in id order; returns the subgraph and the mapping
/// `old id -> new id` (`None` for dropped vertices).
pub fn induced_subgraph(graph: &Graph, keep: &[bool]) -> (Graph, Vec<Option<VertexId>>) {
    assert_eq!(keep.len(), graph.num_vertices());
    let mut mapping: Vec<Option<VertexId>> = vec![None; keep.len()];
    let mut next = 0 as VertexId;
    for (v, &k) in keep.iter().enumerate() {
        if k {
            mapping[v] = Some(next);
            next += 1;
        }
    }
    let mut b = GraphBuilder::new(next as usize);
    for (u, v) in graph.edges() {
        if let (Some(nu), Some(nv)) = (mapping[u as usize], mapping[v as usize]) {
            b.add_edge(nu, nv);
        }
    }
    (b.build(), mapping)
}

/// Weakly-connected-component label of every vertex (labels are the
/// smallest vertex id in the component).
pub fn weakly_connected_components(graph: &Graph) -> Vec<VertexId> {
    let n = graph.num_vertices();
    let mut label: Vec<VertexId> = vec![VertexId::MAX; n];
    let mut stack = Vec::new();
    for root in 0..n as VertexId {
        if label[root as usize] != VertexId::MAX {
            continue;
        }
        label[root as usize] = root;
        stack.push(root);
        while let Some(v) = stack.pop() {
            for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if label[u as usize] == VertexId::MAX {
                    label[u as usize] = root;
                    stack.push(u);
                }
            }
        }
    }
    label
}

/// Extracts the largest weakly connected component as a dense subgraph,
/// returning it with the `old -> new` id mapping.
pub fn largest_wcc(graph: &Graph) -> (Graph, Vec<Option<VertexId>>) {
    let labels = weakly_connected_components(graph);
    let mut counts: std::collections::HashMap<VertexId, usize> = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let Some((&biggest, _)) = counts.iter().max_by_key(|&(&l, &c)| (c, std::cmp::Reverse(l)))
    else {
        return (Graph::empty(0), Vec::new());
    };
    let keep: Vec<bool> = labels.iter().map(|&l| l == biggest).collect();
    induced_subgraph(graph, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // Two components: {0,1,2} (path) and {3,4} (edge).
        Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)])
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = sample();
        let t = transpose(&g);
        assert!(t.has_edge(1, 0) && t.has_edge(2, 1) && t.has_edge(4, 3));
        assert_eq!(t.num_edges(), g.num_edges());
        // Double transpose is identity.
        assert_eq!(transpose(&t), g);
    }

    #[test]
    fn symmetrize_adds_both_directions() {
        let s = symmetrize(&sample());
        assert!(s.has_edge(0, 1) && s.has_edge(1, 0));
        assert_eq!(s.num_edges(), 6);
        // Symmetrizing twice changes nothing.
        assert_eq!(symmetrize(&s), s);
    }

    #[test]
    fn wcc_labels() {
        let labels = weakly_connected_components(&sample());
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn wcc_ignores_direction() {
        // 0 -> 1 <- 2: weakly connected despite no directed path 0->2.
        let g = Graph::from_edges(3, &[(0, 1), (2, 1)]);
        let labels = weakly_connected_components(&g);
        assert!(labels.iter().all(|&l| l == labels[0]));
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = sample();
        let keep = vec![true, true, false, true, true];
        let (sub, mapping) = induced_subgraph(&g, &keep);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(mapping[2], None);
        assert_eq!(mapping[3], Some(2));
        // Edge (0,1) survives; (1,2) dropped; (3,4) -> (2,3).
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(2, 3));
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn largest_wcc_extraction() {
        let (sub, mapping) = largest_wcc(&sample());
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert!(mapping[3].is_none() && mapping[4].is_none());
    }

    #[test]
    fn largest_wcc_of_empty_graph() {
        let (sub, _) = largest_wcc(&Graph::empty(0));
        assert_eq!(sub.num_vertices(), 0);
    }
}
