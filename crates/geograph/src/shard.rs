//! Vertex-range shards over a CSR snapshot: the graph-substrate half of
//! the sharded trainer.
//!
//! A shard owns a **contiguous vertex range** of the graph plus a
//! read-only **ghost fringe**: the cross-shard in/out-neighbors of its
//! owned vertices. Contiguous ranges keep ownership tests O(1) arithmetic
//! and make the owned adjacency a pure slice of the global CSR; the fringe
//! is exactly the set of foreign vertices a shard-local hybrid-cut move
//! evaluation reads (the staged neighbors of `collect_deltas`), so a shard
//! holding bit-identical replicas of its owned ∪ fringe rows scores its
//! agents bit-identically to a global evaluator.
//!
//! Local ids are assigned in **ascending global-id order** over
//! owned ∪ fringe. The mapping is therefore order-isomorphic: sorting
//! staged neighbors by local id yields the same permutation as sorting by
//! global id, which is what keeps the kernel's sealed-merge and fp
//! accumulation order — and hence its results — bit-identical to the
//! single-address-space path.
//!
//! [`route_delta`] splits a [`GraphDelta`] by owning shard so a dynamic
//! window refreshes only the shards (and only the fringes) the delta
//! actually touches.

use crate::csr::Graph;
use crate::delta::GraphDelta;
use crate::VertexId;

/// A contiguous partition of the vertex id space into shards.
///
/// Ranges are half-open `[start, end)`, cover `0..n` exactly, and may be
/// empty (shard counts exceeding the vertex count are legal; the excess
/// shards simply own nothing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    ranges: Vec<(VertexId, VertexId)>,
}

impl ShardSpec {
    /// Splits `n` vertices into `num_shards` contiguous ranges of
    /// near-equal size (the first `n % num_shards` shards get one extra
    /// vertex). `num_shards` must be at least 1.
    pub fn contiguous(n: usize, num_shards: usize) -> ShardSpec {
        assert!(num_shards >= 1, "at least one shard required");
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut ranges = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        for s in 0..num_shards {
            let len = base + usize::from(s < extra);
            ranges.push((start as VertexId, (start + len) as VertexId));
            start += len;
        }
        debug_assert_eq!(start, n);
        ShardSpec { ranges }
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.ranges.last().map_or(0, |&(_, e)| e as usize)
    }

    /// The half-open owned range of shard `s`.
    pub fn range(&self, s: usize) -> (VertexId, VertexId) {
        self.ranges[s]
    }

    /// The shard owning vertex `v`.
    pub fn owner_of(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.num_vertices());
        // Ranges are sorted and contiguous: the owner is the last shard
        // starting at or before `v` (empty ranges share a start with their
        // successor and own nothing, so partition_point lands past them).
        self.ranges.partition_point(|&(start, _)| start <= v).saturating_sub(1)
    }

    /// Grows the id space to `new_n` vertices by extending the **last**
    /// shard's range. Dynamic windows only append vertices; absorbing them
    /// into the tail shard keeps every existing boundary — and therefore
    /// every unaffected shard's view — stable across the window.
    pub fn grow(&mut self, new_n: usize) {
        let old_n = self.num_vertices();
        assert!(new_n >= old_n, "the vertex id space only grows");
        if let Some(last) = self.ranges.last_mut() {
            last.1 = new_n as VertexId;
        }
    }
}

/// One shard's materialized view of the graph: owned adjacency re-indexed
/// to local ids, plus the sorted ghost fringe.
///
/// The view copies its slices out of the global CSR, so it stays valid
/// after the snapshot that built it is dropped — dynamic drivers carry
/// unaffected views across windows verbatim.
#[derive(Clone, Debug)]
pub struct ShardView {
    shard: usize,
    start: VertexId,
    end: VertexId,
    /// Ghost fringe: every in/out-neighbor of an owned vertex outside
    /// `[start, end)`, ascending, deduplicated.
    ghosts: Vec<VertexId>,
    /// All local vertices (owned ∪ ghosts) in ascending global-id order;
    /// local id = index into this table.
    locals: Vec<VertexId>,
    /// CSR over the owned vertices only, targets/sources as local ids.
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
}

impl ShardView {
    /// Builds shard `shard`'s view of `graph` under `spec`: slices the
    /// owned rows out of the CSR and extracts the ghost fringe.
    pub fn build(graph: &Graph, spec: &ShardSpec, shard: usize) -> ShardView {
        let (start, end) = spec.range(shard);
        debug_assert!(end as usize <= graph.num_vertices());
        let owned = (end - start) as usize;

        let mut ghosts: Vec<VertexId> = Vec::new();
        for v in start..end {
            for &u in graph.in_neighbors(v) {
                if u < start || u >= end {
                    ghosts.push(u);
                }
            }
            for &w in graph.out_neighbors(v) {
                if w < start || w >= end {
                    ghosts.push(w);
                }
            }
        }
        ghosts.sort_unstable();
        ghosts.dedup();

        // Ascending merge of ghosts-below, owned range, ghosts-above.
        let below = ghosts.partition_point(|&g| g < start);
        let mut locals = Vec::with_capacity(owned + ghosts.len());
        locals.extend_from_slice(&ghosts[..below]);
        locals.extend(start..end);
        locals.extend_from_slice(&ghosts[below..]);
        debug_assert!(locals.windows(2).all(|w| w[0] < w[1]));

        let to_local = |v: VertexId| -> u32 {
            if v >= start && v < end {
                below as u32 + (v - start)
            } else if v < start {
                ghosts[..below].binary_search(&v).expect("fringe covers every neighbor") as u32
            } else {
                (below + owned + ghosts[below..].binary_search(&v).expect("fringe")) as u32
            }
        };

        let mut out_offsets = Vec::with_capacity(owned + 1);
        let mut in_offsets = Vec::with_capacity(owned + 1);
        let mut out_targets = Vec::new();
        let mut in_sources = Vec::new();
        out_offsets.push(0);
        in_offsets.push(0);
        for v in start..end {
            out_targets.extend(graph.out_neighbors(v).iter().map(|&w| to_local(w)));
            in_sources.extend(graph.in_neighbors(v).iter().map(|&u| to_local(u)));
            out_offsets.push(out_targets.len() as u32);
            in_offsets.push(in_sources.len() as u32);
        }

        ShardView {
            shard,
            start,
            end,
            ghosts,
            locals,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// The shard this view belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The half-open owned global-id range.
    pub fn owned_range(&self) -> (VertexId, VertexId) {
        (self.start, self.end)
    }

    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Number of ghost-fringe vertices.
    pub fn num_ghosts(&self) -> usize {
        self.ghosts.len()
    }

    /// Owned plus ghost vertices — the size of the shard's working set.
    pub fn num_locals(&self) -> usize {
        self.locals.len()
    }

    /// The sorted ghost fringe (global ids).
    pub fn ghosts(&self) -> &[VertexId] {
        &self.ghosts
    }

    /// All local vertices in local-id order (ascending global ids).
    pub fn locals(&self) -> &[VertexId] {
        &self.locals
    }

    /// Whether this view owns global vertex `v`.
    pub fn owns(&self, v: VertexId) -> bool {
        v >= self.start && v < self.end
    }

    /// Local id of global vertex `v`, if `v` is owned or in the fringe.
    pub fn to_local(&self, v: VertexId) -> Option<u32> {
        if self.owns(v) {
            let below = self.locals.len() - self.num_owned() - self.ghosts_above();
            return Some(below as u32 + (v - self.start));
        }
        self.locals.binary_search(&v).ok().map(|i| i as u32)
    }

    fn ghosts_above(&self) -> usize {
        self.ghosts.len() - self.ghosts.partition_point(|&g| g < self.start)
    }

    /// Global id of local vertex `l`.
    pub fn to_global(&self, l: u32) -> VertexId {
        self.locals[l as usize]
    }

    /// Whether local id `l` is an owned vertex (vs a ghost).
    pub fn is_owned_local(&self, l: u32) -> bool {
        self.owns(self.locals[l as usize])
    }

    /// Out-neighbors (as local ids) of **owned** global vertex `v`, in the
    /// global CSR's adjacency order.
    pub fn out_neighbors_of(&self, v: VertexId) -> &[u32] {
        debug_assert!(self.owns(v));
        let i = (v - self.start) as usize;
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbors (as local ids) of **owned** global vertex `v`.
    pub fn in_neighbors_of(&self, v: VertexId) -> &[u32] {
        debug_assert!(self.owns(v));
        let i = (v - self.start) as usize;
        &self.in_sources[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }
}

/// The slice of a [`GraphDelta`] relevant to one shard.
#[derive(Clone, Debug, Default)]
pub struct ShardDelta {
    /// Owned vertices whose adjacency the delta changed (sorted).
    pub touched_owned: Vec<VertexId>,
    /// Vertices appended to this shard's range by the window (only the
    /// last shard absorbs growth — see [`ShardSpec::grow`]).
    pub new_vertices: usize,
}

impl ShardDelta {
    /// Whether this shard's view must be refreshed: its owned adjacency
    /// (and therefore possibly its fringe) changed, or its range grew.
    pub fn affects_view(&self) -> bool {
        !self.touched_owned.is_empty() || self.new_vertices > 0
    }
}

/// Routes a [`GraphDelta`] to its owning shards: per shard, the owned
/// touched vertices plus (for the tail shard) the appended vertex count.
///
/// `spec` must already cover the delta's **new** vertex count (grow it
/// with [`ShardSpec::grow`] first). A shard whose slice is empty is
/// unaffected: none of its owned vertices' adjacency changed, so its view
/// — including its ghost fringe, which is a function of that adjacency —
/// is carried verbatim.
pub fn route_delta(delta: &GraphDelta, spec: &ShardSpec) -> Vec<ShardDelta> {
    assert_eq!(
        spec.num_vertices(),
        delta.new_num_vertices(),
        "spec must be grown to the delta's successor snapshot first"
    );
    let mut routed: Vec<ShardDelta> = vec![ShardDelta::default(); spec.num_shards()];
    // `touched()` is sorted; split it across the sorted ranges in one walk.
    let mut shard = 0usize;
    for &v in delta.touched() {
        while spec.range(shard).1 <= v {
            shard += 1;
        }
        routed[shard].touched_owned.push(v);
    }
    let appended = delta.new_num_vertices() - delta.old_num_vertices();
    if appended > 0 {
        let last = spec.num_shards() - 1;
        routed[last].new_vertices = appended;
    }
    routed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{EdgeEvent, EventKind};

    fn ev(src: u32, dst: u32, ts: u64, kind: EventKind) -> EdgeEvent {
        EdgeEvent { src, dst, timestamp_ms: ts, kind }
    }

    #[test]
    fn contiguous_ranges_cover_exactly() {
        let spec = ShardSpec::contiguous(10, 3);
        assert_eq!(spec.range(0), (0, 4));
        assert_eq!(spec.range(1), (4, 7));
        assert_eq!(spec.range(2), (7, 10));
        assert_eq!(spec.num_vertices(), 10);
        for v in 0..10u32 {
            let s = spec.owner_of(v);
            let (a, b) = spec.range(s);
            assert!(a <= v && v < b, "vertex {v} routed to shard {s} [{a},{b})");
        }
    }

    #[test]
    fn more_shards_than_vertices_leaves_empty_tails() {
        let spec = ShardSpec::contiguous(3, 8);
        assert_eq!(spec.num_shards(), 8);
        assert_eq!(spec.num_vertices(), 3);
        let owned: usize = (0..8).map(|s| (spec.range(s).1 - spec.range(s).0) as usize).sum();
        assert_eq!(owned, 3);
        for v in 0..3u32 {
            assert_eq!(spec.owner_of(v), v as usize, "1-vertex shards own their id");
        }
        for s in 3..8 {
            let (a, b) = spec.range(s);
            assert_eq!(a, b, "tail shard {s} must be empty");
        }
    }

    #[test]
    fn view_extracts_cross_shard_fringe() {
        // 0→2, 2→1, 3→0: shard 0 owns {0,1}, shard 1 owns {2,3}.
        let g = Graph::from_edges(4, &[(0, 2), (2, 1), (3, 0)]);
        let spec = ShardSpec::contiguous(4, 2);
        let v0 = ShardView::build(&g, &spec, 0);
        assert_eq!(v0.ghosts(), &[2, 3]);
        assert_eq!(v0.num_owned(), 2);
        assert_eq!(v0.num_locals(), 4);
        // Locals ascend: [0, 1, 2, 3] → local ids equal global ids here.
        assert_eq!(v0.locals(), &[0, 1, 2, 3]);
        assert_eq!(v0.out_neighbors_of(0), &[2]);
        assert_eq!(v0.in_neighbors_of(0), &[3]);
        assert_eq!(v0.in_neighbors_of(1), &[2]);

        let v1 = ShardView::build(&g, &spec, 1);
        assert_eq!(v1.ghosts(), &[0, 1]);
        // Locals [0, 1, 2, 3]; ghosts below the range keep ascending order.
        assert_eq!(v1.to_local(2), Some(2));
        assert_eq!(v1.to_local(0), Some(0));
        assert!(v1.is_owned_local(2));
        assert!(!v1.is_owned_local(0));
    }

    #[test]
    fn local_order_is_global_order() {
        // Ghosts both below and above the owned range.
        let g = Graph::from_edges(6, &[(0, 3), (5, 2), (2, 0), (3, 5)]);
        let spec = ShardSpec::contiguous(6, 3);
        let v = ShardView::build(&g, &spec, 1); // owns {2, 3}
        assert_eq!(v.ghosts(), &[0, 5]);
        assert_eq!(v.locals(), &[0, 2, 3, 5]);
        for (l, &gid) in v.locals().iter().enumerate() {
            assert_eq!(v.to_local(gid), Some(l as u32));
            assert_eq!(v.to_global(l as u32), gid);
        }
        assert_eq!(v.to_local(1), None);
        assert_eq!(v.to_local(4), None);
        // Mapping is monotone: sorted local ids ⇔ sorted global ids.
        let mapped: Vec<u32> = v.locals().iter().map(|&gid| v.to_local(gid).unwrap()).collect();
        assert!(mapped.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ghost_only_adjacency_range() {
        // A star: hub 0 in shard 0, leaves in shard 1. Every edge of shard
        // 1's owned vertices crosses the boundary — its entire adjacency is
        // ghost-referenced.
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (2, 0)]);
        let spec = ShardSpec::contiguous(4, 2);
        let v1 = ShardView::build(&g, &spec, 1);
        assert_eq!(v1.ghosts(), &[0]);
        for v in 2..4u32 {
            for &l in v1.in_neighbors_of(v).iter().chain(v1.out_neighbors_of(v)) {
                assert!(!v1.is_owned_local(l), "every neighbor must be a ghost");
            }
        }
    }

    #[test]
    fn route_delta_splits_touched_by_owner() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let events = vec![
            ev(4, 5, 0, EventKind::Insert),
            ev(0, 1, 1, EventKind::Delete),
            ev(6, 2, 2, EventKind::Insert),
        ];
        let delta = GraphDelta::from_events(&g, &events);
        let mut spec = ShardSpec::contiguous(6, 3);
        spec.grow(delta.new_num_vertices());
        let routed = route_delta(&delta, &spec);
        assert_eq!(routed[0].touched_owned, vec![0, 1]);
        assert_eq!(routed[1].touched_owned, vec![2]);
        assert!(routed[2].touched_owned.contains(&4));
        assert!(routed[2].touched_owned.contains(&5));
        assert_eq!(routed[2].new_vertices, 1);
        assert!(routed[0].affects_view() && routed[1].affects_view() && routed[2].affects_view());
    }

    #[test]
    fn empty_delta_routes_nowhere() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let delta = GraphDelta::from_events(&g, &[]);
        assert!(delta.is_empty());
        let spec = ShardSpec::contiguous(4, 2);
        for slice in route_delta(&delta, &spec) {
            assert!(!slice.affects_view());
            assert_eq!(slice.touched_owned.len() + slice.new_vertices, 0);
        }
    }

    #[test]
    fn grow_extends_last_shard_only() {
        let mut spec = ShardSpec::contiguous(6, 3);
        let before: Vec<_> = (0..2).map(|s| spec.range(s)).collect();
        spec.grow(9);
        assert_eq!((0..2).map(|s| spec.range(s)).collect::<Vec<_>>(), before);
        assert_eq!(spec.range(2), (4, 9));
        assert_eq!(spec.owner_of(8), 2);
    }
}
