//! Vertex-range shards over a CSR snapshot: the graph-substrate half of
//! the sharded trainer.
//!
//! A shard owns a **contiguous vertex range** of the graph plus a
//! read-only **ghost fringe**: the cross-shard in/out-neighbors of its
//! owned vertices. Contiguous ranges keep ownership tests O(1) arithmetic
//! and make the owned adjacency a pure slice of the global CSR; the fringe
//! is exactly the set of foreign vertices a shard-local hybrid-cut move
//! evaluation reads (the staged neighbors of `collect_deltas`), so a shard
//! holding bit-identical replicas of its owned ∪ fringe rows scores its
//! agents bit-identically to a global evaluator.
//!
//! Local ids are assigned in **ascending global-id order** over
//! owned ∪ fringe. The mapping is therefore order-isomorphic: sorting
//! staged neighbors by local id yields the same permutation as sorting by
//! global id, which is what keeps the kernel's sealed-merge and fp
//! accumulation order — and hence its results — bit-identical to the
//! single-address-space path.
//!
//! [`route_delta`] splits a [`GraphDelta`] by owning shard so a dynamic
//! window refreshes only the shards (and only the fringes) the delta
//! actually touches.
//!
//! **Shard-resident ingest** ([`ShardView::build_streamed`]) runs the
//! two-pass streamed build directly against a [`ChunkedEdges`] source,
//! keeping only the rows the shard owns plus its ghost fringe — a shard
//! worker never materializes the global CSR. The view's offset arrays are
//! fixed-narrow `u32` by construction: streamed ingest caps kept edges at
//! `u32` range globally ([`BuildError::TooManyEdges`]), and a shard's
//! owned edges are a subset of that, so the narrow width is a proven
//! invariant here rather than a build-time choice.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use crate::csr::Graph;
use crate::delta::GraphDelta;
use crate::stream::{
    compact_runs, BuildError, ChunkedEdges, IngestPool, SharedSlice, StreamConfig,
};
use crate::VertexId;

/// A contiguous partition of the vertex id space into shards.
///
/// Ranges are half-open `[start, end)`, cover `0..n` exactly, and may be
/// empty (shard counts exceeding the vertex count are legal; the excess
/// shards simply own nothing).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    ranges: Vec<(VertexId, VertexId)>,
}

impl ShardSpec {
    /// Splits `n` vertices into `num_shards` contiguous ranges of
    /// near-equal size (the first `n % num_shards` shards get one extra
    /// vertex). `num_shards` must be at least 1.
    pub fn contiguous(n: usize, num_shards: usize) -> ShardSpec {
        assert!(num_shards >= 1, "at least one shard required");
        let base = n / num_shards;
        let extra = n % num_shards;
        let mut ranges = Vec::with_capacity(num_shards);
        let mut start = 0usize;
        for s in 0..num_shards {
            let len = base + usize::from(s < extra);
            ranges.push((start as VertexId, (start + len) as VertexId));
            start += len;
        }
        debug_assert_eq!(start, n);
        ShardSpec { ranges }
    }

    /// Splits the vertex id space into `num_shards` contiguous ranges of
    /// near-equal **edge mass** (out-degree + in-degree): boundary `s` is
    /// placed where the cumulative degree crosses `s/num_shards` of the
    /// total. On skewed graphs whose hubs cluster in one id region —
    /// R-MAT concentrates them at low ids — an even vertex split leaves
    /// one shard holding most of the adjacency; the balanced split keeps
    /// every shard's resident footprint near `1/num_shards` of the CSR,
    /// which is the property the shard-resident ingest path exists for.
    pub fn balanced(graph: &Graph, num_shards: usize) -> ShardSpec {
        assert!(num_shards >= 1, "at least one shard required");
        let n = graph.num_vertices();
        let total: u64 = 2 * graph.num_edges() as u64;
        let mut ranges = Vec::with_capacity(num_shards);
        let mut cum = 0u64;
        let mut start = 0usize;
        let mut v = 0usize;
        for s in 0..num_shards {
            // Everything past `s`'s share belongs to later shards; the
            // last shard absorbs the remainder (and any trailing
            // zero-degree vertices).
            let target = total * (s as u64 + 1) / num_shards as u64;
            while v < n && (cum < target || s + 1 == num_shards) {
                cum += (graph.out_degree(v as VertexId) + graph.in_degree(v as VertexId)) as u64;
                v += 1;
            }
            ranges.push((start as VertexId, v as VertexId));
            start = v;
        }
        debug_assert_eq!(v, n);
        ShardSpec { ranges }
    }

    /// Number of shards (including empty ones).
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Total vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.ranges.last().map_or(0, |&(_, e)| e as usize)
    }

    /// The half-open owned range of shard `s`.
    pub fn range(&self, s: usize) -> (VertexId, VertexId) {
        self.ranges[s]
    }

    /// The shard owning vertex `v`.
    pub fn owner_of(&self, v: VertexId) -> usize {
        debug_assert!((v as usize) < self.num_vertices());
        // Ranges are sorted and contiguous: the owner is the last shard
        // starting at or before `v` (empty ranges share a start with their
        // successor and own nothing, so partition_point lands past them).
        self.ranges.partition_point(|&(start, _)| start <= v).saturating_sub(1)
    }

    /// Grows the id space to `new_n` vertices by extending the **last**
    /// shard's range. Dynamic windows only append vertices; absorbing them
    /// into the tail shard keeps every existing boundary — and therefore
    /// every unaffected shard's view — stable across the window.
    pub fn grow(&mut self, new_n: usize) {
        let old_n = self.num_vertices();
        assert!(new_n >= old_n, "the vertex id space only grows");
        if let Some(last) = self.ranges.last_mut() {
            last.1 = new_n as VertexId;
        }
    }
}

/// One shard's materialized view of the graph: owned adjacency re-indexed
/// to local ids, plus the sorted ghost fringe.
///
/// The view copies its slices out of the global CSR, so it stays valid
/// after the snapshot that built it is dropped — dynamic drivers carry
/// unaffected views across windows verbatim.
///
/// Equality is structural over the local-id CSR, ghosts and range —
/// [`ShardView::build_streamed`] is pinned bit-identical to
/// [`ShardView::build`] through it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardView {
    shard: usize,
    start: VertexId,
    end: VertexId,
    /// Ghost fringe: every in/out-neighbor of an owned vertex outside
    /// `[start, end)`, ascending, deduplicated.
    ghosts: Vec<VertexId>,
    /// All local vertices (owned ∪ ghosts) in ascending global-id order;
    /// local id = index into this table.
    locals: Vec<VertexId>,
    /// CSR over the owned vertices only, targets/sources as local ids.
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
}

impl ShardView {
    /// Builds shard `shard`'s view of `graph` under `spec`: slices the
    /// owned rows out of the CSR and extracts the ghost fringe.
    pub fn build(graph: &Graph, spec: &ShardSpec, shard: usize) -> ShardView {
        let (start, end) = spec.range(shard);
        debug_assert!(end as usize <= graph.num_vertices());
        let owned = (end - start) as usize;

        let mut ghosts: Vec<VertexId> = Vec::new();
        for v in start..end {
            for &u in graph.in_neighbors(v) {
                if u < start || u >= end {
                    ghosts.push(u);
                }
            }
            for &w in graph.out_neighbors(v) {
                if w < start || w >= end {
                    ghosts.push(w);
                }
            }
        }
        ghosts.sort_unstable();
        ghosts.dedup();

        // Ascending merge of ghosts-below, owned range, ghosts-above.
        let below = ghosts.partition_point(|&g| g < start);
        let mut locals = Vec::with_capacity(owned + ghosts.len());
        locals.extend_from_slice(&ghosts[..below]);
        locals.extend(start..end);
        locals.extend_from_slice(&ghosts[below..]);
        debug_assert!(locals.windows(2).all(|w| w[0] < w[1]));

        let to_local = |v: VertexId| -> u32 {
            if v >= start && v < end {
                below as u32 + (v - start)
            } else if v < start {
                ghosts[..below].binary_search(&v).expect("fringe covers every neighbor") as u32
            } else {
                (below + owned + ghosts[below..].binary_search(&v).expect("fringe")) as u32
            }
        };

        let mut out_offsets = Vec::with_capacity(owned + 1);
        let mut in_offsets = Vec::with_capacity(owned + 1);
        let mut out_targets = Vec::new();
        let mut in_sources = Vec::new();
        out_offsets.push(0);
        in_offsets.push(0);
        for v in start..end {
            out_targets.extend(graph.out_neighbors(v).iter().map(|&w| to_local(w)));
            in_sources.extend(graph.in_neighbors(v).iter().map(|&u| to_local(u)));
            out_offsets.push(out_targets.len() as u32);
            in_offsets.push(in_sources.len() as u32);
        }

        ShardView {
            shard,
            start,
            end,
            ghosts,
            locals,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        }
    }

    /// Builds shard `shard`'s view straight from a chunked edge stream,
    /// without ever materializing the global CSR — the shard-resident
    /// footprint is the owned rows, the ghost fringe, and two transient
    /// planes (owned-range `u32` counters plus one ghost bit per global
    /// vertex).
    ///
    /// The result is **bit-identical** to
    /// `ShardView::build(&build_chunked(src, cfg, pool)?.0, spec, shard)`
    /// at any chunk count and thread count: pass 1 counts owned degrees
    /// and marks cross-range neighbors, pass 2 scatters local ids through
    /// atomic cursors, pass 3 sorts each run (the local↔global mapping is
    /// monotone, so sorted-local equals mapped sorted-global), and the
    /// optional dedup compaction mirrors the full build's. Error
    /// conditions are also identical — an out-of-range edge or a stream
    /// at 2^32 kept edges fails here exactly as it fails the global
    /// build, even when the offending edge is owned by another shard.
    pub fn build_streamed<S: ChunkedEdges + ?Sized>(
        src: &S,
        cfg: StreamConfig,
        spec: &ShardSpec,
        shard: usize,
        pool: &dyn IngestPool,
    ) -> Result<(ShardView, ShardIngestReport), BuildError> {
        let n = src.num_vertices();
        if n >= VertexId::MAX as usize {
            return Err(BuildError::TooManyVertices { n });
        }
        assert_eq!(
            spec.num_vertices(),
            n,
            "shard spec covers {} vertices, stream has {}",
            spec.num_vertices(),
            n
        );
        let (start, end) = spec.range(shard);
        let owned = (end - start) as usize;
        let num_chunks = src.num_chunks();

        // ---- Pass 1: count owned degrees, mark the ghost fringe. ---------
        let out_cnt: Vec<AtomicU32> = (0..owned).map(|_| AtomicU32::new(0)).collect();
        let in_cnt: Vec<AtomicU32> = (0..owned).map(|_| AtomicU32::new(0)).collect();
        // One bit per global vertex: set when it is a cross-range neighbor
        // of an owned vertex. n/8 bytes — bounded regardless of how many
        // per-thread ghost candidates a skewed stream produces.
        let ghost_bits: Vec<AtomicU64> = (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        let raw_edges = AtomicU64::new(0);
        let loops_dropped = AtomicU64::new(0);
        let bad_edge = AtomicU64::new(u64::MAX);

        let next_chunk = AtomicUsize::new(0);
        pool.run(&|_worker| {
            let mut local_raw = 0u64;
            let mut local_loops = 0u64;
            loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                src.emit(c, &mut |u, v| {
                    local_raw += 1;
                    if (u as usize) >= n || (v as usize) >= n {
                        let packed = ((u as u64) << 32) | v as u64;
                        let _ = bad_edge.compare_exchange(
                            u64::MAX,
                            packed,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        );
                        return;
                    }
                    if cfg.drop_self_loops && u == v {
                        local_loops += 1;
                        return;
                    }
                    let u_owned = u >= start && u < end;
                    let v_owned = v >= start && v < end;
                    if u_owned {
                        out_cnt[(u - start) as usize].fetch_add(1, Ordering::Relaxed);
                        if !v_owned {
                            ghost_bits[(v as usize) >> 6]
                                .fetch_or(1 << (v & 63), Ordering::Relaxed);
                        }
                    }
                    if v_owned {
                        in_cnt[(v - start) as usize].fetch_add(1, Ordering::Relaxed);
                        if !u_owned {
                            ghost_bits[(u as usize) >> 6]
                                .fetch_or(1 << (u & 63), Ordering::Relaxed);
                        }
                    }
                });
            }
            raw_edges.fetch_add(local_raw, Ordering::Relaxed);
            loops_dropped.fetch_add(local_loops, Ordering::Relaxed);
        });

        let raw_edges = raw_edges.into_inner();
        let loops_dropped = loops_dropped.into_inner();
        let bad = bad_edge.into_inner();
        if bad != u64::MAX {
            return Err(BuildError::EdgeOutOfRange {
                u: (bad >> 32) as VertexId,
                v: bad as VertexId,
                n,
            });
        }
        let kept = raw_edges - loops_dropped;
        if kept > VertexId::MAX as u64 {
            return Err(BuildError::TooManyEdges { edges: kept });
        }

        // ---- Ghost fringe and local-id table. ----------------------------
        // Only non-owned vertices ever get a bit, and the bitmap scan walks
        // ascending ids — the fringe comes out sorted and deduplicated.
        let mut ghosts: Vec<VertexId> = Vec::new();
        for (w, word) in ghost_bits.iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                ghosts.push((w * 64 + b) as VertexId);
                bits &= bits - 1;
            }
        }
        let ghost_words = ghost_bits.len();
        drop(ghost_bits);

        let below = ghosts.partition_point(|&g| g < start);
        let mut locals = Vec::with_capacity(owned + ghosts.len());
        locals.extend_from_slice(&ghosts[..below]);
        locals.extend(start..end);
        locals.extend_from_slice(&ghosts[below..]);
        debug_assert!(locals.windows(2).all(|w| w[0] < w[1]));

        let ghosts_ref = &ghosts;
        let to_local = move |v: VertexId| -> u32 {
            if v >= start && v < end {
                below as u32 + (v - start)
            } else if v < start {
                ghosts_ref[..below].binary_search(&v).expect("fringe covers every neighbor") as u32
            } else {
                (below + owned + ghosts_ref[below..].binary_search(&v).expect("fringe")) as u32
            }
        };

        // ---- Prefix sums (narrow by invariant) and allocation. -----------
        let mut out_offsets: Vec<u32> = Vec::with_capacity(owned + 1);
        let mut in_offsets: Vec<u32> = Vec::with_capacity(owned + 1);
        {
            let mut acc_out = 0u32;
            let mut acc_in = 0u32;
            out_offsets.push(0);
            in_offsets.push(0);
            for v in 0..owned {
                acc_out = acc_out
                    .checked_add(out_cnt[v].load(Ordering::Relaxed))
                    .ok_or(BuildError::OffsetOverflow)?;
                acc_in = acc_in
                    .checked_add(in_cnt[v].load(Ordering::Relaxed))
                    .ok_or(BuildError::OffsetOverflow)?;
                out_offsets.push(acc_out);
                in_offsets.push(acc_in);
            }
        }
        let mut out_targets = vec![0u32; out_offsets[owned] as usize];
        let mut in_sources = vec![0u32; in_offsets[owned] as usize];

        // Reuse the counter planes as scatter cursors.
        for c in &out_cnt {
            c.store(0, Ordering::Relaxed);
        }
        for c in &in_cnt {
            c.store(0, Ordering::Relaxed);
        }

        // ---- Pass 2: scatter owned edges as local ids. -------------------
        {
            let out_slots = SharedSlice(out_targets.as_mut_ptr());
            let in_slots = SharedSlice(in_sources.as_mut_ptr());
            let out_offsets = &out_offsets;
            let in_offsets = &in_offsets;
            let out_cnt = &out_cnt;
            let in_cnt = &in_cnt;
            let to_local = &to_local;
            let next_chunk = AtomicUsize::new(0);
            pool.run(&|_worker| loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    break;
                }
                src.emit(c, &mut |u, v| {
                    assert!(
                        (u as usize) < n && (v as usize) < n,
                        "ChunkedEdges emitted edge ({u},{v}) in pass 2 absent from pass 1"
                    );
                    if cfg.drop_self_loops && u == v {
                        return;
                    }
                    if u >= start && u < end {
                        let i = (u - start) as usize;
                        let slot = out_cnt[i].fetch_add(1, Ordering::Relaxed) as usize;
                        let idx = out_offsets[i] as usize + slot;
                        assert!(
                            idx < out_offsets[i + 1] as usize,
                            "pass 2 emitted more out-edges of {u} than pass 1"
                        );
                        // SAFETY: idx is inside vertex u's run (checked
                        // above) and uniquely claimed by the fetch_add.
                        unsafe { out_slots.write(idx, to_local(v)) };
                    }
                    if v >= start && v < end {
                        let i = (v - start) as usize;
                        let slot = in_cnt[i].fetch_add(1, Ordering::Relaxed) as usize;
                        let idx = in_offsets[i] as usize + slot;
                        assert!(
                            idx < in_offsets[i + 1] as usize,
                            "pass 2 emitted more in-edges of {v} than pass 1"
                        );
                        // SAFETY: as above, for the in-direction.
                        unsafe { in_slots.write(idx, to_local(u)) };
                    }
                });
            });
        }

        // ---- Pass 3: canonicalize runs. ----------------------------------
        // The local↔global mapping is monotone, so sorting runs of local
        // ids yields exactly the mapped image of the global build's sorted
        // runs — this is what pins streamed ≡ staged per shard.
        {
            const BLOCK: usize = 4096;
            let num_blocks = owned.div_ceil(BLOCK);
            let out_ptr = SharedSlice(out_targets.as_mut_ptr());
            let in_ptr = SharedSlice(in_sources.as_mut_ptr());
            let out_offsets = &out_offsets;
            let in_offsets = &in_offsets;
            let next_block = AtomicUsize::new(0);
            pool.run(&|_worker| loop {
                let b = next_block.fetch_add(1, Ordering::Relaxed);
                if b >= num_blocks {
                    break;
                }
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(owned);
                for v in lo..hi {
                    // SAFETY: runs are disjoint per vertex, and each vertex
                    // belongs to exactly one block.
                    unsafe {
                        let run = std::slice::from_raw_parts_mut(
                            out_ptr.base().add(out_offsets[v] as usize),
                            (out_offsets[v + 1] - out_offsets[v]) as usize,
                        );
                        run.sort_unstable();
                        let run = std::slice::from_raw_parts_mut(
                            in_ptr.base().add(in_offsets[v] as usize),
                            (in_offsets[v + 1] - in_offsets[v]) as usize,
                        );
                        run.sort_unstable();
                    }
                }
            });
            let _ = (out_ptr, in_ptr);
        }

        // ---- Optional dedup compaction. ----------------------------------
        // Mirrors the full build: duplicates of an owned edge sit adjacent
        // in its sorted local runs, so per-run compaction removes exactly
        // what GraphBuilder's global dedup would.
        let mut duplicates_removed = 0u64;
        if cfg.dedup {
            let before = out_targets.len() + in_sources.len();
            compact_runs(&mut out_offsets, &mut out_targets);
            compact_runs(&mut in_offsets, &mut in_sources);
            duplicates_removed = (before - out_targets.len() - in_sources.len()) as u64;
            // Like the full build: hand the compaction slack back, since
            // `heap_bytes` charges capacity and the view lives for the
            // whole window.
            out_targets.shrink_to_fit();
            in_sources.shrink_to_fit();
        }

        let transient_bytes =
            2 * owned * std::mem::size_of::<AtomicU32>() + ghost_words * std::mem::size_of::<u64>();
        drop(out_cnt);
        drop(in_cnt);

        let view = ShardView {
            shard,
            start,
            end,
            ghosts,
            locals,
            out_offsets,
            out_targets,
            in_offsets,
            in_sources,
        };
        let report = ShardIngestReport {
            raw_edges,
            owned_out_edges: view.out_targets.len(),
            owned_in_edges: view.in_sources.len(),
            self_loops_dropped: loops_dropped,
            duplicates_removed,
            view_bytes: view.heap_bytes(),
            transient_bytes,
        };
        Ok((view, report))
    }

    /// The shard this view belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The half-open owned global-id range.
    pub fn owned_range(&self) -> (VertexId, VertexId) {
        (self.start, self.end)
    }

    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Number of ghost-fringe vertices.
    pub fn num_ghosts(&self) -> usize {
        self.ghosts.len()
    }

    /// Owned plus ghost vertices — the size of the shard's working set.
    pub fn num_locals(&self) -> usize {
        self.locals.len()
    }

    /// The sorted ghost fringe (global ids).
    pub fn ghosts(&self) -> &[VertexId] {
        &self.ghosts
    }

    /// All local vertices in local-id order (ascending global ids).
    pub fn locals(&self) -> &[VertexId] {
        &self.locals
    }

    /// Whether this view owns global vertex `v`.
    pub fn owns(&self, v: VertexId) -> bool {
        v >= self.start && v < self.end
    }

    /// Local id of global vertex `v`, if `v` is owned or in the fringe.
    pub fn to_local(&self, v: VertexId) -> Option<u32> {
        if self.owns(v) {
            let below = self.locals.len() - self.num_owned() - self.ghosts_above();
            return Some(below as u32 + (v - self.start));
        }
        self.locals.binary_search(&v).ok().map(|i| i as u32)
    }

    fn ghosts_above(&self) -> usize {
        self.ghosts.len() - self.ghosts.partition_point(|&g| g < self.start)
    }

    /// Global id of local vertex `l`.
    pub fn to_global(&self, l: u32) -> VertexId {
        self.locals[l as usize]
    }

    /// Whether local id `l` is an owned vertex (vs a ghost).
    pub fn is_owned_local(&self, l: u32) -> bool {
        self.owns(self.locals[l as usize])
    }

    /// Out-neighbors (as local ids) of **owned** global vertex `v`, in the
    /// global CSR's adjacency order.
    pub fn out_neighbors_of(&self, v: VertexId) -> &[u32] {
        debug_assert!(self.owns(v));
        let i = (v - self.start) as usize;
        &self.out_targets[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// In-neighbors (as local ids) of **owned** global vertex `v`.
    pub fn in_neighbors_of(&self, v: VertexId) -> &[u32] {
        debug_assert!(self.owns(v));
        let i = (v - self.start) as usize;
        &self.in_sources[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// Heap bytes held by the view (capacity): ghost/local id tables plus
    /// the owned local-id CSR, all `u32` — the per-shard resident
    /// footprint the memory gates account.
    pub fn heap_bytes(&self) -> usize {
        (self.ghosts.capacity()
            + self.locals.capacity()
            + self.out_offsets.capacity()
            + self.out_targets.capacity()
            + self.in_offsets.capacity()
            + self.in_sources.capacity())
            * std::mem::size_of::<u32>()
    }
}

/// What a shard-resident streamed build did and what it cost in memory.
///
/// The full-stream totals (`raw_edges`, `self_loops_dropped`) are global —
/// every shard observes the whole stream even though it only keeps its
/// owned rows — while the edge and byte figures are this shard's alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardIngestReport {
    /// Edges emitted by the source (pre-cleaning, whole stream).
    pub raw_edges: u64,
    /// Out-edges of owned vertices kept in the view.
    pub owned_out_edges: usize,
    /// In-edges of owned vertices kept in the view.
    pub owned_in_edges: usize,
    /// Self-loops dropped at emit time (whole stream).
    pub self_loops_dropped: u64,
    /// Duplicate adjacency entries removed by compaction, summed over both
    /// owned directions.
    pub duplicates_removed: u64,
    /// Heap bytes of the finished view ([`ShardView::heap_bytes`]).
    pub view_bytes: usize,
    /// Peak transient heap held *in addition to* the view during the build:
    /// the owned-range counter/cursor planes plus the global ghost bitmap
    /// (one bit per vertex).
    pub transient_bytes: usize,
}

impl ShardIngestReport {
    /// Peak accounted build footprint: finished view plus transients. The
    /// number the `--shards` gate compares against the full-CSR build.
    pub fn peak_bytes(&self) -> usize {
        self.view_bytes + self.transient_bytes
    }
}

/// The slice of a [`GraphDelta`] relevant to one shard.
#[derive(Clone, Debug, Default)]
pub struct ShardDelta {
    /// Owned vertices whose adjacency the delta changed (sorted).
    pub touched_owned: Vec<VertexId>,
    /// Vertices appended to this shard's range by the window (only the
    /// last shard absorbs growth — see [`ShardSpec::grow`]).
    pub new_vertices: usize,
}

impl ShardDelta {
    /// Whether this shard's view must be refreshed: its owned adjacency
    /// (and therefore possibly its fringe) changed, or its range grew.
    pub fn affects_view(&self) -> bool {
        !self.touched_owned.is_empty() || self.new_vertices > 0
    }
}

/// Routes a [`GraphDelta`] to its owning shards: per shard, the owned
/// touched vertices plus (for the tail shard) the appended vertex count.
///
/// `spec` must already cover the delta's **new** vertex count (grow it
/// with [`ShardSpec::grow`] first). A shard whose slice is empty is
/// unaffected: none of its owned vertices' adjacency changed, so its view
/// — including its ghost fringe, which is a function of that adjacency —
/// is carried verbatim.
pub fn route_delta(delta: &GraphDelta, spec: &ShardSpec) -> Vec<ShardDelta> {
    assert_eq!(
        spec.num_vertices(),
        delta.new_num_vertices(),
        "spec must be grown to the delta's successor snapshot first"
    );
    let mut routed: Vec<ShardDelta> = vec![ShardDelta::default(); spec.num_shards()];
    // `touched()` is sorted; split it across the sorted ranges in one walk.
    let mut shard = 0usize;
    for &v in delta.touched() {
        while spec.range(shard).1 <= v {
            shard += 1;
        }
        routed[shard].touched_owned.push(v);
    }
    let appended = delta.new_num_vertices() - delta.old_num_vertices();
    if appended > 0 {
        let last = spec.num_shards() - 1;
        routed[last].new_vertices = appended;
    }
    routed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{EdgeEvent, EventKind};
    use crate::stream::{build_chunked, ScopedPool};
    use crate::GraphBuilder;

    fn ev(src: u32, dst: u32, ts: u64, kind: EventKind) -> EdgeEvent {
        EdgeEvent { src, dst, timestamp_ms: ts, kind }
    }

    /// A fixed edge list exposed as a chunked stream.
    struct VecSource {
        n: usize,
        chunk: usize,
        edges: Vec<(VertexId, VertexId)>,
    }

    impl ChunkedEdges for VecSource {
        fn num_vertices(&self) -> usize {
            self.n
        }
        fn num_chunks(&self) -> usize {
            self.edges.len().div_ceil(self.chunk).max(1)
        }
        fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
            let lo = chunk * self.chunk;
            let hi = (lo + self.chunk).min(self.edges.len());
            for &(u, v) in &self.edges[lo..hi] {
                sink(u, v);
            }
        }
    }

    fn messy_edges() -> Vec<(VertexId, VertexId)> {
        // Duplicates, self-loops, out-of-order, hub vertex 0, cross-range
        // edges in both directions for any 2..=4-way contiguous split.
        let mut e = vec![(3, 3), (1, 0), (0, 2), (0, 2), (2, 1), (7, 0), (4, 7), (0, 3), (6, 5)];
        for i in 0..60 {
            e.push((0, (i % 8) as VertexId));
            e.push(((i % 8) as VertexId, (i % 3) as VertexId));
        }
        e
    }

    #[test]
    fn streamed_view_matches_staged_at_every_split() {
        let edges = messy_edges();
        for cfg in [StreamConfig::verbatim(), StreamConfig::cleaned()] {
            let pool = ScopedPool(2);
            let src = VecSource { n: 8, chunk: 7, edges: edges.clone() };
            let (global, _) = build_chunked(&src, cfg, &pool).unwrap();
            for num_shards in [1, 2, 3, 4, 8] {
                let spec = ShardSpec::contiguous(8, num_shards);
                for s in 0..num_shards {
                    let staged = ShardView::build(&global, &spec, s);
                    for threads in [1, 4] {
                        let (streamed, rep) =
                            ShardView::build_streamed(&src, cfg, &spec, s, &ScopedPool(threads))
                                .unwrap();
                        assert_eq!(
                            streamed, staged,
                            "shards={num_shards} shard={s} threads={threads} dedup={}",
                            cfg.dedup
                        );
                        assert_eq!(rep.raw_edges as usize, edges.len());
                        // Every vertex 0..8 has adjacency in messy_edges.
                        assert!(rep.owned_out_edges + rep.owned_in_edges > 0);
                        assert_eq!(rep.view_bytes, streamed.heap_bytes());
                    }
                }
            }
        }
    }

    #[test]
    fn streamed_view_report_mirrors_global_cleaning() {
        let edges = messy_edges();
        let mut b = GraphBuilder::new(8);
        b.add_edges(edges.iter().copied());
        let cleaned = b.build();
        let spec = ShardSpec::contiguous(8, 2);
        let src = VecSource { n: 8, chunk: 5, edges };
        let (view, rep) =
            ShardView::build_streamed(&src, StreamConfig::cleaned(), &spec, 0, &ScopedPool(2))
                .unwrap();
        assert_eq!(view, ShardView::build(&cleaned, &spec, 0));
        // Every kept owned out-edge of shard 0 is an edge of the cleaned
        // graph whose source lies in [0, 4).
        let expected: usize = (0..4u32).map(|v| cleaned.out_degree(v)).sum();
        assert_eq!(rep.owned_out_edges, expected);
        assert!(rep.self_loops_dropped > 0);
        assert!(rep.duplicates_removed > 0);
        assert!(rep.transient_bytes > 0);
        assert_eq!(rep.peak_bytes(), rep.view_bytes + rep.transient_bytes);
    }

    #[test]
    fn streamed_view_typed_errors_match_global_build() {
        // Out-of-range edges fail the shard build even when neither
        // endpoint is owned — error semantics match the global build.
        let src = VecSource { n: 4, chunk: 8, edges: vec![(0, 1), (9, 3)] };
        let spec = ShardSpec::contiguous(4, 2);
        let err =
            ShardView::build_streamed(&src, StreamConfig::verbatim(), &spec, 0, &ScopedPool(1))
                .unwrap_err();
        assert_eq!(err, BuildError::EdgeOutOfRange { u: 9, v: 3, n: 4 });
    }

    #[test]
    fn empty_shard_view_streams() {
        // More shards than vertices: the tail shard owns nothing and its
        // streamed view is empty but well-formed.
        let src = VecSource { n: 3, chunk: 2, edges: vec![(0, 1), (1, 2), (2, 0)] };
        let spec = ShardSpec::contiguous(3, 5);
        let (global, _) = build_chunked(&src, StreamConfig::verbatim(), &ScopedPool(1)).unwrap();
        for s in 0..5 {
            let (streamed, _) =
                ShardView::build_streamed(&src, StreamConfig::verbatim(), &spec, s, &ScopedPool(2))
                    .unwrap();
            assert_eq!(streamed, ShardView::build(&global, &spec, s));
        }
    }

    #[test]
    fn contiguous_ranges_cover_exactly() {
        let spec = ShardSpec::contiguous(10, 3);
        assert_eq!(spec.range(0), (0, 4));
        assert_eq!(spec.range(1), (4, 7));
        assert_eq!(spec.range(2), (7, 10));
        assert_eq!(spec.num_vertices(), 10);
        for v in 0..10u32 {
            let s = spec.owner_of(v);
            let (a, b) = spec.range(s);
            assert!(a <= v && v < b, "vertex {v} routed to shard {s} [{a},{b})");
        }
    }

    #[test]
    fn balanced_ranges_equalize_edge_mass_on_skew() {
        // A hub-heavy graph: vertex 0 touches everyone, the tail is sparse.
        let mut edges = Vec::new();
        for v in 1..64u32 {
            edges.push((0, v));
        }
        edges.push((60, 61));
        let g = Graph::from_edges(64, &edges);
        let spec = ShardSpec::balanced(&g, 4);
        assert_eq!(spec.num_shards(), 4);
        assert_eq!(spec.num_vertices(), 64);
        let mass = |s: usize| -> u64 {
            let (a, b) = spec.range(s);
            (a..b).map(|v| (g.out_degree(v) + g.in_degree(v)) as u64).sum()
        };
        // The hub alone crosses shard 0's quarter-share, so it owns just
        // vertex 0 — an even split would hand shard 0 a quarter of the id
        // space *and* the whole hub adjacency.
        assert_eq!(spec.range(0), (0, 1));
        let total: u64 = (0..4).map(mass).sum();
        assert_eq!(total, 2 * g.num_edges() as u64);
        let even = ShardSpec::contiguous(64, 4);
        let even_mass = |s: usize| -> u64 {
            let (a, b) = even.range(s);
            (a..b).map(|v| (g.out_degree(v) + g.in_degree(v)) as u64).sum()
        };
        let max_balanced = (0..4).map(mass).max().unwrap();
        let max_even = (0..4).map(even_mass).max().unwrap();
        assert!(max_balanced < max_even, "balanced {max_balanced} vs even {max_even}");
        // Routing still works over the uneven boundaries.
        for v in 0..64u32 {
            let s = spec.owner_of(v);
            let (a, b) = spec.range(s);
            assert!(a <= v && v < b, "vertex {v} routed to shard {s} [{a},{b})");
        }
        // Views built under a balanced spec cover the graph exactly.
        let owned: usize = (0..4).map(|s| ShardView::build(&g, &spec, s).num_owned()).sum();
        assert_eq!(owned, 64);
    }

    #[test]
    fn balanced_spec_handles_empty_and_tiny_graphs() {
        let empty = Graph::empty(0);
        let spec = ShardSpec::balanced(&empty, 3);
        assert_eq!(spec.num_vertices(), 0);
        assert_eq!(spec.num_shards(), 3);
        let tiny = Graph::from_edges(2, &[(0, 1)]);
        let spec = ShardSpec::balanced(&tiny, 8);
        assert_eq!(spec.num_vertices(), 2);
        let owned: usize = (0..8).map(|s| (spec.range(s).1 - spec.range(s).0) as usize).sum();
        assert_eq!(owned, 2);
    }

    #[test]
    fn more_shards_than_vertices_leaves_empty_tails() {
        let spec = ShardSpec::contiguous(3, 8);
        assert_eq!(spec.num_shards(), 8);
        assert_eq!(spec.num_vertices(), 3);
        let owned: usize = (0..8).map(|s| (spec.range(s).1 - spec.range(s).0) as usize).sum();
        assert_eq!(owned, 3);
        for v in 0..3u32 {
            assert_eq!(spec.owner_of(v), v as usize, "1-vertex shards own their id");
        }
        for s in 3..8 {
            let (a, b) = spec.range(s);
            assert_eq!(a, b, "tail shard {s} must be empty");
        }
    }

    #[test]
    fn view_extracts_cross_shard_fringe() {
        // 0→2, 2→1, 3→0: shard 0 owns {0,1}, shard 1 owns {2,3}.
        let g = Graph::from_edges(4, &[(0, 2), (2, 1), (3, 0)]);
        let spec = ShardSpec::contiguous(4, 2);
        let v0 = ShardView::build(&g, &spec, 0);
        assert_eq!(v0.ghosts(), &[2, 3]);
        assert_eq!(v0.num_owned(), 2);
        assert_eq!(v0.num_locals(), 4);
        // Locals ascend: [0, 1, 2, 3] → local ids equal global ids here.
        assert_eq!(v0.locals(), &[0, 1, 2, 3]);
        assert_eq!(v0.out_neighbors_of(0), &[2]);
        assert_eq!(v0.in_neighbors_of(0), &[3]);
        assert_eq!(v0.in_neighbors_of(1), &[2]);

        let v1 = ShardView::build(&g, &spec, 1);
        assert_eq!(v1.ghosts(), &[0, 1]);
        // Locals [0, 1, 2, 3]; ghosts below the range keep ascending order.
        assert_eq!(v1.to_local(2), Some(2));
        assert_eq!(v1.to_local(0), Some(0));
        assert!(v1.is_owned_local(2));
        assert!(!v1.is_owned_local(0));
    }

    #[test]
    fn local_order_is_global_order() {
        // Ghosts both below and above the owned range.
        let g = Graph::from_edges(6, &[(0, 3), (5, 2), (2, 0), (3, 5)]);
        let spec = ShardSpec::contiguous(6, 3);
        let v = ShardView::build(&g, &spec, 1); // owns {2, 3}
        assert_eq!(v.ghosts(), &[0, 5]);
        assert_eq!(v.locals(), &[0, 2, 3, 5]);
        for (l, &gid) in v.locals().iter().enumerate() {
            assert_eq!(v.to_local(gid), Some(l as u32));
            assert_eq!(v.to_global(l as u32), gid);
        }
        assert_eq!(v.to_local(1), None);
        assert_eq!(v.to_local(4), None);
        // Mapping is monotone: sorted local ids ⇔ sorted global ids.
        let mapped: Vec<u32> = v.locals().iter().map(|&gid| v.to_local(gid).unwrap()).collect();
        assert!(mapped.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ghost_only_adjacency_range() {
        // A star: hub 0 in shard 0, leaves in shard 1. Every edge of shard
        // 1's owned vertices crosses the boundary — its entire adjacency is
        // ghost-referenced.
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (2, 0)]);
        let spec = ShardSpec::contiguous(4, 2);
        let v1 = ShardView::build(&g, &spec, 1);
        assert_eq!(v1.ghosts(), &[0]);
        for v in 2..4u32 {
            for &l in v1.in_neighbors_of(v).iter().chain(v1.out_neighbors_of(v)) {
                assert!(!v1.is_owned_local(l), "every neighbor must be a ghost");
            }
        }
    }

    #[test]
    fn route_delta_splits_touched_by_owner() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3)]);
        let events = vec![
            ev(4, 5, 0, EventKind::Insert),
            ev(0, 1, 1, EventKind::Delete),
            ev(6, 2, 2, EventKind::Insert),
        ];
        let delta = GraphDelta::from_events(&g, &events);
        let mut spec = ShardSpec::contiguous(6, 3);
        spec.grow(delta.new_num_vertices());
        let routed = route_delta(&delta, &spec);
        assert_eq!(routed[0].touched_owned, vec![0, 1]);
        assert_eq!(routed[1].touched_owned, vec![2]);
        assert!(routed[2].touched_owned.contains(&4));
        assert!(routed[2].touched_owned.contains(&5));
        assert_eq!(routed[2].new_vertices, 1);
        assert!(routed[0].affects_view() && routed[1].affects_view() && routed[2].affects_view());
    }

    #[test]
    fn empty_delta_routes_nowhere() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let delta = GraphDelta::from_events(&g, &[]);
        assert!(delta.is_empty());
        let spec = ShardSpec::contiguous(4, 2);
        for slice in route_delta(&delta, &spec) {
            assert!(!slice.affects_view());
            assert_eq!(slice.touched_owned.len() + slice.new_vertices, 0);
        }
    }

    #[test]
    fn grow_extends_last_shard_only() {
        let mut spec = ShardSpec::contiguous(6, 3);
        let before: Vec<_> = (0..2).map(|s| spec.range(s)).collect();
        spec.grow(9);
        assert_eq!((0..2).map(|s| spec.range(s)).collect::<Vec<_>>(), before);
        assert_eq!(spec.range(2), (4, 9));
        assert_eq!(spec.owner_of(8), 2);
    }
}
