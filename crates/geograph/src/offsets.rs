//! Width-adaptive CSR offset arrays.
//!
//! Every CSR-shaped structure in the workspace — the [`crate::Graph`]
//! adjacency, the compressed cold rows, shard views — carries one offset
//! entry per vertex per direction. Storing those entries as `usize` costs
//! 8 bytes each on a 64-bit host even though almost every real graph's
//! edge count fits comfortably in 32 bits: at LiveJournal scale (4.8M
//! vertices) the two `usize` offset arrays alone were 16 B/vertex of the
//! 9.25 B/edge footprint. [`Offsets`] makes the index width an explicit,
//! checked build-time parameter instead of an accident of pointer width:
//! `u32` entries when the flat array length fits ([`OffsetWidth::for_len`]),
//! `u64` otherwise, selected once at construction and queryable via
//! [`Offsets::width`].
//!
//! Width is a *representation* choice, never a semantic one: equality
//! ([`PartialEq`]) compares logical values, so a narrow offsets array
//! equals its widened twin and every bit-identity contract in the
//! workspace (streamed ≡ staged, narrow ≡ wide, shard-local ≡ global)
//! holds across widths. Narrowing that would lose values is a checked
//! failure ([`Offsets::with_width`]), never a silent truncation.

use crate::stream::BuildError;

/// Storage width of one offset entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OffsetWidth {
    /// 4-byte entries: flat-array lengths up to `u32::MAX`.
    U32,
    /// 8-byte entries: anything a 64-bit host can address.
    U64,
}

impl OffsetWidth {
    /// The narrowest width that can index a flat array of `len` elements
    /// (offset entries range over `0..=len`).
    #[inline]
    pub fn for_len(len: usize) -> OffsetWidth {
        if len <= u32::MAX as usize {
            OffsetWidth::U32
        } else {
            OffsetWidth::U64
        }
    }

    /// Bytes per entry.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            OffsetWidth::U32 => 4,
            OffsetWidth::U64 => 8,
        }
    }

    /// Whether `value` is representable at this width.
    #[inline]
    pub fn fits(self, value: usize) -> bool {
        match self {
            OffsetWidth::U32 => value <= u32::MAX as usize,
            OffsetWidth::U64 => true,
        }
    }

    /// Wire tag (the byte the snapshot format stores).
    pub fn tag(self) -> u8 {
        self.bytes() as u8
    }

    /// Inverse of [`OffsetWidth::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<OffsetWidth> {
        match tag {
            4 => Some(OffsetWidth::U32),
            8 => Some(OffsetWidth::U64),
            _ => None,
        }
    }
}

/// A monotone CSR offset array at an explicit width.
///
/// Semantically a `[usize]` of monotonically non-decreasing values
/// starting at 0; physically a `Vec<u32>` or `Vec<u64>` chosen at build
/// time. All accessors speak `usize` so call sites are width-agnostic.
#[derive(Clone, Debug)]
pub enum Offsets {
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl Offsets {
    /// An empty array ready to hold `cap` entries at `width`.
    pub fn with_capacity(width: OffsetWidth, cap: usize) -> Offsets {
        match width {
            OffsetWidth::U32 => Offsets::U32(Vec::with_capacity(cap)),
            OffsetWidth::U64 => Offsets::U64(Vec::with_capacity(cap)),
        }
    }

    /// Converts a `usize` offset array, narrowing to `u32` entries when
    /// the final (largest — the array is monotone) value fits.
    pub fn from_usize(values: Vec<usize>) -> Offsets {
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]), "offsets must be monotone");
        let max = values.last().copied().unwrap_or(0);
        match OffsetWidth::for_len(max) {
            OffsetWidth::U32 => Offsets::U32(values.into_iter().map(|v| v as u32).collect()),
            OffsetWidth::U64 => Offsets::U64(values.into_iter().map(|v| v as u64).collect()),
        }
    }

    /// The storage width.
    #[inline]
    pub fn width(&self) -> OffsetWidth {
        match self {
            Offsets::U32(_) => OffsetWidth::U32,
            Offsets::U64(_) => OffsetWidth::U64,
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Offsets::U32(v) => v.len(),
            Offsets::U64(v) => v.len(),
        }
    }

    /// True when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entry `i` as a `usize`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        match self {
            Offsets::U32(v) => v[i] as usize,
            Offsets::U64(v) => v[i] as usize,
        }
    }

    /// The half-open flat-array range of row `v`: `(get(v), get(v + 1))`.
    #[inline]
    pub fn run(&self, v: usize) -> (usize, usize) {
        match self {
            Offsets::U32(o) => (o[v] as usize, o[v + 1] as usize),
            Offsets::U64(o) => (o[v] as usize, o[v + 1] as usize),
        }
    }

    /// The last entry (the flat-array length), or 0 when empty.
    #[inline]
    pub fn last(&self) -> usize {
        match self {
            Offsets::U32(v) => v.last().copied().unwrap_or(0) as usize,
            Offsets::U64(v) => v.last().copied().unwrap_or(0) as usize,
        }
    }

    /// Appends an entry. The value must fit the width — construction
    /// sites select the width from an upper bound on the final flat
    /// length, so a misfit is a programming error (debug-checked).
    #[inline]
    pub fn push(&mut self, value: usize) {
        debug_assert!(self.width().fits(value), "offset {value} exceeds {:?}", self.width());
        match self {
            Offsets::U32(v) => v.push(value as u32),
            Offsets::U64(v) => v.push(value as u64),
        }
    }

    /// Overwrites entry `i` (used by in-place run compaction).
    #[inline]
    pub fn set(&mut self, i: usize, value: usize) {
        debug_assert!(self.width().fits(value), "offset {value} exceeds {:?}", self.width());
        match self {
            Offsets::U32(v) => v[i] = value as u32,
            Offsets::U64(v) => v[i] = value as u64,
        }
    }

    /// Iterates entries as `usize`.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Re-encodes at `width`. Narrowing an array whose values exceed the
    /// target width is a typed [`BuildError::OffsetOverflow`], never a
    /// truncation.
    pub fn with_width(&self, width: OffsetWidth) -> Result<Offsets, BuildError> {
        if !width.fits(self.last()) {
            return Err(BuildError::OffsetOverflow);
        }
        let mut out = Offsets::with_capacity(width, self.len());
        for v in self.iter() {
            out.push(v);
        }
        Ok(out)
    }

    /// Heap bytes held (capacity × entry width).
    pub fn heap_bytes(&self) -> usize {
        match self {
            Offsets::U32(v) => v.capacity() * 4,
            Offsets::U64(v) => v.capacity() * 8,
        }
    }
}

/// Value equality: a narrow array equals its widened twin. Offset width
/// is a storage decision; every bit-identity contract in the workspace
/// is stated over logical content.
impl PartialEq for Offsets {
    fn eq(&self, other: &Offsets) -> bool {
        match (self, other) {
            (Offsets::U32(a), Offsets::U32(b)) => a == b,
            (Offsets::U64(a), Offsets::U64(b)) => a == b,
            (Offsets::U32(a), Offsets::U64(b)) | (Offsets::U64(b), Offsets::U32(a)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| x as u64 == y)
            }
        }
    }
}

impl Eq for Offsets {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_selection_boundary() {
        assert_eq!(OffsetWidth::for_len(0), OffsetWidth::U32);
        assert_eq!(OffsetWidth::for_len(u32::MAX as usize), OffsetWidth::U32);
        assert_eq!(OffsetWidth::for_len(u32::MAX as usize + 1), OffsetWidth::U64);
    }

    #[test]
    fn from_usize_narrows_when_it_fits() {
        let o = Offsets::from_usize(vec![0, 2, 5, 5, 9]);
        assert_eq!(o.width(), OffsetWidth::U32);
        assert_eq!(o.len(), 5);
        assert_eq!(o.get(2), 5);
        assert_eq!(o.run(1), (2, 5));
        assert_eq!(o.last(), 9);
    }

    #[test]
    fn cross_width_equality() {
        let narrow = Offsets::from_usize(vec![0, 1, 4]);
        let wide = narrow.with_width(OffsetWidth::U64).unwrap();
        assert_eq!(wide.width(), OffsetWidth::U64);
        assert_eq!(narrow, wide);
        assert_eq!(wide, narrow);
        let other = Offsets::from_usize(vec![0, 1, 5]);
        assert_ne!(narrow, other);
        assert_ne!(wide, other.with_width(OffsetWidth::U64).unwrap());
    }

    #[test]
    fn narrowing_misfit_is_typed_error() {
        let wide = Offsets::U64(vec![0, u32::MAX as u64 + 1]);
        assert_eq!(wide.with_width(OffsetWidth::U32), Err(BuildError::OffsetOverflow));
        // Round-tripping a fitting wide array narrows losslessly.
        let ok = Offsets::U64(vec![0, 7, 7, 12]);
        let narrow = ok.with_width(OffsetWidth::U32).unwrap();
        assert_eq!(narrow.width(), OffsetWidth::U32);
        assert_eq!(narrow, ok);
    }

    #[test]
    fn push_set_and_bytes() {
        let mut o = Offsets::with_capacity(OffsetWidth::U32, 4);
        o.push(0);
        o.push(3);
        o.push(3);
        o.set(2, 4);
        assert_eq!(o.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
        assert_eq!(o.heap_bytes(), 4 * 4);
        assert!(Offsets::with_capacity(OffsetWidth::U64, 0).is_empty());
    }

    #[test]
    fn wire_tags_round_trip() {
        for w in [OffsetWidth::U32, OffsetWidth::U64] {
            assert_eq!(OffsetWidth::from_tag(w.tag()), Some(w));
        }
        assert_eq!(OffsetWidth::from_tag(0), None);
        assert_eq!(OffsetWidth::from_tag(3), None);
    }
}
