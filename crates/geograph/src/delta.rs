//! First-class graph deltas: the net effect of one window's edge events.
//!
//! The dynamic pipeline used to force every time window through a full
//! `GraphBuilder` replay into a fresh CSR, so window cost scaled with the
//! total graph instead of the update batch. A [`GraphDelta`] captures the
//! *net* mutation of a window — new vertices, inserted and deleted edges,
//! the deduped touched-vertex set, and per-endpoint degree changes — in a
//! canonical form that every downstream consumer (CSR overlay via
//! [`Graph::apply_delta`](crate::Graph::apply_delta), incremental placement
//! state, streaming baselines) can share.
//!
//! ## Contract
//!
//! A delta is always expressed **against a cleaned base graph** (deduped,
//! self-loop-free — [`crate::GraphBuilder`]'s default output) and is itself
//! cleaned the same way:
//!
//! * self-loop events are dropped,
//! * inserting an edge the base graph already has is a no-op,
//! * deleting an edge the base graph does not have is a no-op,
//! * within one window only the *last* event per edge key counts
//!   (insert-then-delete cancels out, delete-then-insert of an existing
//!   edge keeps it).
//!
//! Edge lists are sorted `(src, dst)` and duplicate-free; `touched` is the
//! sorted deduped set of endpoints whose adjacency actually changes. This
//! canonical form is what makes the incremental placement-state update
//! (geopart) bit-for-bit reproducible against a from-scratch rebuild.

use crate::csr::Graph;
use crate::dynamic::{EdgeEvent, EventKind};
use crate::fxhash::FxHashMap;
use crate::VertexId;

/// Net effect of a batch of edge events on a cleaned base graph.
///
/// Construct with [`GraphDelta::from_events`]; apply with
/// [`Graph::apply_delta`](crate::Graph::apply_delta) (CSR overlay) or the
/// incremental placement-state paths built on top of it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GraphDelta {
    old_num_vertices: usize,
    new_num_vertices: usize,
    /// Net-inserted edges, sorted by `(src, dst)`, duplicate-free, none
    /// present in the base graph.
    inserted: Vec<(VertexId, VertexId)>,
    /// Net-deleted edges, sorted by `(src, dst)`, duplicate-free, all
    /// present in the base graph.
    deleted: Vec<(VertexId, VertexId)>,
    /// Sorted deduped endpoints of `inserted ∪ deleted` — every vertex
    /// whose adjacency changes. New vertices appear here only if they gain
    /// an edge.
    touched: Vec<VertexId>,
    /// Sparse per-endpoint in-degree changes, sorted by vertex. Hybrid-cut
    /// classifies by in-degree, so these are exactly the vertices whose
    /// degree class can flip.
    in_degree_changes: Vec<(VertexId, i64)>,
    /// Sparse per-endpoint out-degree changes, sorted by vertex.
    out_degree_changes: Vec<(VertexId, i64)>,
}

impl GraphDelta {
    /// Computes the net effect of `events` (in order) against `graph`.
    ///
    /// Events referencing ids `>= graph.num_vertices()` grow the vertex
    /// set; `new_num_vertices` covers the highest id seen even when the
    /// event carrying it nets out (the vertex arrival still happened).
    pub fn from_events(graph: &Graph, events: &[EdgeEvent]) -> GraphDelta {
        let old_n = graph.num_vertices();
        let mut new_n = old_n;
        // Last event per edge key wins; insertion order of first touch is
        // kept so the later sort is over unique keys only.
        let mut last: FxHashMap<(VertexId, VertexId), EventKind> = FxHashMap::default();
        for e in events {
            new_n = new_n.max(e.src.max(e.dst) as usize + 1);
            if e.src == e.dst {
                continue; // cleaned form: self-loops dropped
            }
            last.insert((e.src, e.dst), e.kind);
        }
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        for (&(u, v), &kind) in &last {
            let exists = (u as usize) < old_n && (v as usize) < old_n && graph.has_edge(u, v);
            match kind {
                EventKind::Insert if !exists => inserted.push((u, v)),
                EventKind::Delete if exists => deleted.push((u, v)),
                _ => {} // insert-of-existing / delete-of-missing: no-ops
            }
        }
        inserted.sort_unstable();
        deleted.sort_unstable();
        Self::from_net_edges(old_n, new_n, inserted, deleted)
    }

    /// Assembles a delta from its *net* edge lists (sorted, duplicate-free,
    /// disjoint), deriving `touched` and the sparse degree changes exactly
    /// as [`from_events`](Self::from_events) would. This is the wire-decode
    /// path: the derived fields never travel, so they can't disagree.
    pub(crate) fn from_net_edges(
        old_n: usize,
        new_n: usize,
        inserted: Vec<(VertexId, VertexId)>,
        deleted: Vec<(VertexId, VertexId)>,
    ) -> GraphDelta {
        let mut touched: Vec<VertexId> = Vec::with_capacity(2 * (inserted.len() + deleted.len()));
        let mut degree_changes: FxHashMap<VertexId, (i64, i64)> = FxHashMap::default(); // (in, out)
        for &(u, v) in &inserted {
            touched.push(u);
            touched.push(v);
            degree_changes.entry(u).or_default().1 += 1;
            degree_changes.entry(v).or_default().0 += 1;
        }
        for &(u, v) in &deleted {
            touched.push(u);
            touched.push(v);
            degree_changes.entry(u).or_default().1 -= 1;
            degree_changes.entry(v).or_default().0 -= 1;
        }
        touched.sort_unstable();
        touched.dedup();
        let mut in_degree_changes: Vec<(VertexId, i64)> = degree_changes
            .iter()
            .filter(|&(_, &(din, _))| din != 0)
            .map(|(&v, &(din, _))| (v, din))
            .collect();
        let mut out_degree_changes: Vec<(VertexId, i64)> = degree_changes
            .iter()
            .filter(|&(_, &(_, dout))| dout != 0)
            .map(|(&v, &(_, dout))| (v, dout))
            .collect();
        in_degree_changes.sort_unstable();
        out_degree_changes.sort_unstable();

        GraphDelta {
            old_num_vertices: old_n,
            new_num_vertices: new_n,
            inserted,
            deleted,
            touched,
            in_degree_changes,
            out_degree_changes,
        }
    }

    /// Vertex count of the base graph this delta applies to.
    #[inline]
    pub fn old_num_vertices(&self) -> usize {
        self.old_num_vertices
    }

    /// Vertex count after applying the delta (graphs only grow).
    #[inline]
    pub fn new_num_vertices(&self) -> usize {
        self.new_num_vertices
    }

    /// Ids of vertices introduced by this delta (`old..new`, in order).
    pub fn new_vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.old_num_vertices as VertexId..self.new_num_vertices as VertexId
    }

    /// Net-inserted edges, sorted by `(src, dst)`.
    #[inline]
    pub fn inserted(&self) -> &[(VertexId, VertexId)] {
        &self.inserted
    }

    /// Net-deleted edges, sorted by `(src, dst)`; all exist in the base.
    #[inline]
    pub fn deleted(&self) -> &[(VertexId, VertexId)] {
        &self.deleted
    }

    /// Sorted deduped endpoints whose adjacency changes.
    #[inline]
    pub fn touched(&self) -> &[VertexId] {
        &self.touched
    }

    /// Sparse in-degree changes `(vertex, net change)`, sorted by vertex.
    #[inline]
    pub fn in_degree_changes(&self) -> &[(VertexId, i64)] {
        &self.in_degree_changes
    }

    /// Sparse out-degree changes `(vertex, net change)`, sorted by vertex.
    #[inline]
    pub fn out_degree_changes(&self) -> &[(VertexId, i64)] {
        &self.out_degree_changes
    }

    /// True when the delta neither grows the graph nor changes any edge.
    pub fn is_empty(&self) -> bool {
        self.new_num_vertices == self.old_num_vertices
            && self.inserted.is_empty()
            && self.deleted.is_empty()
    }

    /// Number of net edge mutations (`inserted + deleted`).
    pub fn num_edge_changes(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn ev(src: u32, dst: u32, ts: u64, kind: EventKind) -> EdgeEvent {
        EdgeEvent { src, dst, timestamp_ms: ts, kind }
    }

    fn base() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edges([(0u32, 1u32), (1, 2), (2, 3)]);
        b.build()
    }

    #[test]
    fn net_effect_semantics() {
        let g = base();
        let events = vec![
            ev(0, 1, 0, EventKind::Insert), // insert-of-existing: no-op
            ev(1, 2, 1, EventKind::Delete), // real delete
            ev(3, 0, 2, EventKind::Insert), // real insert
            ev(2, 3, 3, EventKind::Delete), // delete...
            ev(2, 3, 4, EventKind::Insert), // ...then re-insert: edge stays, no-op
            ev(0, 3, 5, EventKind::Delete), // delete-of-missing: no-op
            ev(1, 1, 6, EventKind::Insert), // self-loop: dropped
            ev(5, 0, 7, EventKind::Insert), // new vertex 5 (and 4 implicitly)
        ];
        let d = GraphDelta::from_events(&g, &events);
        assert_eq!(d.old_num_vertices(), 4);
        assert_eq!(d.new_num_vertices(), 6);
        assert_eq!(d.new_vertices().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(d.inserted(), &[(3, 0), (5, 0)]);
        assert_eq!(d.deleted(), &[(1, 2)]);
        assert_eq!(d.touched(), &[0, 1, 2, 3, 5]);
    }

    #[test]
    fn insert_then_delete_cancels() {
        let g = base();
        let events = vec![ev(0, 3, 0, EventKind::Insert), ev(0, 3, 1, EventKind::Delete)];
        let d = GraphDelta::from_events(&g, &events);
        assert!(d.inserted().is_empty() && d.deleted().is_empty());
        assert!(d.is_empty());
        assert!(d.touched().is_empty());
    }

    #[test]
    fn vertex_arrival_survives_cancelled_edge() {
        let g = base();
        // The edge nets out but vertex 7 still arrived.
        let events = vec![ev(7, 0, 0, EventKind::Insert), ev(7, 0, 1, EventKind::Delete)];
        let d = GraphDelta::from_events(&g, &events);
        assert_eq!(d.new_num_vertices(), 8);
        assert!(d.inserted().is_empty());
        assert!(!d.is_empty());
    }

    #[test]
    fn degree_changes_are_sparse_and_net() {
        let g = base();
        let events = vec![
            ev(0, 2, 0, EventKind::Insert), // 0.out+1, 2.in+1
            ev(1, 2, 1, EventKind::Delete), // 1.out-1, 2.in-1
        ];
        let d = GraphDelta::from_events(&g, &events);
        // 2's in-degree nets to zero => absent from the sparse list.
        assert_eq!(d.in_degree_changes(), &[] as &[(VertexId, i64)]);
        assert_eq!(d.out_degree_changes(), &[(0, 1), (1, -1)]);
    }

    #[test]
    fn duplicate_inserts_collapse() {
        let g = base();
        let events = vec![
            ev(0, 2, 0, EventKind::Insert),
            ev(0, 2, 1, EventKind::Insert),
            ev(0, 2, 2, EventKind::Insert),
        ];
        let d = GraphDelta::from_events(&g, &events);
        assert_eq!(d.inserted(), &[(0, 2)]);
        assert_eq!(d.num_edge_changes(), 1);
    }
}
