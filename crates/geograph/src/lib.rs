//! # geograph — graph substrate for RLCut
//!
//! This crate provides everything the RLCut partitioner and its baselines
//! need from a graph library:
//!
//! * [`Graph`] — an immutable, cache-friendly CSR representation with both
//!   out- and in-adjacency (hybrid-cut reasons about *in*-edges, analytics
//!   engines about *out*-edges).
//! * [`GraphBuilder`] — edge-list accumulation with deduplication and
//!   self-loop removal.
//! * [`generators`] — deterministic R-MAT, Erdős–Rényi and preferential
//!   attachment generators used to synthesize scaled analogs of the paper's
//!   datasets (LiveJournal, Orkut, uk-2005, it-2004, Twitter — Table II).
//! * [`datasets`] — those named presets, with per-dataset skew parameters.
//! * [`locality`] — geo-location assignment: every vertex gets a *home DC*
//!   drawn from a skewed regional distribution with tunable homophily,
//!   reproducing the paper's observation (Fig 1) that >75 % of Twitter's
//!   edges cross data centers.
//! * [`dynamic`] — timestamped edge streams and time-window iteration for
//!   dynamic-graph experiments (Fig 4, Exp#5).
//! * [`delta`] — first-class net-effect graph deltas ([`GraphDelta`]) and
//!   the CSR overlay ([`Graph::apply_delta`]) that advances a snapshot in
//!   work proportional to the update batch.
//! * [`io`] — plain edge-list reading/writing.
//! * [`transform`] — transpose, symmetrization, induced subgraphs, WCC
//!   extraction.
//! * [`weights`] — per-edge weights for weighted analytics.
//! * [`fxhash`] — a small Fx-style hasher for hot integer-keyed maps.
//!
//! All generators take explicit seeds; given the same seed they are
//! bit-for-bit reproducible.

pub mod builder;
pub mod compress;
pub mod csr;
pub mod datasets;
pub mod degree;
pub mod delta;
pub mod dynamic;
pub mod fxhash;
pub mod generators;
pub mod geo;
pub mod io;
pub mod locality;
pub mod mem;
pub mod offsets;
pub mod shard;
pub mod stream;
pub mod transform;
pub mod weights;
pub mod wire;

pub use builder::GraphBuilder;
pub use compress::{CompressPolicy, CompressedGraph};
pub use csr::Graph;
pub use datasets::Dataset;
pub use degree::DegreeStats;
pub use delta::GraphDelta;
pub use dynamic::{AppliedEvents, EdgeEvent, EdgeStream, EventKind, WindowSplitError, Windows};
pub use geo::GeoGraph;
pub use locality::LocalityConfig;
pub use mem::{current_rss_bytes, peak_rss_bytes, MemReport};
pub use offsets::{OffsetWidth, Offsets};
pub use shard::{route_delta, ShardDelta, ShardIngestReport, ShardSpec, ShardView};
pub use stream::{
    build_chunked, build_streamed, BuildError, ChunkedEdges, IngestPool, IngestReport, ScopedPool,
    StreamConfig,
};

/// Identifier of a vertex. Graphs are limited to `u32::MAX - 1` vertices,
/// which keeps adjacency arrays at half the size of `usize` ids and is far
/// beyond what a single simulation host holds.
pub type VertexId = u32;

/// Identifier of a data center (a partition). The RLCut plan machinery
/// stores replica sets as `u64` bitmasks, so at most 64 DCs are supported —
/// the paper uses 8.
pub type DcId = u8;

/// Maximum number of data centers supported by the bitmask replica sets.
pub const MAX_DCS: usize = 64;
