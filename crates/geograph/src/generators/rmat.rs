//! R-MAT (recursive matrix) power-law graph generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::GraphBuilder;
use crate::VertexId;

/// Parameters of the R-MAT model.
///
/// The four quadrant probabilities `(a, b, c, d)` must sum to 1. Larger `a`
/// concentrates edges among low-id vertices, producing heavier degree skew —
/// web graphs (uk-2005, it-2004) use a more skewed preset than social graphs
/// (LiveJournal, Orkut) in [`crate::datasets`].
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// Number of vertices in the output graph (not required to be a power
    /// of two; generation runs on the next power of two and folds ids back).
    pub num_vertices: usize,
    /// Number of edges to *attempt*; self-loops and duplicates are removed,
    /// so the output has at most this many.
    pub num_edges: usize,
    /// Quadrant probabilities.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level noise added to the quadrant probabilities, which avoids the
    /// unrealistically regular structure of noiseless R-MAT.
    pub noise: f64,
}

impl RmatConfig {
    /// A social-network-like preset (moderate skew).
    pub fn social(num_vertices: usize, num_edges: usize) -> Self {
        RmatConfig { num_vertices, num_edges, a: 0.57, b: 0.19, c: 0.19, noise: 0.1 }
    }

    /// A web-graph-like preset (heavy skew).
    pub fn web(num_vertices: usize, num_edges: usize) -> Self {
        RmatConfig { num_vertices, num_edges, a: 0.65, b: 0.15, c: 0.15, noise: 0.1 }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph. Deterministic for a fixed `(config, seed)`.
pub fn rmat(config: &RmatConfig, seed: u64) -> Graph {
    assert!(config.num_vertices >= 2, "R-MAT needs at least 2 vertices");
    let d = config.d();
    assert!(d >= 0.0 && config.a > 0.0, "quadrant probabilities must sum to 1");
    let levels = (usize::BITS - (config.num_vertices - 1).leading_zeros()) as usize;
    let n = config.num_vertices;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut builder = GraphBuilder::new(n).with_edge_capacity(config.num_edges);
    for _ in 0..config.num_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            // Perturb the quadrant probabilities a little per level.
            let jitter = |p: f64, r: &mut SmallRng| {
                (p * (1.0 - config.noise + 2.0 * config.noise * r.gen::<f64>())).max(1e-9)
            };
            let (pa, pb, pc, pd) = (
                jitter(config.a, &mut rng),
                jitter(config.b, &mut rng),
                jitter(config.c, &mut rng),
                jitter(d, &mut rng),
            );
            let total = pa + pb + pc + pd;
            let roll = rng.gen::<f64>() * total;
            u <<= 1;
            v <<= 1;
            if roll < pa {
                // top-left: neither bit set
            } else if roll < pa + pb {
                v |= 1;
            } else if roll < pa + pb + pc {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        // Fold ids generated on the 2^levels grid back into [0, n).
        builder.add_edge((u % n) as VertexId, (v % n) as VertexId);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig::social(1 << 10, 8 << 10);
        assert_eq!(rmat(&cfg, 7), rmat(&cfg, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RmatConfig::social(1 << 10, 8 << 10);
        assert_ne!(rmat(&cfg, 7), rmat(&cfg, 8));
    }

    #[test]
    fn respects_vertex_bound_for_non_power_of_two() {
        let cfg = RmatConfig::social(1000, 5000);
        let g = rmat(&cfg, 1);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 5000);
    }

    #[test]
    fn produces_skewed_degrees() {
        let cfg = RmatConfig::web(1 << 12, 32 << 12);
        let g = rmat(&cfg, 42);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_in as f64 > 10.0 * mean, "expected heavy skew: max_in={max_in} mean={mean:.1}");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let cfg = RmatConfig::social(256, 2048);
        let g = rmat(&cfg, 3);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            assert_ne!(u, v);
            assert!(seen.insert((u, v)));
        }
    }
}
