//! R-MAT (recursive matrix) power-law graph generator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::stream::{build_chunked, BuildError, ChunkedEdges, IngestPool, IngestReport};
use crate::GraphBuilder;
use crate::VertexId;

/// Parameters of the R-MAT model.
///
/// The four quadrant probabilities `(a, b, c, d)` must sum to 1. Larger `a`
/// concentrates edges among low-id vertices, producing heavier degree skew —
/// web graphs (uk-2005, it-2004) use a more skewed preset than social graphs
/// (LiveJournal, Orkut) in [`crate::datasets`].
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// Number of vertices in the output graph (not required to be a power
    /// of two; generation runs on the next power of two and folds ids back).
    pub num_vertices: usize,
    /// Number of edges to *attempt*; self-loops and duplicates are removed,
    /// so the output has at most this many.
    pub num_edges: usize,
    /// Quadrant probabilities.
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level noise added to the quadrant probabilities, which avoids the
    /// unrealistically regular structure of noiseless R-MAT.
    pub noise: f64,
}

impl RmatConfig {
    /// A social-network-like preset (moderate skew).
    pub fn social(num_vertices: usize, num_edges: usize) -> Self {
        RmatConfig { num_vertices, num_edges, a: 0.57, b: 0.19, c: 0.19, noise: 0.1 }
    }

    /// A web-graph-like preset (heavy skew).
    pub fn web(num_vertices: usize, num_edges: usize) -> Self {
        RmatConfig { num_vertices, num_edges, a: 0.65, b: 0.15, c: 0.15, noise: 0.1 }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// One R-MAT edge draw: descend `levels` quadrant choices with per-level
/// jitter. The RNG draw order (4 jitters + 1 roll per level) is part of the
/// output contract — both the legacy staged path and the chunked path go
/// through here, so refactors must not reorder draws.
#[inline]
fn sample_edge(
    config: &RmatConfig,
    d: f64,
    levels: usize,
    n: usize,
    rng: &mut SmallRng,
) -> (VertexId, VertexId) {
    let (mut u, mut v) = (0usize, 0usize);
    for _ in 0..levels {
        // Perturb the quadrant probabilities a little per level.
        let jitter = |p: f64, r: &mut SmallRng| {
            (p * (1.0 - config.noise + 2.0 * config.noise * r.gen::<f64>())).max(1e-9)
        };
        let (pa, pb, pc, pd) =
            (jitter(config.a, rng), jitter(config.b, rng), jitter(config.c, rng), jitter(d, rng));
        let total = pa + pb + pc + pd;
        let roll = rng.gen::<f64>() * total;
        u <<= 1;
        v <<= 1;
        if roll < pa {
            // top-left: neither bit set
        } else if roll < pa + pb {
            v |= 1;
        } else if roll < pa + pb + pc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    // Fold ids generated on the 2^levels grid back into [0, n).
    ((u % n) as VertexId, (v % n) as VertexId)
}

fn check_config(config: &RmatConfig) -> (f64, usize) {
    assert!(config.num_vertices >= 2, "R-MAT needs at least 2 vertices");
    let d = config.d();
    assert!(d >= 0.0 && config.a > 0.0, "quadrant probabilities must sum to 1");
    let levels = (usize::BITS - (config.num_vertices - 1).leading_zeros()) as usize;
    (d, levels)
}

/// Generates an R-MAT graph. Deterministic for a fixed `(config, seed)`.
pub fn rmat(config: &RmatConfig, seed: u64) -> Graph {
    let (d, levels) = check_config(config);
    let n = config.num_vertices;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut builder = GraphBuilder::new(n).with_edge_capacity(config.num_edges);
    for _ in 0..config.num_edges {
        let (u, v) = sample_edge(config, d, levels, n, &mut rng);
        builder.add_edge(u, v);
    }
    builder.build()
}

/// SplitMix64 finalizer over `(seed, chunk)` — decorrelates the per-chunk
/// RNG streams so chunk boundaries don't imprint structure on the graph.
pub(crate) fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    let mut z = seed ^ chunk.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// R-MAT as a re-emittable chunked stream: chunk `c` covers edge indices
/// `[c·chunk_edges, …)` and draws them from its own RNG seeded by
/// `(seed, c)`, so any chunk can be regenerated independently, in any
/// order, on any thread. Output is deterministic for a fixed
/// `(config, seed, chunk_edges)` — and *differs* from [`rmat`]'s sequential
/// stream, which is a separate, equally pinned contract.
pub struct RmatChunks {
    config: RmatConfig,
    seed: u64,
    chunk_edges: usize,
    d: f64,
    levels: usize,
}

impl RmatChunks {
    pub fn new(config: RmatConfig, seed: u64, chunk_edges: usize) -> Self {
        assert!(chunk_edges >= 1, "chunk_edges must be positive");
        let (d, levels) = check_config(&config);
        RmatChunks { config, seed, chunk_edges, d, levels }
    }
}

impl ChunkedEdges for RmatChunks {
    fn num_vertices(&self) -> usize {
        self.config.num_vertices
    }

    fn num_chunks(&self) -> usize {
        self.config.num_edges.div_ceil(self.chunk_edges)
    }

    fn edges_hint(&self) -> Option<u64> {
        Some(self.config.num_edges as u64)
    }

    fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
        let lo = chunk * self.chunk_edges;
        let hi = (lo + self.chunk_edges).min(self.config.num_edges);
        let mut rng = SmallRng::seed_from_u64(chunk_seed(self.seed, chunk as u64));
        let n = self.config.num_vertices;
        for _ in lo..hi {
            let (u, v) = sample_edge(&self.config, self.d, self.levels, n, &mut rng);
            sink(u, v);
        }
    }
}

/// Generates an R-MAT graph through the streaming two-pass ingest — no
/// staged edge list, cleaned exactly like [`rmat`] (dedup + self-loop
/// drop). Bit-identical for a fixed `(config, seed, chunk_edges)` at any
/// `pool.threads()`.
pub fn rmat_streamed(
    config: &RmatConfig,
    seed: u64,
    chunk_edges: usize,
    pool: &dyn IngestPool,
) -> Result<(Graph, IngestReport), BuildError> {
    let src = RmatChunks::new(*config, seed, chunk_edges);
    build_chunked(&src, crate::stream::StreamConfig::cleaned(), pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig::social(1 << 10, 8 << 10);
        assert_eq!(rmat(&cfg, 7), rmat(&cfg, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RmatConfig::social(1 << 10, 8 << 10);
        assert_ne!(rmat(&cfg, 7), rmat(&cfg, 8));
    }

    #[test]
    fn respects_vertex_bound_for_non_power_of_two() {
        let cfg = RmatConfig::social(1000, 5000);
        let g = rmat(&cfg, 1);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 5000);
    }

    #[test]
    fn produces_skewed_degrees() {
        let cfg = RmatConfig::web(1 << 12, 32 << 12);
        let g = rmat(&cfg, 42);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_in as f64 > 10.0 * mean, "expected heavy skew: max_in={max_in} mean={mean:.1}");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let cfg = RmatConfig::social(256, 2048);
        let g = rmat(&cfg, 3);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            assert_ne!(u, v);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn streamed_deterministic_across_thread_counts() {
        use crate::stream::ScopedPool;
        let cfg = RmatConfig::social(1 << 10, 8 << 10);
        let (g1, _) = rmat_streamed(&cfg, 7, 1024, &ScopedPool(1)).unwrap();
        for threads in [2, 4, 8] {
            let (g, rep) = rmat_streamed(&cfg, 7, 1024, &ScopedPool(threads)).unwrap();
            assert_eq!(g, g1, "threads={threads}");
            assert_eq!(rep.raw_edges, 8 << 10);
        }
    }

    #[test]
    fn streamed_chunk_size_is_part_of_the_contract() {
        use crate::stream::ScopedPool;
        let cfg = RmatConfig::social(1 << 10, 8 << 10);
        let (a, _) = rmat_streamed(&cfg, 7, 512, &ScopedPool(2)).unwrap();
        let (b, _) = rmat_streamed(&cfg, 7, 2048, &ScopedPool(2)).unwrap();
        assert_ne!(a, b, "different chunk sizes are different pinned streams");
    }

    #[test]
    fn streamed_has_rmat_shape() {
        use crate::stream::ScopedPool;
        let cfg = RmatConfig::web(1 << 12, 32 << 12);
        let (g, rep) = rmat_streamed(&cfg, 42, 4096, &ScopedPool(2)).unwrap();
        assert_eq!(g.num_vertices(), 1 << 12);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_in as f64 > 10.0 * mean, "expected heavy skew: max_in={max_in} mean={mean:.1}");
        // Streamed ingest must not stage the edge list: transients are the
        // 8-bytes-per-vertex counter planes only.
        assert_eq!(rep.transient_bytes, 8 * (1 << 12));
        assert!(rep.build_ratio() < 1.2, "ratio {}", rep.build_ratio());
    }

    #[test]
    fn legacy_rmat_unchanged_by_sampler_extraction() {
        // The exact edge-sampling loop as it stood before `sample_edge` was
        // factored out. The legacy sequential stream is a pinned contract
        // (seeded graphs feed every bench baseline), so the refactored path
        // must reproduce it draw for draw.
        let config = RmatConfig::social(1 << 9, 4 << 9);
        let seed = 12345u64;
        let d = config.d();
        let levels = (usize::BITS - (config.num_vertices - 1).leading_zeros()) as usize;
        let n = config.num_vertices;
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut builder = GraphBuilder::new(n).with_edge_capacity(config.num_edges);
        for _ in 0..config.num_edges {
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..levels {
                let jitter = |p: f64, r: &mut SmallRng| {
                    (p * (1.0 - config.noise + 2.0 * config.noise * r.gen::<f64>())).max(1e-9)
                };
                let (pa, pb, pc, pd) = (
                    jitter(config.a, &mut rng),
                    jitter(config.b, &mut rng),
                    jitter(config.c, &mut rng),
                    jitter(d, &mut rng),
                );
                let total = pa + pb + pc + pd;
                let roll = rng.gen::<f64>() * total;
                u <<= 1;
                v <<= 1;
                if roll < pa {
                } else if roll < pa + pb {
                    v |= 1;
                } else if roll < pa + pb + pc {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            builder.add_edge((u % n) as VertexId, (v % n) as VertexId);
        }
        assert_eq!(builder.build(), rmat(&config, seed));
    }
}
