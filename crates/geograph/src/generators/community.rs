//! Community-structured graphs (a stochastic-block-model / LFR-lite
//! generator) with power-law degrees.
//!
//! Real geo-distributed graphs cluster: users in one region follow each
//! other more. R-MAT gives degree skew but no controllable communities;
//! this generator gives both, and its ground-truth community labels can
//! seed geo-locality directly (each community homed in one DC), producing
//! workloads where locality-aware partitioning has real structure to find.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use super::rmat::chunk_seed;
use crate::csr::Graph;
use crate::stream::{build_chunked, BuildError, ChunkedEdges, IngestPool, IngestReport};
use crate::GraphBuilder;
use crate::VertexId;

/// Parameters of the community model.
#[derive(Clone, Debug)]
pub struct CommunityConfig {
    pub num_vertices: usize,
    pub num_edges: usize,
    /// Number of communities.
    pub num_communities: usize,
    /// Probability that an edge stays inside its source's community.
    pub intra_probability: f64,
    /// Zipf exponent for community sizes (0 = equal sizes).
    pub size_skew: f64,
    /// Power for degree-proportional endpoint sampling inside a community
    /// (1.0 = preferential-attachment-like skew, 0.0 = uniform).
    pub degree_skew: f64,
    pub seed: u64,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        CommunityConfig {
            num_vertices: 10_000,
            num_edges: 80_000,
            num_communities: 8,
            intra_probability: 0.7,
            size_skew: 0.8,
            degree_skew: 0.8,
            seed: 42,
        }
    }
}

/// A generated community graph: the structure plus ground-truth labels.
#[derive(Clone, Debug)]
pub struct CommunityGraph {
    pub graph: Graph,
    /// Community id per vertex.
    pub communities: Vec<u32>,
}

/// Deterministic (RNG-free) community layout: per-vertex labels plus
/// `(start, len)` boundaries per community. Shared by the staged and
/// streamed generators so both see identical community structure.
fn community_layout(config: &CommunityConfig) -> (Vec<u32>, Vec<(usize, usize)>) {
    assert!(config.num_vertices >= config.num_communities);
    assert!(config.num_communities >= 1);
    assert!((0.0..=1.0).contains(&config.intra_probability));
    let n = config.num_vertices;
    let k = config.num_communities;

    // Zipf-ish community sizes, then assign vertices contiguously.
    let weights: Vec<f64> = (1..=k).map(|i| 1.0 / (i as f64).powf(config.size_skew)).collect();
    let total: f64 = weights.iter().sum();
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| ((w / total) * n as f64).max(1.0) as usize).collect();
    // Fix rounding drift onto the largest community.
    let assigned: usize = sizes.iter().sum();
    if assigned < n {
        sizes[0] += n - assigned;
    } else {
        let mut extra = assigned - n;
        for s in sizes.iter_mut() {
            let take = extra.min(s.saturating_sub(1));
            *s -= take;
            extra -= take;
            if extra == 0 {
                break;
            }
        }
    }
    let mut communities = Vec::with_capacity(n);
    let mut boundaries = Vec::with_capacity(k); // (start, len) per community
    let mut cursor = 0usize;
    for (c, &size) in sizes.iter().enumerate() {
        boundaries.push((cursor, size));
        communities.extend(std::iter::repeat_n(c as u32, size));
        cursor += size;
    }
    debug_assert_eq!(communities.len(), n);
    (communities, boundaries)
}

/// Skewed member sampling: index ~ floor(size * u^(1+skew)) biases small
/// indices, giving each community internal hubs.
#[inline]
fn pick(rng: &mut SmallRng, start: usize, len: usize, skew: f64) -> VertexId {
    let u: f64 = rng.gen();
    (start + ((len as f64) * u.powf(1.0 + skew)) as usize).min(start + len - 1) as VertexId
}

/// One community edge draw. Draw order (source community, source pick,
/// intra roll, [other community], destination pick) is part of the pinned
/// output contract for both the staged and chunked paths.
#[inline]
fn sample_edge(
    config: &CommunityConfig,
    boundaries: &[(usize, usize)],
    rng: &mut SmallRng,
) -> (VertexId, VertexId) {
    let k = config.num_communities;
    let c_src = rng.gen_range(0..k);
    let (s_start, s_len) = boundaries[c_src];
    let u = pick(rng, s_start, s_len, config.degree_skew);
    let c_dst = if rng.gen::<f64>() < config.intra_probability {
        c_src
    } else {
        // Uniform over the other communities.
        let mut other = rng.gen_range(0..k - 1);
        if other >= c_src {
            other += 1;
        }
        other
    };
    let (d_start, d_len) = boundaries[c_dst];
    let v = pick(rng, d_start, d_len, config.degree_skew);
    (u, v)
}

/// Generates a community-structured digraph. Deterministic per config.
pub fn community_graph(config: &CommunityConfig) -> CommunityGraph {
    let (communities, boundaries) = community_layout(config);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xe07a_b367_11cd_4021);
    let mut builder = GraphBuilder::new(config.num_vertices).with_edge_capacity(config.num_edges);
    for _ in 0..config.num_edges {
        let (u, v) = sample_edge(config, &boundaries, &mut rng);
        builder.add_edge(u, v);
    }
    CommunityGraph { graph: builder.build(), communities }
}

/// The community model as a re-emittable chunked stream (edges are i.i.d.
/// given the layout, so any chunk regenerates independently from its own
/// `(seed, chunk)` RNG). Deterministic for a fixed
/// `(config, chunk_edges)`; a distinct stream from [`community_graph`]'s.
pub struct CommunityChunks {
    config: CommunityConfig,
    boundaries: Vec<(usize, usize)>,
    chunk_edges: usize,
}

impl CommunityChunks {
    pub fn new(config: CommunityConfig, chunk_edges: usize) -> Self {
        assert!(chunk_edges >= 1, "chunk_edges must be positive");
        let (_, boundaries) = community_layout(&config);
        CommunityChunks { config, boundaries, chunk_edges }
    }
}

impl ChunkedEdges for CommunityChunks {
    fn num_vertices(&self) -> usize {
        self.config.num_vertices
    }

    fn num_chunks(&self) -> usize {
        self.config.num_edges.div_ceil(self.chunk_edges)
    }

    fn edges_hint(&self) -> Option<u64> {
        Some(self.config.num_edges as u64)
    }

    fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
        let lo = chunk * self.chunk_edges;
        let hi = (lo + self.chunk_edges).min(self.config.num_edges);
        let mut rng = SmallRng::seed_from_u64(chunk_seed(
            self.config.seed ^ 0xe07a_b367_11cd_4021,
            chunk as u64,
        ));
        for _ in lo..hi {
            let (u, v) = sample_edge(&self.config, &self.boundaries, &mut rng);
            sink(u, v);
        }
    }
}

/// Generates a community graph through the streaming two-pass ingest — no
/// staged edge list, same cleaning as [`community_graph`]. Bit-identical
/// for a fixed `(config, chunk_edges)` at any `pool.threads()`.
pub fn community_graph_streamed(
    config: &CommunityConfig,
    chunk_edges: usize,
    pool: &dyn IngestPool,
) -> Result<(CommunityGraph, IngestReport), BuildError> {
    let (communities, _) = community_layout(config);
    let src = CommunityChunks::new(config.clone(), chunk_edges);
    let (graph, report) = build_chunked(&src, crate::stream::StreamConfig::cleaned(), pool)?;
    Ok((CommunityGraph { graph, communities }, report))
}

/// Fraction of edges internal to their ground-truth community.
pub fn intra_community_fraction(cg: &CommunityGraph) -> f64 {
    let m = cg.graph.num_edges();
    if m == 0 {
        return 1.0;
    }
    let intra = cg
        .graph
        .edges()
        .filter(|&(u, v)| cg.communities[u as usize] == cg.communities[v as usize])
        .count();
    intra as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CommunityConfig {
        CommunityConfig { num_vertices: 2000, num_edges: 16_000, ..Default::default() }
    }

    #[test]
    fn deterministic() {
        let a = community_graph(&cfg());
        let b = community_graph(&cfg());
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
    }

    #[test]
    fn covers_all_vertices_with_labels() {
        let cg = community_graph(&cfg());
        assert_eq!(cg.communities.len(), 2000);
        let max = *cg.communities.iter().max().unwrap();
        assert_eq!(max as usize, cfg().num_communities - 1);
    }

    #[test]
    fn intra_probability_controls_community_strength() {
        let strong = community_graph(&CommunityConfig { intra_probability: 0.9, ..cfg() });
        let weak = community_graph(&CommunityConfig { intra_probability: 0.2, ..cfg() });
        let fs = intra_community_fraction(&strong);
        let fw = intra_community_fraction(&weak);
        assert!(fs > 0.8, "strong {fs}");
        assert!(fw < 0.4, "weak {fw}");
    }

    #[test]
    fn size_skew_makes_unequal_communities() {
        let cg = community_graph(&CommunityConfig { size_skew: 1.2, ..cfg() });
        let mut counts = vec![0usize; cfg().num_communities];
        for &c in &cg.communities {
            counts[c as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > 3 * min, "sizes too even: {counts:?}");
    }

    #[test]
    fn degree_skew_creates_hubs() {
        let cg = community_graph(&CommunityConfig { degree_skew: 1.5, ..cfg() });
        let stats = crate::degree::DegreeStats::compute(&cg.graph);
        assert!(
            stats.max_in as f64 > 8.0 * stats.mean_in,
            "max {} mean {}",
            stats.max_in,
            stats.mean_in
        );
    }

    #[test]
    fn legacy_stream_unchanged_by_sampler_extraction() {
        // The edge loop exactly as it stood before `sample_edge` was
        // factored out; the staged generator must reproduce it draw for
        // draw (seeded community graphs feed the locality experiments).
        let config = cfg();
        let (communities, boundaries) = community_layout(&config);
        let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xe07a_b367_11cd_4021);
        let k = config.num_communities;
        let pick = |rng: &mut SmallRng, start: usize, len: usize, skew: f64| -> VertexId {
            let u: f64 = rng.gen();
            (start + ((len as f64) * u.powf(1.0 + skew)) as usize).min(start + len - 1) as VertexId
        };
        let mut builder = GraphBuilder::new(config.num_vertices);
        for _ in 0..config.num_edges {
            let c_src = rng.gen_range(0..k);
            let (s_start, s_len) = boundaries[c_src];
            let u = pick(&mut rng, s_start, s_len, config.degree_skew);
            let c_dst = if rng.gen::<f64>() < config.intra_probability {
                c_src
            } else {
                let mut other = rng.gen_range(0..k - 1);
                if other >= c_src {
                    other += 1;
                }
                other
            };
            let (d_start, d_len) = boundaries[c_dst];
            let v = pick(&mut rng, d_start, d_len, config.degree_skew);
            builder.add_edge(u, v);
        }
        let expected = CommunityGraph { graph: builder.build(), communities };
        let got = community_graph(&config);
        assert_eq!(got.graph, expected.graph);
        assert_eq!(got.communities, expected.communities);
    }

    #[test]
    fn streamed_deterministic_and_structured() {
        use crate::stream::ScopedPool;
        let (a, _) = community_graph_streamed(&cfg(), 1024, &ScopedPool(1)).unwrap();
        let (b, rep) = community_graph_streamed(&cfg(), 1024, &ScopedPool(4)).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
        assert_eq!(rep.raw_edges, 16_000);
        // Community structure survives the chunked RNG: intra fraction
        // still tracks intra_probability (0.7 default).
        let f = intra_community_fraction(&a);
        assert!(f > 0.5, "intra fraction {f}");
    }

    #[test]
    fn community_labels_make_good_geo_locations() {
        // The point of the generator: community = home DC gives a
        // realistic mostly-but-not-fully local edge distribution.
        let cg = community_graph(&cfg());
        let locations: Vec<crate::DcId> =
            cg.communities.iter().map(|&c| c as crate::DcId).collect();
        let frac = crate::locality::inter_dc_edge_fraction(&cg.graph, &locations);
        assert!(frac > 0.1 && frac < 0.5, "inter-DC fraction {frac}");
    }
}
