//! Preferential-attachment ("rich get richer") edge sequences.
//!
//! Unlike R-MAT, this generator has a natural *arrival order*: vertex `t`
//! joins at time `t` and wires to existing vertices proportionally to their
//! current degree. Dynamic-graph experiments (Fig 4, Exp#5) use it to
//! produce realistic insertion streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::stream::{build_streamed, BuildError, IngestReport, StreamConfig};
use crate::GraphBuilder;
use crate::VertexId;

/// Generates a preferential-attachment digraph: each new vertex adds
/// `edges_per_vertex` out-edges to targets sampled proportionally to
/// in-degree + 1. Returns the edges in arrival order (useful for streams)
/// along with the built graph.
pub fn preferential_attachment_edges(
    num_vertices: usize,
    edges_per_vertex: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    assert!(num_vertices >= 2);
    assert!(edges_per_vertex >= 1);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    // `targets` holds one entry per (in-degree + 1) unit, so uniform sampling
    // from it is degree-proportional sampling.
    let mut targets: Vec<VertexId> = vec![0, 1];
    let mut edges = Vec::with_capacity(num_vertices * edges_per_vertex);
    edges.push((0 as VertexId, 1 as VertexId));
    targets.push(1);
    for v in 2..num_vertices as VertexId {
        targets.push(v); // the +1 smoothing entry for the newcomer
        for _ in 0..edges_per_vertex {
            let t = targets[rng.gen_range(0..targets.len())];
            if t == v {
                continue;
            }
            edges.push((v, t));
            targets.push(t);
        }
    }
    edges
}

/// Convenience wrapper building the final [`Graph`] from
/// [`preferential_attachment_edges`].
pub fn preferential_attachment(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> Graph {
    let edges = preferential_attachment_edges(num_vertices, edges_per_vertex, seed);
    let mut b = GraphBuilder::new(num_vertices).with_edge_capacity(edges.len());
    b.add_edges(edges);
    b.build()
}

/// The preferential-attachment edge sequence as a lazily regenerated
/// iterator, emitting exactly [`preferential_attachment_edges`]'s output.
///
/// The model is inherently sequential — each draw depends on the degree
/// state accumulated by all earlier draws — so it cannot be chunked. But it
/// *can* be replayed from the seed, which is all two-pass ingest needs: the
/// per-pass transient is the degree-proportional `targets` table
/// (4 bytes/edge) instead of the 8-bytes/edge staged pair list **plus** its
/// cleaning clone.
pub struct PrefIter {
    num_vertices: usize,
    edges_per_vertex: usize,
    rng: SmallRng,
    targets: Vec<VertexId>,
    v: VertexId,
    attempts_left: usize,
    emitted_seed_edge: bool,
}

impl PrefIter {
    pub fn new(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> Self {
        assert!(num_vertices >= 2);
        assert!(edges_per_vertex >= 1);
        PrefIter {
            num_vertices,
            edges_per_vertex,
            rng: SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d),
            // Post-seed-edge state: entries for 0, 1 and the (0,1) edge.
            targets: vec![0, 1, 1],
            v: 1,
            attempts_left: 0,
            emitted_seed_edge: false,
        }
    }
}

impl Iterator for PrefIter {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<(VertexId, VertexId)> {
        if !self.emitted_seed_edge {
            self.emitted_seed_edge = true;
            return Some((0, 1));
        }
        loop {
            if self.attempts_left == 0 {
                let next = self.v as usize + 1;
                if next >= self.num_vertices {
                    return None;
                }
                self.v = next as VertexId;
                self.targets.push(self.v); // the +1 smoothing entry
                self.attempts_left = self.edges_per_vertex;
            }
            self.attempts_left -= 1;
            let t = self.targets[self.rng.gen_range(0..self.targets.len())];
            if t == self.v {
                continue;
            }
            self.targets.push(t);
            return Some((self.v, t));
        }
    }
}

/// Builds the preferential-attachment graph through streamed two-pass
/// ingest (the sequence is regenerated per pass from the seed — no staged
/// pair list). Bit-identical to [`preferential_attachment`].
pub fn preferential_attachment_streamed(
    num_vertices: usize,
    edges_per_vertex: usize,
    seed: u64,
) -> Result<(Graph, IngestReport), BuildError> {
    build_streamed(
        num_vertices,
        || PrefIter::new(num_vertices, edges_per_vertex, seed),
        StreamConfig::cleaned(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment_edges(500, 3, 11),
            preferential_attachment_edges(500, 3, 11)
        );
    }

    #[test]
    fn arrival_order_is_by_source() {
        let edges = preferential_attachment_edges(200, 2, 1);
        let sources: Vec<_> = edges.iter().map(|&(u, _)| u).collect();
        let mut sorted = sources.clone();
        sorted.sort_unstable();
        assert_eq!(sources, sorted, "edges must arrive in vertex-join order");
    }

    #[test]
    fn targets_precede_sources() {
        for &(u, v) in &preferential_attachment_edges(300, 2, 2) {
            assert!(v < u || (u, v) == (0, 1), "edge ({u},{v}) targets a future vertex");
        }
    }

    #[test]
    fn iter_replays_the_staged_sequence_exactly() {
        let staged = preferential_attachment_edges(500, 3, 11);
        let replayed: Vec<_> = PrefIter::new(500, 3, 11).collect();
        assert_eq!(staged, replayed);
    }

    #[test]
    fn streamed_build_matches_staged_graph() {
        let staged = preferential_attachment(800, 3, 7);
        let (streamed, rep) = preferential_attachment_streamed(800, 3, 7).unwrap();
        assert_eq!(streamed, staged);
        assert!(rep.raw_edges > 0);
    }

    #[test]
    fn produces_skew() {
        let g = preferential_attachment(2000, 4, 3);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_in as f64 > 8.0 * mean, "max_in={max_in} mean={mean:.1}");
    }
}
