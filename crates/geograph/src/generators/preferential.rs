//! Preferential-attachment ("rich get richer") edge sequences.
//!
//! Unlike R-MAT, this generator has a natural *arrival order*: vertex `t`
//! joins at time `t` and wires to existing vertices proportionally to their
//! current degree. Dynamic-graph experiments (Fig 4, Exp#5) use it to
//! produce realistic insertion streams.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::GraphBuilder;
use crate::VertexId;

/// Generates a preferential-attachment digraph: each new vertex adds
/// `edges_per_vertex` out-edges to targets sampled proportionally to
/// in-degree + 1. Returns the edges in arrival order (useful for streams)
/// along with the built graph.
pub fn preferential_attachment_edges(
    num_vertices: usize,
    edges_per_vertex: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    assert!(num_vertices >= 2);
    assert!(edges_per_vertex >= 1);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x2545_f491_4f6c_dd1d);
    // `targets` holds one entry per (in-degree + 1) unit, so uniform sampling
    // from it is degree-proportional sampling.
    let mut targets: Vec<VertexId> = vec![0, 1];
    let mut edges = Vec::with_capacity(num_vertices * edges_per_vertex);
    edges.push((0 as VertexId, 1 as VertexId));
    targets.push(1);
    for v in 2..num_vertices as VertexId {
        targets.push(v); // the +1 smoothing entry for the newcomer
        for _ in 0..edges_per_vertex {
            let t = targets[rng.gen_range(0..targets.len())];
            if t == v {
                continue;
            }
            edges.push((v, t));
            targets.push(t);
        }
    }
    edges
}

/// Convenience wrapper building the final [`Graph`] from
/// [`preferential_attachment_edges`].
pub fn preferential_attachment(num_vertices: usize, edges_per_vertex: usize, seed: u64) -> Graph {
    let edges = preferential_attachment_edges(num_vertices, edges_per_vertex, seed);
    let mut b = GraphBuilder::new(num_vertices).with_edge_capacity(edges.len());
    b.add_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment_edges(500, 3, 11),
            preferential_attachment_edges(500, 3, 11)
        );
    }

    #[test]
    fn arrival_order_is_by_source() {
        let edges = preferential_attachment_edges(200, 2, 1);
        let sources: Vec<_> = edges.iter().map(|&(u, _)| u).collect();
        let mut sorted = sources.clone();
        sorted.sort_unstable();
        assert_eq!(sources, sorted, "edges must arrive in vertex-join order");
    }

    #[test]
    fn targets_precede_sources() {
        for &(u, v) in &preferential_attachment_edges(300, 2, 2) {
            assert!(v < u || (u, v) == (0, 1), "edge ({u},{v}) targets a future vertex");
        }
    }

    #[test]
    fn produces_skew() {
        let g = preferential_attachment(2000, 4, 3);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(max_in as f64 > 8.0 * mean, "max_in={max_in} mean={mean:.1}");
    }
}
