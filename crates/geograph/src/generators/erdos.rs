//! Erdős–Rényi uniform random digraphs (the no-skew control).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::GraphBuilder;
use crate::VertexId;

/// Generates a `G(n, m)`-style random digraph: `num_edges` directed edges
/// drawn uniformly (without self-loops, deduplicated). Deterministic for a
/// fixed seed.
///
/// Used as a control in tests and ablations: on a uniform graph hybrid-cut's
/// degree differentiation should buy little, and RLCut's degree-aware
/// sampling (Fig 9) should show a flatter curve.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> Graph {
    assert!(num_vertices >= 2, "need at least 2 vertices");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xd1b5_4a32_d192_ed03);
    let mut builder = GraphBuilder::new(num_vertices).with_edge_capacity(num_edges);
    for _ in 0..num_edges {
        let u = rng.gen_range(0..num_vertices) as VertexId;
        let v = rng.gen_range(0..num_vertices) as VertexId;
        builder.add_edge(u, v);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(100, 500, 1), erdos_renyi(100, 500, 1));
    }

    #[test]
    fn approximately_uniform_degrees() {
        let g = erdos_renyi(1000, 20_000, 5);
        let max_in = g.vertices().map(|v| g.in_degree(v)).max().unwrap();
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        // Poisson tail: max should stay within a small factor of the mean.
        assert!(
            (max_in as f64) < 4.0 * mean,
            "uniform graph unexpectedly skewed: max_in={max_in} mean={mean:.1}"
        );
    }

    #[test]
    fn edge_count_close_to_requested() {
        let g = erdos_renyi(10_000, 50_000, 9);
        // Duplicates/self-loops removed; loss should be small at this density.
        assert!(g.num_edges() > 49_000, "got {}", g.num_edges());
    }
}
