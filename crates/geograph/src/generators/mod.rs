//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on five real graphs (Table II). Those datasets are
//! multi-GB downloads we cannot ship, so the reproduction generates scaled
//! analogs with matching density and degree skew (see `DESIGN.md` §2). Three
//! families cover the space:
//!
//! * [`rmat`] — recursive-matrix graphs; the standard model for power-law
//!   web/social graphs, parameterized per dataset in [`crate::datasets`].
//! * [`erdos`] — uniform random digraphs, the no-skew control.
//! * [`preferential`] — Barabási–Albert-style preferential attachment,
//!   used by dynamic experiments where edges must *arrive over time* with
//!   a realistic rich-get-richer pattern.
//! * [`community`] — a stochastic-block-model generator with ground-truth
//!   communities, for workloads where geo-locality has real structure.

pub mod community;
pub mod erdos;
pub mod preferential;
pub mod rmat;

pub use community::{
    community_graph, community_graph_streamed, CommunityChunks, CommunityConfig, CommunityGraph,
};
pub use erdos::erdos_renyi;
pub use preferential::{preferential_attachment, preferential_attachment_streamed, PrefIter};
pub use rmat::{rmat, rmat_streamed, RmatChunks, RmatConfig};
