//! A small Fx-style hasher for hot integer-keyed maps.
//!
//! The default `std` hasher (SipHash 1-3) is DoS-resistant but slow for the
//! integer keys that dominate partitioning workloads (vertex and DC ids).
//! Rather than pull in `rustc-hash`, this is the same multiply-xor scheme in
//! ~40 lines, per the perf-guide recommendation.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast, non-cryptographic hasher (the rustc Fx scheme).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// Stateless 64-bit mix, handy for hash-based partitioners (HashPL, RandPG)
/// that need a deterministic "random" DC per id without an RNG stream.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);
    }

    #[test]
    fn deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn mix64_spreads_sequential_keys() {
        // Sequential ids must land in different low-order buckets.
        let buckets: FxHashSet<u64> = (0..64u64).map(|i| mix64(i) % 64).collect();
        assert!(buckets.len() > 32, "mix64 bucketed {} of 64", buckets.len());
    }

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(123456789), mix64(123456789));
    }
}
