//! Per-edge weights, stored flat against the out-CSR layout.
//!
//! The partitioning models are weight-agnostic (hybrid-cut places edges by
//! degree class, not cost), but analytics like weighted SSSP need edge
//! weights; this keeps them out of [`crate::Graph`] so unweighted users
//! pay nothing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::csr::Graph;
use crate::VertexId;

/// Edge weights aligned with [`Graph::edges`] order: the weight of the
/// `k`-th out-edge of `v` lives at `graph.out_edge_offset(v) + k`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeWeights {
    weights: Vec<u32>,
}

impl EdgeWeights {
    /// All edges weigh `w`.
    pub fn uniform(graph: &Graph, w: u32) -> Self {
        EdgeWeights { weights: vec![w; graph.num_edges()] }
    }

    /// Weights drawn uniformly from `min..=max` (deterministic per seed).
    pub fn random(graph: &Graph, min: u32, max: u32, seed: u64) -> Self {
        assert!(min <= max && min > 0, "weights must be positive");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1f83_d9ab_fb41_bd6b);
        EdgeWeights { weights: (0..graph.num_edges()).map(|_| rng.gen_range(min..=max)).collect() }
    }

    /// From an explicit vector aligned with `graph.edges()` order.
    pub fn from_vec(graph: &Graph, weights: Vec<u32>) -> Self {
        assert_eq!(weights.len(), graph.num_edges());
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        EdgeWeights { weights }
    }

    /// Weight of the `k`-th out-edge of `v`.
    #[inline]
    pub fn of(&self, graph: &Graph, v: VertexId, k: usize) -> u32 {
        self.weights[graph.out_edge_offset(v) + k]
    }

    /// Number of weighted edges.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Graph {
        Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)])
    }

    #[test]
    fn uniform_weights() {
        let g = g();
        let w = EdgeWeights::uniform(&g, 5);
        assert_eq!(w.of(&g, 0, 0), 5);
        assert_eq!(w.of(&g, 1, 0), 5);
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn random_in_range_and_deterministic() {
        let g = g();
        let a = EdgeWeights::random(&g, 2, 9, 7);
        let b = EdgeWeights::random(&g, 2, 9, 7);
        assert_eq!(a, b);
        for k in 0..2 {
            let w = a.of(&g, 0, k);
            assert!((2..=9).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let g = g();
        EdgeWeights::from_vec(&g, vec![1, 0, 2]);
    }

    #[test]
    fn indexing_matches_edges_order() {
        let g = g();
        let w = EdgeWeights::from_vec(&g, vec![10, 20, 30]);
        // edges() order: (0,1), (0,2), (1,2)
        assert_eq!(w.of(&g, 0, 0), 10);
        assert_eq!(w.of(&g, 0, 1), 20);
        assert_eq!(w.of(&g, 1, 0), 30);
    }
}
