//! Training telemetry: what the paper plots in Fig 6/8/13/14 and reports
//! as "optimization overhead" in Tables III/IV.

use std::time::Duration;

use geopart::{HybridState, Objective};
use geosim::CloudEnv;

/// Per-training-step telemetry.
#[derive(Clone, Copy, Debug)]
pub struct StepStats {
    /// Wall-clock duration of the step.
    pub duration: Duration,
    /// Time spent in the parallel score-function phase (steps 1-2 of
    /// Fig 5) — the dominant cost per §V-B.
    pub score_duration: Duration,
    /// Time spent in the batched vertex-migration phase (step 5, §V-A).
    pub migrate_duration: Duration,
    /// Sampling rate used (fraction of agents trained).
    pub sample_rate: f64,
    /// Number of agents that trained.
    pub num_agents: usize,
    /// Accepted vertex migrations.
    pub migrations: usize,
    /// Transfer time (Eq 1) after the step.
    pub transfer_time: f64,
    /// Total cost (Eq 4 + Eq 5) after the step.
    pub total_cost: f64,
}

/// The outcome of one RLCut training run.
pub struct RlCutResult<'g> {
    /// The trained plan.
    pub state: HybridState<'g>,
    /// Per-step telemetry.
    pub steps: Vec<StepStats>,
    /// Total wall-clock optimization overhead (what Table III reports).
    pub total_duration: Duration,
    /// Whether training stopped on convergence (vs exhausting steps or the
    /// time budget).
    pub converged: bool,
}

impl<'g> RlCutResult<'g> {
    /// Final objective of the trained plan.
    pub fn final_objective(&self, env: &CloudEnv) -> Objective {
        self.state.objective(env)
    }

    /// Total accepted migrations across steps.
    pub fn total_migrations(&self) -> usize {
        self.steps.iter().map(|s| s.migrations).sum()
    }

    /// The per-step `(sample_rate, seconds)` series of Fig 14.
    pub fn sampling_history(&self) -> Vec<(f64, f64)> {
        self.steps.iter().map(|s| (s.sample_rate, s.duration.as_secs_f64())).collect()
    }
}
