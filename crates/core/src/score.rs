//! The Eq 10 score function and its adaptive `tw`/`cw` weight schedule.

use geopart::Objective;

/// The adaptive objective weights of Eq 10.
///
/// `cw = iter / max_iter` grows linearly over training, but the cost term
/// only participates while the current plan exceeds the budget
/// (`δ(C_l − B)`); under budget the score is pure performance
/// (`tw = 1`). This is the paper's "explore early, enforce feasibility
/// late" schedule (§IV-C.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Weights {
    pub tw: f64,
    pub cw: f64,
}

impl Weights {
    /// Weights at training step `iter` of `max_iter`, given whether the
    /// current plan is over budget.
    pub fn at(iter: usize, max_iter: usize, over_budget: bool) -> Self {
        let cw_raw = if max_iter == 0 { 1.0 } else { iter as f64 / max_iter as f64 };
        let cw = if over_budget { cw_raw } else { 0.0 };
        Weights { tw: 1.0 - cw, cw }
    }
}

/// The Eq 10 score of a candidate move: relative transfer-time improvement
/// weighted by `tw` plus relative cost improvement weighted by `cw`
/// (`cw` is already gated on the budget in [`Weights::at`]).
///
/// `last` is the current plan's objective (`T_l`, `C_l`); `candidate` is
/// the objective after the candidate action (`T_a`, `C_a`).
pub fn score(last: &Objective, candidate: &Objective, weights: Weights) -> f64 {
    let time_term = if last.transfer_time > 0.0 {
        (last.transfer_time - candidate.transfer_time) / last.transfer_time
    } else {
        // Perfect plan already: any move with traffic is a strict regression.
        if candidate.transfer_time > 0.0 {
            -1.0
        } else {
            0.0
        }
    };
    let last_cost = last.total_cost();
    let cost_term = if weights.cw > 0.0 && last_cost > 0.0 {
        (last_cost - candidate.total_cost()) / last_cost
    } else {
        0.0
    };
    weights.tw * time_term + weights.cw * cost_term
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(t: f64, mv: f64, rt: f64) -> Objective {
        Objective { transfer_time: t, movement_cost: mv, runtime_cost: rt }
    }

    #[test]
    fn under_budget_is_pure_performance() {
        let w = Weights::at(5, 10, false);
        assert_eq!(w.tw, 1.0);
        assert_eq!(w.cw, 0.0);
        // Cost regressions are invisible while under budget.
        let s = score(&obj(10.0, 0.0, 1.0), &obj(8.0, 5.0, 5.0), w);
        assert!((s - 0.2).abs() < 1e-12);
    }

    #[test]
    fn over_budget_blends_cost() {
        let w = Weights::at(5, 10, true);
        assert_eq!(w.cw, 0.5);
        assert_eq!(w.tw, 0.5);
        // Time unchanged, cost halved: score = 0.5 * 0.5.
        let s = score(&obj(10.0, 2.0, 2.0), &obj(10.0, 1.0, 1.0), w);
        assert!((s - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cost_pressure_grows_over_training() {
        let early = Weights::at(1, 10, true);
        let late = Weights::at(9, 10, true);
        assert!(late.cw > early.cw);
        assert!(late.tw < early.tw);
    }

    #[test]
    fn perfect_plan_rejects_any_traffic() {
        let w = Weights::at(0, 10, false);
        assert!(score(&obj(0.0, 0.0, 0.0), &obj(1.0, 0.0, 0.0), w) < 0.0);
        assert_eq!(score(&obj(0.0, 0.0, 0.0), &obj(0.0, 0.0, 0.0), w), 0.0);
    }

    #[test]
    fn improvement_positive_regression_negative() {
        let w = Weights::at(0, 10, false);
        assert!(score(&obj(10.0, 0.0, 0.0), &obj(5.0, 0.0, 0.0), w) > 0.0);
        assert!(score(&obj(10.0, 0.0, 0.0), &obj(15.0, 0.0, 0.0), w) < 0.0);
    }
}
