//! Self-healing training under WAN faults: the driver half of the recovery
//! policy.
//!
//! [`train_under_faults`] runs the Fig 5 loop against a time-indexed
//! [`FaultSchedule`], treating each wall-clock training step as one tick of
//! the schedule. When a fault fires:
//!
//! * **DC outage** is modeled as a coordinator crash — the in-memory
//!   trainer state is lost, so the run restores the last durable
//!   [`TrainerCheckpoint`] (LA probabilities, UCB statistics, RNG,
//!   placement) and then evacuates every master off the dark DC via the
//!   batched move-evaluation kernel. Training *continues* from the
//!   restored automata state rather than restarting cold: the learned
//!   probabilities already encode the score landscape, so only the
//!   evacuated vertices' neighborhoods need re-learning.
//! * **Bandwidth degradation / price surge / recovery** mutate the
//!   environment in place: the placement is re-priced under the new
//!   [`CloudEnv`] and the sampling scheduler restarts its measurements
//!   (a fault registers as a dynamicity spike for the Eq 14 schedule).
//!
//! The wall-step counter is decoupled from the session's internal step
//! index on purpose: a crash-restore rewinds the trainer's logical step
//! (weights schedule, Eq 6/7) to the checkpoint, but the fault schedule
//! keeps marching forward — otherwise the outage event would re-fire
//! against the rewound clock and the run would livelock on the same fault.

use geograph::{DcId, GeoGraph};
use geopart::{HybridState, PlanError};
use geosim::faults::FaultSchedule;
use geosim::CloudEnv;

use crate::config::RlCutConfig;
use crate::stats::RlCutResult;
use crate::trainer::TrainerSession;

/// What happened during a fault-injected training run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultTrainReport {
    /// Schedule steps at which at least one fault event fired.
    pub fault_events_handled: usize,
    /// Checkpoint restores triggered by DC outages.
    pub crash_recoveries: usize,
    /// Evacuations performed (one per step with ≥1 dark DC).
    pub evacuations: usize,
    /// Total masters moved off dark DCs across all evacuations.
    pub evacuated_vertices: usize,
    /// Checkpoints written (including the initial one).
    pub checkpoints_taken: usize,
    /// Training steps actually executed (the schedule's clock).
    pub wall_steps: usize,
}

/// Trains `initial` under `base_env` while `schedule` injects faults,
/// checkpointing every `checkpoint_every` wall steps (0 ⇒ only the initial
/// checkpoint). Returns the usual training result plus a report of the
/// recovery actions taken.
///
/// Deterministic: the same seed, graph, and schedule produce byte-identical
/// placements, checkpoints, and reports.
pub fn train_under_faults<'g>(
    geo: &'g GeoGraph,
    base_env: &CloudEnv,
    initial: HybridState<'g>,
    config: &RlCutConfig,
    schedule: &FaultSchedule,
    checkpoint_every: usize,
) -> Result<(RlCutResult<'g>, FaultTrainReport), PlanError> {
    assert_eq!(
        schedule.num_dcs(),
        base_env.num_dcs(),
        "fault schedule covers {} DCs, environment has {}",
        schedule.num_dcs(),
        base_env.num_dcs()
    );
    let profile = initial.core().profile().clone();
    let num_iterations = initial.core().num_iterations();
    let mut report = FaultTrainReport::default();

    let mut view = schedule.view_at(base_env, 0);
    let mut session = TrainerSession::new(geo, view.env(), initial, config.clone());
    // A schedule can open with faults already active (step-0 events).
    if schedule.changes_at(0) {
        report.fault_events_handled += 1;
        if let Some(evac) = session.on_environment_change(&view)? {
            report.evacuations += 1;
            report.evacuated_vertices += evac.vertices_moved;
        }
    }
    let mut latest = session.checkpoint();
    report.checkpoints_taken += 1;

    let mut wall: u64 = 0;
    loop {
        if wall > 0 && schedule.changes_at(wall) {
            report.fault_events_handled += 1;
            let prev = view;
            view = schedule.view_at(base_env, wall);
            let newly_dead =
                (0..schedule.num_dcs() as DcId).any(|d| view.is_dead(d) && !prev.is_dead(d));
            if newly_dead {
                // Outage ⇒ crash: discard the in-memory session, restore
                // the last durable checkpoint under the degraded env.
                session = TrainerSession::resume(
                    geo,
                    view.env(),
                    &latest,
                    config.clone(),
                    profile.clone(),
                    num_iterations,
                );
                report.crash_recoveries += 1;
            }
            if let Some(evac) = session.on_environment_change(&view)? {
                report.evacuations += 1;
                report.evacuated_vertices += evac.vertices_moved;
            }
        }
        if session.step(view.env()).is_none() {
            break;
        }
        report.wall_steps += 1;
        wall += 1;
        if checkpoint_every > 0 && report.wall_steps % checkpoint_every == 0 {
            latest = session.checkpoint();
            report.checkpoints_taken += 1;
        }
    }
    Ok((session.finish(view.env()), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geograph::GeoGraph;
    use geopart::TrafficProfile;
    use geosim::regions::ec2_eight_regions;

    fn small_setup() -> (GeoGraph, CloudEnv, f64) {
        let graph = rmat(&RmatConfig::social(256, 1500), 11);
        let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(11));
        let env = ec2_eight_regions();
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        (geo, env, budget)
    }

    fn initial_state<'g>(geo: &'g GeoGraph, env: &CloudEnv) -> HybridState<'g> {
        HybridState::natural(geo, env, 100, TrafficProfile::uniform(geo.num_vertices(), 8.0), 10.0)
    }

    #[test]
    fn quiet_schedule_matches_plain_training() {
        let (geo, env, budget) = small_setup();
        let config = RlCutConfig::new(budget).with_seed(5).with_max_steps(6);
        let schedule = FaultSchedule::quiet(env.num_dcs(), 64);
        let (faulted, report) =
            train_under_faults(&geo, &env, initial_state(&geo, &env), &config, &schedule, 2)
                .unwrap();
        let plain = crate::trainer::train(&geo, &env, initial_state(&geo, &env), &config);
        assert_eq!(report.crash_recoveries, 0);
        assert_eq!(report.evacuations, 0);
        assert_eq!(
            faulted.state.core().masters(),
            plain.state.core().masters(),
            "a quiet schedule must not perturb training"
        );
    }

    #[test]
    fn outage_triggers_recovery_and_evacuation() {
        let (geo, env, budget) = small_setup();
        let config = RlCutConfig::new(budget).with_seed(5).with_max_steps(8);
        let schedule = FaultSchedule::single_outage(env.num_dcs(), 64, 2, 3);
        let (result, report) =
            train_under_faults(&geo, &env, initial_state(&geo, &env), &config, &schedule, 2)
                .unwrap();
        assert_eq!(report.crash_recoveries, 1);
        assert_eq!(report.evacuations, 1);
        assert!(report.evacuated_vertices > 0, "DC 2 hosted masters to move");
        assert!(report.wall_steps > 3, "training continued past the fault");
        // single_outage never recovers within the horizon here (recovery at
        // step 3 + duration), so if it recovered the masters may return;
        // just assert the run produced a valid plan.
        assert_eq!(result.state.core().masters().len(), geo.num_vertices());
    }

    #[test]
    fn fault_training_deterministic_across_thread_counts() {
        // The crash-restore path rebuilds the session (and with it the
        // worker pool); the result must still be independent of how many
        // pool workers evaluate moves.
        let (geo, env, budget) = small_setup();
        let schedule = FaultSchedule::single_outage(env.num_dcs(), 64, 1, 2);
        let run = |threads: usize| {
            let config = RlCutConfig::new(budget)
                .with_seed(9)
                .with_max_steps(8)
                .with_fixed_sample_rate(1.0)
                .with_threads(threads);
            train_under_faults(&geo, &env, initial_state(&geo, &env), &config, &schedule, 3)
                .unwrap()
        };
        let (a, ra) = run(1);
        let (b, rb) = run(4);
        assert_eq!(ra, rb);
        assert_eq!(a.state.core().masters(), b.state.core().masters());
    }

    #[test]
    fn fault_recovery_does_not_leak_pool_workers() {
        // Every outage tears down a pooled session and resumes a new one;
        // repeated crash/restore cycles must join the old workers.
        let (geo, env, budget) = small_setup();
        let config = RlCutConfig::new(budget).with_seed(7).with_max_steps(10).with_threads(4);
        let schedule = FaultSchedule::single_outage(env.num_dcs(), 64, 2, 3);
        let before = crate::pool::live_os_threads();
        for _ in 0..3 {
            let (_, report) =
                train_under_faults(&geo, &env, initial_state(&geo, &env), &config, &schedule, 2)
                    .unwrap();
            assert_eq!(report.crash_recoveries, 1);
        }
        let after = crate::pool::live_os_threads();
        assert!(
            after <= before + 1,
            "pool workers leaked across fault recoveries: {before} -> {after}"
        );
    }

    #[test]
    fn fault_training_is_deterministic() {
        let (geo, env, budget) = small_setup();
        let config = RlCutConfig::new(budget).with_seed(9).with_max_steps(8);
        let schedule = FaultSchedule::single_outage(env.num_dcs(), 64, 1, 2);
        let run = || {
            train_under_faults(&geo, &env, initial_state(&geo, &env), &config, &schedule, 3)
                .unwrap()
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(ra, rb);
        assert_eq!(a.state.core().masters(), b.state.core().masters());
    }
}
