//! Degree-aware agent sampling and the adaptive rate schedule (§V-C,
//! Eq 14).
//!
//! The paper's two observations: (1) training overhead is near-linear in
//! the number of participating agents (Fig 8); (2) low-degree agents
//! contribute most of the optimization benefit — high-degree vertices have
//! replicas everywhere no matter where their master sits (Fig 9). So the
//! sampler orders agents by ascending degree and each step trains a prefix
//! whose length the Eq 14 schedule retunes from the remaining time budget.

use geograph::{Graph, VertexId};

/// Vertices ordered by ascending total degree (ties by id) — the sampling
/// priority order.
pub fn degree_ascending_order(graph: &Graph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    order.sort_by_key(|&v| (graph.degree(v), v));
    order
}

/// The Eq 14 sampling-rate schedule.
///
/// Starts at `SR_0` and, per step `i`, extrapolates the affordable rate
/// from the remaining budget and the observed rate-per-second of past
/// steps:
///
/// ```text
/// SR_i = (T_opt − Σ t_k) / (Iter_max − i) · (1/i) Σ_j SR_j / t_j
/// ```
#[derive(Clone, Debug)]
pub struct SampleScheduler {
    /// Required optimization overhead, seconds. `None` = unconstrained
    /// (rate 1.0 every step).
    t_opt: Option<f64>,
    /// Pinned rate (overrides the schedule).
    fixed: Option<f64>,
    initial_rate: f64,
    max_steps: usize,
    /// Recency weight λ for the rate-per-second estimate. `None` uses the
    /// paper's uniform mean (Eq 14 verbatim). The paper observes (Fig 14b)
    /// that overhead-per-rate *shrinks* near convergence — fewer vertices
    /// migrate, so each agent gets cheaper — and flags exploiting this as
    /// future work; `Some(λ)` implements it: step `j`'s observation is
    /// weighted `λ^(age)`, so the schedule trusts recent, cheaper steps
    /// and affords higher rates late in training.
    recency: Option<f64>,
    /// Sample-rate floor for delta-focused windows. The Eq 14 schedule
    /// converges toward tiny rates on a quiet graph; after a dynamic
    /// window perturbs a neighborhood, the driver raises this floor so the
    /// touched region is guaranteed a seat in every step's sample. This
    /// generalizes the fault-reseed ×8 boost (which only widened the
    /// *initial* rate) to the whole window. A pinned `fixed` rate is an
    /// explicit override and is not floored; stopping conditions are
    /// unaffected either way.
    min_rate: f64,
    /// `(rate, seconds)` of completed steps.
    history: Vec<(f64, f64)>,
}

impl SampleScheduler {
    pub fn new(
        t_opt: Option<f64>,
        fixed: Option<f64>,
        initial_rate: f64,
        max_steps: usize,
    ) -> Self {
        assert!((0.0..=1.0).contains(&initial_rate));
        SampleScheduler {
            t_opt,
            fixed,
            initial_rate,
            max_steps,
            recency: None,
            min_rate: 0.0,
            history: Vec::new(),
        }
    }

    /// Enables the recency-weighted rate-per-second estimate (see the
    /// `recency` field). `lambda` in `(0, 1]`; 1.0 degenerates to Eq 14.
    pub fn with_recency(mut self, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0);
        self.recency = Some(lambda);
        self
    }

    /// Builder form of [`SampleScheduler::set_min_rate`].
    pub fn with_min_rate(mut self, floor: f64) -> Self {
        self.set_min_rate(floor);
        self
    }

    /// Raises the schedule's sample-rate floor (see the `min_rate` field).
    /// Applies to the initial and Eq 14-scheduled rates, not to a pinned
    /// `fixed` rate and not to the stopping conditions.
    pub fn set_min_rate(&mut self, floor: f64) {
        assert!((0.0..=1.0).contains(&floor));
        self.min_rate = floor;
    }

    /// The rate for the next step, or `None` when the step limit or the
    /// Eq 14 time budget is exhausted. A pinned `fixed` rate overrides the
    /// *schedule*, not the stopping conditions: a fixed-rate run still
    /// halts at `max_steps` and when `t_opt` is spent.
    pub fn next_rate(&self) -> Option<f64> {
        let step = self.history.len();
        if step >= self.max_steps {
            return None;
        }
        if step > 0 {
            if let Some(t_opt) = self.t_opt {
                let spent: f64 = self.history.iter().map(|&(_, t)| t).sum();
                if t_opt - spent <= 0.0 {
                    return None;
                }
            }
        }
        if let Some(fixed) = self.fixed {
            return Some(fixed);
        }
        let Some(t_opt) = self.t_opt else {
            return Some(1.0);
        };
        if step == 0 {
            return Some(self.initial_rate.max(self.min_rate).min(1.0));
        }
        let spent: f64 = self.history.iter().map(|&(_, t)| t).sum();
        let remaining = t_opt - spent;
        // Mean achievable rate per second, from history (Eq 14's second
        // factor); guard against clock-resolution zeros. With recency
        // weighting, later observations dominate (Fig 14b future work).
        let rate_per_sec = match self.recency {
            None => self.history.iter().map(|&(sr, t)| sr / t.max(1e-6)).sum::<f64>() / step as f64,
            Some(lambda) => {
                let mut weighted = 0.0;
                let mut weight_sum = 0.0;
                for (j, &(sr, t)) in self.history.iter().enumerate() {
                    let w = lambda.powi((step - 1 - j) as i32);
                    weighted += w * sr / t.max(1e-6);
                    weight_sum += w;
                }
                weighted / weight_sum
            }
        };
        let sr = remaining / (self.max_steps - step) as f64 * rate_per_sec;
        Some(sr.clamp(self.min_rate, 1.0))
    }

    /// Records a completed step.
    pub fn record(&mut self, rate: f64, seconds: f64) {
        self.history.push((rate, seconds));
    }

    /// The recorded `(rate, seconds)` history (Fig 14 plots this).
    pub fn history(&self) -> &[(f64, f64)] {
        &self.history
    }
}

/// The sampled agent set for a rate: the lowest-degree `rate` fraction
/// (at least one agent while the graph is non-empty and rate > 0).
pub fn sample_prefix(order: &[VertexId], rate: f64) -> &[VertexId] {
    if order.is_empty() || rate <= 0.0 {
        return &[];
    }
    let k = ((order.len() as f64 * rate).ceil() as usize).clamp(1, order.len());
    &order[..k]
}

/// CUTTANA-style working-set cap: the at-most-`cap` slice of `prefix` that
/// step `step_index` scans.
///
/// The window start rotates deterministically — `(step_index * cap) %
/// prefix.len()` — so consecutive steps cover consecutive slices of the
/// sampled prefix and every agent keeps getting turns; the rotation is a
/// pure function of the step index, so it needs no state in the checkpoint
/// and consumes no randomness. Wrap-around windows are materialized (the
/// two arms of the ring are not contiguous); callers avoid the copy by not
/// calling this at all when `cap >= prefix.len()`.
pub fn scan_window(prefix: &[VertexId], cap: usize, step_index: usize) -> Vec<VertexId> {
    assert!(cap >= 1, "a zero scan cap would stall every step");
    if prefix.is_empty() {
        return Vec::new();
    }
    if cap >= prefix.len() {
        return prefix.to_vec();
    }
    let start = ((step_index as u128 * cap as u128) % prefix.len() as u128) as usize;
    let mut window = Vec::with_capacity(cap);
    let first = (prefix.len() - start).min(cap);
    window.extend_from_slice(&prefix[start..start + first]);
    window.extend_from_slice(&prefix[..cap - first]);
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::Graph;

    #[test]
    fn order_is_by_degree() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let order = degree_ascending_order(&g);
        assert_eq!(*order.last().unwrap(), 0); // degree 3
        assert_eq!(order[0], 3); // degree 1
    }

    #[test]
    fn prefix_sampling() {
        let order = vec![5, 3, 1, 2, 4];
        assert_eq!(sample_prefix(&order, 0.4), &[5, 3]);
        assert_eq!(sample_prefix(&order, 1.0).len(), 5);
        assert_eq!(sample_prefix(&order, 0.0).len(), 0);
        assert_eq!(sample_prefix(&order, 0.01), &[5]); // at least one
    }

    #[test]
    fn scan_window_rotates_and_covers_the_prefix() {
        let prefix = vec![10, 11, 12, 13, 14];
        // cap 2 over 5 agents: starts rotate 0, 2, 4, 1, 3, 0, …
        assert_eq!(scan_window(&prefix, 2, 0), &[10, 11]);
        assert_eq!(scan_window(&prefix, 2, 1), &[12, 13]);
        assert_eq!(scan_window(&prefix, 2, 2), &[14, 10]); // wraps
        assert_eq!(scan_window(&prefix, 2, 3), &[11, 12]);
        // Five consecutive steps touch every agent at least once.
        let mut seen: std::collections::HashSet<VertexId> = Default::default();
        for step in 0..5 {
            seen.extend(scan_window(&prefix, 2, step));
        }
        assert_eq!(seen.len(), prefix.len());
    }

    #[test]
    fn scan_window_huge_cap_is_identity() {
        let prefix = vec![3, 1, 4];
        assert_eq!(scan_window(&prefix, 3, 7), prefix);
        assert_eq!(scan_window(&prefix, usize::MAX, 7), prefix);
        assert!(scan_window(&[], 4, 0).is_empty());
    }

    #[test]
    #[should_panic]
    fn scan_window_rejects_zero_cap() {
        scan_window(&[1, 2], 0, 0);
    }

    #[test]
    fn unconstrained_scheduler_full_rate() {
        let s = SampleScheduler::new(None, None, 0.01, 10);
        assert_eq!(s.next_rate(), Some(1.0));
    }

    #[test]
    fn fixed_rate_pins() {
        // A pinned rate overrides the Eq 14 schedule while budget remains…
        let mut s = SampleScheduler::new(Some(1.0), Some(0.1), 0.01, 10);
        assert_eq!(s.next_rate(), Some(0.1));
        s.record(0.1, 0.4);
        assert_eq!(s.next_rate(), Some(0.1));
        // …but not the stopping conditions: once t_opt is spent, it halts
        // like the adaptive path instead of training forever.
        s.record(0.1, 100.0);
        assert_eq!(s.next_rate(), None);
    }

    #[test]
    fn fixed_rate_respects_max_steps() {
        let mut s = SampleScheduler::new(None, Some(0.5), 0.01, 2);
        assert_eq!(s.next_rate(), Some(0.5));
        s.record(0.5, 0.1);
        assert_eq!(s.next_rate(), Some(0.5));
        s.record(0.5, 0.1);
        assert_eq!(s.next_rate(), None);
    }

    #[test]
    fn adaptive_starts_at_initial_rate() {
        let s = SampleScheduler::new(Some(10.0), None, 0.01, 10);
        assert_eq!(s.next_rate(), Some(0.01));
    }

    #[test]
    fn adaptive_rate_scales_with_remaining_budget() {
        // First step: 1 % of agents took 0.01 s => 1.0 rate/sec. With 9.99s
        // left over 9 steps, the schedule affords ~1.0 rate... clamped.
        let mut s = SampleScheduler::new(Some(10.0), None, 0.01, 10);
        s.record(0.01, 0.01);
        let r1 = s.next_rate().unwrap();
        assert!(r1 > 0.5, "plenty of budget should raise the rate: {r1}");

        // Tight budget: almost no time left => tiny rate.
        let mut s = SampleScheduler::new(Some(0.02), None, 0.01, 10);
        s.record(0.01, 0.019);
        let r2 = s.next_rate().unwrap();
        assert!(r2 < 0.1, "nearly exhausted budget must shrink the rate: {r2}");
    }

    #[test]
    fn exhausted_budget_stops() {
        let mut s = SampleScheduler::new(Some(1.0), None, 0.01, 10);
        s.record(0.01, 2.0);
        assert_eq!(s.next_rate(), None);
    }

    #[test]
    fn recency_trusts_recent_cheaper_steps() {
        // Overhead-per-rate shrinking over time (the Fig 14b pattern):
        // step 0 was expensive (0.1 rate in 1 s), step 1 cheap (0.1 rate
        // in 0.1 s). The recency-weighted schedule affords a higher next
        // rate than the uniform Eq 14 mean.
        let history = [(0.1, 1.0), (0.1, 0.1)];
        let mut uniform = SampleScheduler::new(Some(10.0), None, 0.01, 10);
        let mut recent = SampleScheduler::new(Some(10.0), None, 0.01, 10).with_recency(0.3);
        for &(sr, t) in &history {
            uniform.record(sr, t);
            recent.record(sr, t);
        }
        let (u, r) = (uniform.next_rate().unwrap(), recent.next_rate().unwrap());
        assert!(r >= u, "recency {r} should not trail uniform {u}");
    }

    #[test]
    fn recency_one_matches_uniform() {
        let mut a = SampleScheduler::new(Some(5.0), None, 0.01, 10);
        let mut b = SampleScheduler::new(Some(5.0), None, 0.01, 10).with_recency(1.0);
        for &(sr, t) in &[(0.01, 0.2), (0.3, 0.5), (0.5, 0.9)] {
            a.record(sr, t);
            b.record(sr, t);
        }
        let (ra, rb) = (a.next_rate().unwrap(), b.next_rate().unwrap());
        assert!((ra - rb).abs() < 1e-12, "{ra} vs {rb}");
    }

    #[test]
    fn min_rate_floors_initial_and_scheduled_rates() {
        // Initial rate below the floor is lifted…
        let mut s = SampleScheduler::new(Some(10.0), None, 0.01, 10).with_min_rate(0.25);
        assert_eq!(s.next_rate(), Some(0.25));
        // …and so is an Eq 14-scheduled rate starved by a tight budget.
        s.record(0.25, 9.99);
        let r = s.next_rate().unwrap();
        assert!(r >= 0.25, "scheduled rate must respect the floor: {r}");
    }

    #[test]
    fn min_rate_leaves_fixed_rates_and_stopping_alone() {
        // A pinned rate is an explicit override — not floored.
        let mut s = SampleScheduler::new(Some(1.0), Some(0.05), 0.01, 10).with_min_rate(0.5);
        assert_eq!(s.next_rate(), Some(0.05));
        // Stopping conditions are unaffected: a spent budget still halts.
        s.record(0.05, 2.0);
        assert_eq!(s.next_rate(), None);
        // Same for the adaptive path.
        let mut s = SampleScheduler::new(Some(1.0), None, 0.01, 10).with_min_rate(0.5);
        s.record(0.5, 2.0);
        assert_eq!(s.next_rate(), None);
    }

    #[test]
    fn larger_t_opt_gives_larger_rates() {
        // The Fig 13/14 mechanism: more allowed overhead => more agents.
        let mut small = SampleScheduler::new(Some(1.0), None, 0.01, 10);
        let mut large = SampleScheduler::new(Some(50.0), None, 0.01, 10);
        small.record(0.01, 0.5);
        large.record(0.01, 0.5);
        assert!(large.next_rate().unwrap() > small.next_rate().unwrap());
    }
}
