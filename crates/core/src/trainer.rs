//! The RLCut training loop (Fig 5) with batched global migration (Fig 7,
//! §V-A) and degree-balanced parallel scoring (§V-B).
//!
//! ## Parallel architecture
//!
//! The environment ([`HybridState`]) sits behind a `parking_lot::RwLock`.
//! Both parallel phases run on the session's persistent
//! [`WorkerPool`](crate::pool::WorkerPool): `threads` workers spawned once
//! per [`TrainerSession`], each owning a [`geopart::MoveScratch`] arena
//! that stays resident (and therefore warm) across steps, with
//! condvar-dispatched jobs replacing the historical per-step
//! `thread::scope` spawn/join (still available as the ablation baseline
//! via [`RlCutConfig::use_worker_pool`]). Each training step has two
//! phases:
//!
//! * **Scoring** — sampled agents are spread over the pool's workers by
//!   the straggler-mitigating LPT assignment; each worker scores all `M`
//!   candidate moves of an agent in **one** batched kernel sweep
//!   ([`HybridState::evaluate_all_moves`]) against the frozen step-start
//!   state (read locks only). LA probability/UCB updates then run serially
//!   (they are `O(M)` per agent — noise next to the `O(deg)` scoring).
//! * **Migration** — move proposals are shuffled (the paper batches
//!   randomly) and processed batch-by-batch: the frozen batch objective is
//!   computed **once** by the leader and shared read-only (every worker
//!   would otherwise recompute the identical value), workers evaluate the
//!   batch's members in parallel against the frozen batch-start state, a
//!   barrier separates them from the leader applying the accepted moves
//!   under the write lock, and a second barrier keeps later readers from
//!   observing a half-applied batch. `batch_size = 1` degenerates to the
//!   strictly sequential global optimization of Fig 7.
//!
//! Everything is deterministic for a fixed seed, independent of thread
//! count and of pool-vs-scope dispatch: accept decisions depend only on
//! frozen snapshots and the apply order is the shuffled proposal order.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use geograph::{DcId, GeoGraph, VertexId};
use geopart::{EvacuationReport, HybridState, MoveScratch, Objective, PlanError, TrafficProfile};
use geosim::faults::FaultyEnv;
use geosim::CloudEnv;
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::agent::AgentPool;
use crate::checkpoint::TrainerCheckpoint;
use crate::config::{RlCutConfig, SampleStrategy};
use crate::pool::WorkerPool;
use crate::sampling::{degree_ascending_order, sample_prefix, SampleScheduler};
use crate::score::{score, Weights};
use crate::stats::{RlCutResult, StepStats};
use crate::straggler;

/// Partitions `geo` starting from its natural locations (the paper's
/// initial state).
pub fn partition<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    profile: TrafficProfile,
    num_iterations: f64,
    config: &RlCutConfig,
) -> RlCutResult<'g> {
    partition_from(geo, env, geo.locations.clone(), profile, num_iterations, config)
}

/// [`partition`] with a [`crate::observer::TrainingObserver`] attached.
pub fn partition_with_observer<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    profile: TrafficProfile,
    num_iterations: f64,
    config: &RlCutConfig,
    observer: &mut dyn crate::observer::TrainingObserver,
) -> RlCutResult<'g> {
    let theta = config.theta.unwrap_or_else(|| geograph::degree::suggest_theta(&geo.graph, 0.05));
    let state =
        HybridState::from_masters(geo, env, geo.locations.clone(), theta, profile, num_iterations);
    train_observed(geo, env, state, config, observer)
}

/// Partitions `geo` starting from explicit master locations — the entry
/// point for dynamic re-partitioning, where the previous window's plan
/// seeds the next.
pub fn partition_from<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    initial_masters: Vec<DcId>,
    profile: TrafficProfile,
    num_iterations: f64,
    config: &RlCutConfig,
) -> RlCutResult<'g> {
    let theta = config.theta.unwrap_or_else(|| geograph::degree::suggest_theta(&geo.graph, 0.05));
    let state =
        HybridState::from_masters(geo, env, initial_masters, theta, profile, num_iterations);
    train(geo, env, state, config)
}

/// Runs the training loop on an existing state.
pub fn train<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    state: HybridState<'g>,
    config: &RlCutConfig,
) -> RlCutResult<'g> {
    train_observed(geo, env, state, config, &mut crate::observer::NoopObserver)
}

/// [`train`] reporting progress to `observer`.
pub fn train_observed<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    state: HybridState<'g>,
    config: &RlCutConfig,
    observer: &mut dyn crate::observer::TrainingObserver,
) -> RlCutResult<'g> {
    let mut session = TrainerSession::new(geo, env, state, config.clone());
    session.run(env, observer);
    session.finish(env)
}

/// The expensive, graph-independent half of a [`TrainerSession`]: the
/// persistent worker pool and the sequential scratch arena. A dynamic
/// driver moves these out of a finished session
/// ([`TrainerSession::finish_with_resources`]) and threads them into the
/// next window's session ([`TrainerSession::with_resources`]), so pool
/// workers — and their warm per-worker arenas — survive across windows
/// instead of being respawned per window.
#[derive(Debug)]
pub struct SessionResources {
    /// Carried worker pool (`None` when the donor ran single-threaded or
    /// pooling was disabled).
    pub(crate) pool: Option<WorkerPool>,
    /// Carried sequential scratch arena.
    pub(crate) scratch: MoveScratch,
    /// Applied-move journal of the donor session (present only when the
    /// donor had [`TrainerSession::enable_move_journal`] on): one entry
    /// per step with accepted migrations, in exact apply order, plus the
    /// reconcile sweep under [`RECONCILE_STEP`]. Rides *out* of a session;
    /// incoming resources never seed a new session's journal.
    pub(crate) journal: Option<MoveJournal>,
}

/// Journal step index of the end-of-session reconcile sweep
/// (live plan → best plan) in [`SessionResources`]' move journal.
pub const RECONCILE_STEP: u32 = u32::MAX;

/// An applied-move journal: per step, the accepted migrations in exact
/// apply order.
pub type MoveJournal = Vec<(u32, Vec<(VertexId, DcId)>)>;

impl Default for SessionResources {
    fn default() -> Self {
        SessionResources { pool: None, scratch: MoveScratch::new(), journal: None }
    }
}

impl SessionResources {
    /// OS thread ids of the carried pool's workers (`None` without a
    /// pool). The cross-window persistence probe: ids stable across
    /// windows prove the pool was reused, not respawned.
    pub fn pool_thread_ids(&self) -> Option<Vec<std::thread::ThreadId>> {
        self.pool.as_ref().map(|p| p.thread_ids())
    }
}

/// A resumable training run: the Fig 5 loop broken into externally driven
/// steps, with checkpoint/restore and a fault-recovery hook.
///
/// [`train_observed`] is a thin wrapper (`new` → `run` → `finish`) and is
/// bit-identical to the pre-session monolithic loop. The session form
/// additionally lets a driver:
///
/// * advance training one step at a time ([`Self::step`]) under an
///   environment that may change between steps,
/// * capture the logical trainer state ([`Self::checkpoint`]) and resume
///   from it ([`Self::resume`]) bit-exactly,
/// * react to WAN faults ([`Self::on_environment_change`]): rebuild the
///   placement under the degraded environment and evacuate dark DCs.
pub struct TrainerSession<'g> {
    geo: &'g GeoGraph,
    config: RlCutConfig,
    theta: usize,
    /// Sampling priority order (degree-ascending or seeded shuffle),
    /// isolated vertices excluded.
    order: Vec<VertexId>,
    agents: AgentPool,
    scheduler: SampleScheduler,
    /// Migration-batch shuffle RNG.
    rng: SmallRng,
    state: RwLock<HybridState<'g>>,
    steps: Vec<StepStats>,
    /// Best plan seen: a feasible (within-budget) plan beats any infeasible
    /// one, then lower transfer time wins. Batched migration can regress
    /// individual steps (jointly-applied moves interact, §V-A), so the
    /// trainer returns the best plan rather than the last.
    best: (Vec<DcId>, Objective),
    step_index: usize,
    converged: bool,
    /// Whether the schedule/sampler declared the run finished (distinct
    /// from convergence; a time budget can run out mid-flight).
    exhausted: bool,
    started: Instant,
    /// Wall-clock accumulated before this session object existed (resume).
    prior_duration: Duration,
    /// Persistent workers for the parallel phases, spawned once per
    /// session and reused every step (`None` when the session runs
    /// single-threaded or the pool is disabled for ablation). Joined on
    /// session drop, so `resume`/`train_under_faults` restart cycles never
    /// accumulate workers.
    pool: Option<WorkerPool>,
    /// Session-resident scratch for every sequential path (small-sample
    /// scoring, `batch_size = 1` migration, evacuation) — warm across
    /// steps just like the pool workers' arenas.
    scratch: MoveScratch,
    /// Applied-move journal: `Some` while a durable driver needs every
    /// accepted migration (in exact apply order) for its WAL. `None`
    /// costs nothing on the training path.
    journal: Option<MoveJournal>,
}

impl<'g> TrainerSession<'g> {
    /// Sets up a fresh session over an existing state.
    pub fn new(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        state: HybridState<'g>,
        config: RlCutConfig,
    ) -> Self {
        Self::with_resources(geo, env, state, config, SessionResources::default())
    }

    /// [`Self::new`] reusing the pool and scratch of a previous session
    /// (the dynamic-window path). A carried pool is adopted only when it
    /// matches what this config would build — same thread count, pooling
    /// enabled; otherwise it is dropped here (its workers join) and the
    /// session builds its own.
    pub fn with_resources(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        state: HybridState<'g>,
        config: RlCutConfig,
        resources: SessionResources,
    ) -> Self {
        let m = env.num_dcs();
        // Isolated vertices generate no traffic wherever their master sits —
        // training them wastes the sampled-agent budget, so they are
        // excluded (they keep their initial master).
        let order = Self::build_order(geo, &config);
        let agents = AgentPool::new(geo.num_vertices(), m);
        let scheduler = Self::build_scheduler(&config);
        let rng = SmallRng::seed_from_u64(config.seed ^ 0x0ddb_1a5e_5bad_5eed);
        let theta = state.theta();
        let best = (state.core().masters().to_vec(), state.objective(env));
        let SessionResources { pool: carried, scratch, journal: _ } = resources;
        let wants_pool = config.use_worker_pool && config.threads() > 1;
        let pool = match carried {
            Some(pool) if wants_pool && pool.threads() == config.threads() => Some(pool),
            _ => Self::build_pool(&config),
        };
        TrainerSession {
            geo,
            config,
            theta,
            order,
            agents,
            scheduler,
            rng,
            state: RwLock::new(state),
            steps: Vec::new(),
            best,
            step_index: 0,
            converged: false,
            exhausted: false,
            started: Instant::now(),
            prior_duration: Duration::ZERO,
            pool,
            scratch,
            journal: None,
        }
    }

    /// Turns on the applied-move journal: from now on every accepted
    /// migration is recorded `(step, moves)` in exact apply order, and
    /// [`Self::finish_with_resources`] hands the journal back through
    /// [`SessionResources`]. The durable driver feeds it to the WAL;
    /// replaying the journal through `apply_move_with` reproduces the
    /// placement accumulators bit-exactly (floating-point accumulation is
    /// order-sensitive, so masters diffs alone would not).
    pub fn enable_move_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Vec::new());
        }
    }

    /// A pool is only worth its dispatch cost with real parallelism; the
    /// scope fallback (`use_worker_pool = false`) is the measured baseline.
    pub(crate) fn build_pool(config: &RlCutConfig) -> Option<WorkerPool> {
        (config.use_worker_pool && config.threads() > 1).then(|| WorkerPool::new(config.threads()))
    }

    pub(crate) fn build_order(geo: &GeoGraph, config: &RlCutConfig) -> Vec<VertexId> {
        let mut order = match config.sample_strategy {
            SampleStrategy::LowestDegree => degree_ascending_order(&geo.graph),
            SampleStrategy::Random => {
                let mut all: Vec<VertexId> = (0..geo.num_vertices() as VertexId).collect();
                all.shuffle(&mut SmallRng::seed_from_u64(config.seed ^ 0x5a17_a8e2));
                all
            }
        };
        order.retain(|&v| geo.graph.degree(v) > 0);
        order
    }

    pub(crate) fn build_scheduler(config: &RlCutConfig) -> SampleScheduler {
        let mut scheduler = SampleScheduler::new(
            config.t_opt.map(|d| d.as_secs_f64()),
            config.fixed_sample_rate,
            config.initial_sample_rate,
            config.max_steps,
        );
        if let Some(lambda) = config.sampling_recency {
            scheduler = scheduler.with_recency(lambda);
        }
        scheduler
    }

    /// Rebuilds a session from a checkpoint, bit-exact with the session
    /// that saved it: LA state, UCB statistics, migration RNG, masters,
    /// the incrementally tracked movement cost, and the best-plan tracker
    /// are all restored verbatim, so the next [`Self::step`] makes the
    /// same decisions the uninterrupted run would have made.
    ///
    /// The Eq 14 sampling scheduler restarts its wall-clock measurements
    /// (they are not reproducible state); only `t_opt`-budgeted schedules
    /// observe the difference.
    pub fn resume(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        checkpoint: &TrainerCheckpoint,
        config: RlCutConfig,
        profile: TrafficProfile,
        num_iterations: f64,
    ) -> Self {
        assert_eq!(
            checkpoint.seed, config.seed,
            "checkpoint was written by a run with seed {}, config has {}",
            checkpoint.seed, config.seed
        );
        assert_eq!(checkpoint.masters.len(), geo.num_vertices());
        assert_eq!(checkpoint.num_dcs as usize, env.num_dcs());
        let order = Self::build_order(geo, &config);
        let agents = AgentPool::from_parts(
            checkpoint.num_dcs as usize,
            checkpoint.probs.clone(),
            checkpoint.plays.clone(),
            checkpoint.mean_reward.clone(),
            checkpoint.total_plays.clone(),
        );
        let mut state = HybridState::from_masters(
            geo,
            env,
            checkpoint.masters.clone(),
            checkpoint.theta as usize,
            profile,
            num_iterations,
        );
        state.override_movement_cost(checkpoint.movement_cost);
        let pool = Self::build_pool(&config);
        TrainerSession {
            geo,
            theta: checkpoint.theta as usize,
            order,
            agents,
            scheduler: Self::build_scheduler(&config),
            rng: SmallRng::from_state(checkpoint.rng_state),
            state: RwLock::new(state),
            steps: Vec::new(),
            best: (checkpoint.best_masters.clone(), checkpoint.best_objective),
            step_index: checkpoint.step as usize,
            converged: checkpoint.converged,
            exhausted: false,
            started: Instant::now(),
            prior_duration: Duration::ZERO,
            config,
            pool,
            scratch: MoveScratch::new(),
            journal: None,
        }
    }

    /// Captures the trainer's logical state. Pure function of the training
    /// history: the same seed and step always produce byte-identical
    /// checkpoints (wall-clock scheduler state is excluded by design).
    pub fn checkpoint(&self) -> TrainerCheckpoint {
        let st = self.state.read();
        let (probs, plays, mean_reward, total_plays) = self.agents.snapshot();
        TrainerCheckpoint {
            seed: self.config.seed,
            step: self.step_index as u32,
            theta: self.theta as u64,
            num_dcs: self.agents.num_actions() as u32,
            masters: st.core().masters().to_vec(),
            probs: probs.to_vec(),
            plays: plays.to_vec(),
            mean_reward: mean_reward.to_vec(),
            total_plays: total_plays.to_vec(),
            rng_state: self.rng.state(),
            movement_cost: st.core().movement_cost(),
            best_masters: self.best.0.clone(),
            best_objective: self.best.1,
            converged: self.converged,
        }
    }

    /// Number of trainable (non-isolated) agents.
    pub fn num_trainable(&self) -> usize {
        self.order.len()
    }

    /// Steps executed so far (the weights schedule's clock).
    pub fn step_index(&self) -> usize {
        self.step_index
    }

    /// Whether the run has stopped (converged, horizon, or time budget).
    pub fn is_done(&self) -> bool {
        self.converged || self.exhausted || self.step_index >= self.config.max_steps
    }

    /// Whether training stopped on convergence.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Telemetry of the steps executed by *this* session object (a resumed
    /// session starts empty — the pre-crash telemetry died with the
    /// process).
    pub fn steps(&self) -> &[StepStats] {
        &self.steps
    }

    /// Current master placement.
    pub fn masters(&self) -> Vec<DcId> {
        self.state.read().core().masters().to_vec()
    }

    /// Current objective under `env`.
    pub fn objective(&self, env: &CloudEnv) -> Objective {
        self.state.read().objective(env)
    }

    /// Reorders the sampling priority so `seeds` and their in/out
    /// neighbors come first (stable within each half, so degree order is
    /// preserved inside the hot prefix and inside the tail). After a
    /// dynamic window, the delta's touched vertices are where placement
    /// quality degraded; fronting them makes even a tiny Eq 14 sample
    /// revisit the perturbed neighborhoods first.
    pub fn focus_on(&mut self, seeds: &[VertexId]) {
        if seeds.is_empty() {
            return;
        }
        let n = self.geo.num_vertices();
        let mut hot = vec![false; n];
        for &s in seeds {
            let Some(flag) = hot.get_mut(s as usize) else { continue };
            *flag = true;
            for &u in self.geo.graph.out_neighbors(s) {
                hot[u as usize] = true;
            }
            for &u in self.geo.graph.in_neighbors(s) {
                hot[u as usize] = true;
            }
        }
        let (mut front, back): (Vec<VertexId>, Vec<VertexId>) =
            self.order.iter().copied().partition(|&v| hot[v as usize]);
        front.extend(back);
        self.order = front;
    }

    /// Raises the Eq 14 sample-rate floor (see
    /// [`SampleScheduler::set_min_rate`]) — the dynamic-window
    /// generalization of the fault path's ×8 initial-rate boost: every
    /// step of this window samples at least `floor` of the agents, so a
    /// converged schedule cannot starve the delta's touched region.
    pub fn boost_sampling(&mut self, floor: f64) {
        self.scheduler.set_min_rate(floor.clamp(0.0, 1.0));
    }

    /// OS thread ids of the pool workers (`None` without a pool).
    pub fn pool_thread_ids(&self) -> Option<Vec<std::thread::ThreadId>> {
        self.pool.as_ref().map(|p| p.thread_ids())
    }

    /// Capacity snapshot of every pool worker's resident scratch arena
    /// (`None` when the session runs without a pool). Steady-state
    /// contract: after the first full-sample step the capacities stop
    /// changing — the hot loops allocate nothing.
    pub fn pool_scratch_stats(&self) -> Option<Vec<geopart::ScratchStats>> {
        self.pool.as_ref().map(|p| p.scratch_stats())
    }

    pub(crate) fn beats(candidate: &Objective, incumbent: &Objective, budget: f64) -> bool {
        let cand_ok = candidate.total_cost() <= budget;
        let inc_ok = incumbent.total_cost() <= budget;
        match (cand_ok, inc_ok) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => candidate.transfer_time < incumbent.transfer_time,
            (false, false) => candidate.total_cost() < incumbent.total_cost(),
        }
    }

    /// Executes one training step (Fig 5 phases 1–5) under `env` and
    /// returns its telemetry, or `None` if the run is over (converged,
    /// horizon reached, sampling budget exhausted).
    pub fn step(&mut self, env: &CloudEnv) -> Option<StepStats> {
        self.step_observed(env, &mut crate::observer::NoopObserver)
    }

    /// [`Self::step`] reporting to `observer`.
    pub fn step_observed(
        &mut self,
        env: &CloudEnv,
        observer: &mut dyn crate::observer::TrainingObserver,
    ) -> Option<StepStats> {
        if self.is_done() {
            return None;
        }
        let step = self.step_index;
        let m = env.num_dcs();
        let threads = self.config.threads();
        let Some(rate) = self.scheduler.next_rate() else {
            self.exhausted = true;
            return None;
        };
        let prefix = sample_prefix(&self.order, rate);
        if prefix.is_empty() {
            self.exhausted = true;
            return None;
        }
        // Optional working-set cap (CUTTANA-style): scan only a rotating
        // `max_scan`-sized window of the sampled prefix this step. With the
        // cap disabled (or larger than the sample) this arm is never taken
        // and the step is bit-identical to the uncapped trainer.
        let capped: Option<Vec<VertexId>> = match self.config.max_scan {
            Some(cap) if cap < prefix.len() => {
                Some(crate::sampling::scan_window(prefix, cap, step))
            }
            _ => None,
        };
        let full_scan = capped.is_none();
        let sampled: &[VertexId] = capped.as_deref().unwrap_or(prefix);
        let step_start = Instant::now();
        let step_obj = self.state.read().objective(env);
        if step_obj.transfer_time == 0.0 && step_obj.total_cost() <= self.config.budget {
            self.converged = true;
            return None;
        }
        let over_budget = step_obj.total_cost() > self.config.budget;
        let weights = Weights::at(step, self.config.max_steps, over_budget);

        // Phase 1+2 — score function & reinforcement signal (parallel).
        let score_start = Instant::now();
        let rho = score_phase(
            self.geo,
            env,
            &self.state,
            sampled,
            &step_obj,
            weights,
            threads,
            self.pool.as_ref(),
            &mut self.scratch,
            &self.config,
        );
        let score_duration = score_start.elapsed();

        // Phase 3+4 — probability update & UCB action selection (serial;
        // deterministic sampled order).
        let mut proposals: Vec<(VertexId, DcId)> = Vec::new();
        {
            let st = self.state.read();
            for (&v, &best_dc) in sampled.iter().zip(&rho) {
                self.agents.reward(v, best_dc, self.config.alpha);
                if self.config.use_penalty {
                    for d in 0..m as DcId {
                        if d != best_dc {
                            self.agents.penalize(v, d, self.config.beta);
                        }
                    }
                }
                let selected = self.agents.select_ucb(v, self.config.ucb_c);
                self.agents.record_play(v, selected, if selected == best_dc { 1.0 } else { 0.0 });
                if selected != st.master(v) {
                    proposals.push((v, selected));
                }
            }
        }

        // Phase 5 — batched vertex migration with rollback (the paper
        // batches agents randomly, §V-A).
        proposals.shuffle(&mut self.rng);
        let migrate_start = Instant::now();
        let mut step_moves = self.journal.as_ref().map(|_| Vec::new());
        let migrations = migration_phase(
            env,
            &self.state,
            &proposals,
            weights,
            threads,
            self.pool.as_ref(),
            &mut self.scratch,
            &self.config,
            step_moves.as_mut(),
        );
        let migrate_duration = migrate_start.elapsed();
        if let (Some(journal), Some(moves)) = (self.journal.as_mut(), step_moves) {
            if !moves.is_empty() {
                journal.push((step as u32, moves));
            }
        }

        let duration = step_start.elapsed();
        self.scheduler.record(rate, duration.as_secs_f64());
        let obj = self.state.read().objective(env);
        if Self::beats(&obj, &self.best.1, self.config.budget) {
            self.best = (self.state.read().core().masters().to_vec(), obj);
        }
        let stats = StepStats {
            duration,
            score_duration,
            migrate_duration,
            sample_rate: rate,
            num_agents: sampled.len(),
            migrations,
            transfer_time: obj.transfer_time,
            total_cost: obj.total_cost(),
        };
        self.steps.push(stats);
        observer.on_step(step, self.steps.last().unwrap());
        self.step_index += 1;
        // Convergence is only meaningful when (nearly) all agents took
        // part — a tiny early sample moving nothing says nothing about the
        // full solution space, and a scan-capped step saw only a window of
        // it.
        if full_scan
            && rate >= 0.999
            && (migrations as f64) < self.config.convergence_fraction * sampled.len() as f64
        {
            self.converged = true;
        }
        Some(stats)
    }

    /// Runs the loop to completion under a fixed environment.
    pub fn run(&mut self, env: &CloudEnv, observer: &mut dyn crate::observer::TrainingObserver) {
        observer.on_start(self.order.len(), self.config.max_steps);
        while self.step_observed(env, observer).is_some() {}
        observer.on_finish(self.converged);
    }

    /// Reacts to a WAN environment change (the recovery policy's in-process
    /// half): rebuilds the placement state from the current masters under
    /// the new environment — the incremental Eq 4 movement cost was priced
    /// under the old one — evacuates every master off dark DCs, resets the
    /// best-plan tracker (pre-fault objectives are not comparable), and
    /// restarts the sampling scheduler's measurements, which makes the
    /// fault register as a dynamicity spike for the Eq 14 schedule.
    ///
    /// Returns the evacuation report if any DC was dark, `Ok(None)` for a
    /// pure bandwidth/price change.
    pub fn on_environment_change(
        &mut self,
        view: &FaultyEnv,
    ) -> Result<Option<EvacuationReport>, PlanError> {
        let env = view.env();
        let (masters, profile, num_iterations) = {
            let st = self.state.read();
            (st.core().masters().to_vec(), st.core().profile().clone(), st.core().num_iterations())
        };
        let mut state =
            HybridState::from_masters(self.geo, env, masters, self.theta, profile, num_iterations);
        let report = if view.any_dead() {
            Some(state.evacuate(env, view.dead_flags(), &mut self.scratch)?)
        } else {
            None
        };
        self.best = (state.core().masters().to_vec(), state.objective(env));
        self.state = RwLock::new(state);
        self.scheduler = Self::build_scheduler(&self.config);
        self.converged = false;
        self.exhausted = false;
        Ok(report)
    }

    /// Finalizes the run: rebuilds the returned state from the best plan
    /// seen if the live state drifted past it.
    pub fn finish(self, env: &CloudEnv) -> RlCutResult<'g> {
        let total_duration = self.prior_duration + self.started.elapsed();
        let mut final_state = self.state.into_inner();
        if final_state.core().masters() != self.best.0.as_slice() {
            let profile = final_state.core().profile().clone();
            let num_iterations = final_state.core().num_iterations();
            final_state = HybridState::from_masters(
                self.geo,
                env,
                self.best.0,
                self.theta,
                profile,
                num_iterations,
            );
        }
        RlCutResult {
            state: final_state,
            steps: self.steps,
            total_duration,
            converged: self.converged,
        }
    }

    /// [`Self::finish`] for the dynamic-window path: reconciles the live
    /// state to the best plan by **applying the differing moves** instead
    /// of rebuilding from scratch — work proportional to the drift, not to
    /// the graph — and hands the pool and scratch back for the next
    /// window's session. (`apply_move`'s Eq 4 accounting is
    /// path-independent: `+cost(loc, to) − cost(loc, from)`, so the
    /// reconciled state prices movement exactly as a rebuild would.)
    pub fn finish_with_resources(mut self, env: &CloudEnv) -> (RlCutResult<'g>, SessionResources) {
        let total_duration = self.prior_duration + self.started.elapsed();
        let mut final_state = self.state.into_inner();
        let best_masters = self.best.0;
        if final_state.core().masters() != best_masters.as_slice() {
            let diffs: Vec<(VertexId, DcId)> = final_state
                .core()
                .masters()
                .iter()
                .zip(&best_masters)
                .enumerate()
                .filter(|(_, (live, best))| live != best)
                .map(|(v, (_, &best))| (v as VertexId, best))
                .collect();
            for &(v, to) in &diffs {
                final_state.apply_move_with(env, v, to, &mut self.scratch);
            }
            debug_assert_eq!(final_state.core().masters(), best_masters.as_slice());
            if let Some(journal) = self.journal.as_mut() {
                journal.push((RECONCILE_STEP, diffs));
            }
        }
        let resources =
            SessionResources { pool: self.pool, scratch: self.scratch, journal: self.journal };
        let result = RlCutResult {
            state: final_state,
            steps: self.steps,
            total_duration,
            converged: self.converged,
        };
        (result, resources)
    }
}

/// Computes ρ_v (the score-optimal DC, Eq 10/11) for every sampled agent.
/// Returns one entry per agent, aligned with `sampled`.
///
/// Dispatch: sequential on the caller (session-resident `seq_scratch`)
/// below [`RlCutConfig::parallel_threshold`]; otherwise on the persistent
/// pool when one exists, or a per-step `thread::scope` (the ablation
/// baseline). All three produce bit-identical ρ — workers only fill
/// disjoint per-vertex slots.
#[allow(clippy::too_many_arguments)]
fn score_phase(
    geo: &GeoGraph,
    env: &CloudEnv,
    state: &RwLock<HybridState<'_>>,
    sampled: &[VertexId],
    step_obj: &Objective,
    weights: Weights,
    threads: usize,
    pool: Option<&WorkerPool>,
    seq_scratch: &mut MoveScratch,
    config: &RlCutConfig,
) -> Vec<DcId> {
    let m = env.num_dcs();
    // One batched kernel sweep scores every destination of an agent; the
    // per-worker scratch arena makes the hot loop allocation-free.
    let best_of = |st: &HybridState<'_>, v: VertexId, scratch: &mut MoveScratch| -> DcId {
        let objs = st.evaluate_all_moves(env, v, scratch);
        let master = st.master(v);
        let mut best = (0 as DcId, f64::NEG_INFINITY);
        for d in 0..m as DcId {
            // Keeping the master's candidate pinned to the frozen step
            // objective preserves the pre-batching scoring semantics.
            let candidate = if d == master { step_obj } else { &objs[d as usize] };
            let s = score(step_obj, candidate, weights);
            if s > best.1 {
                best = (d, s);
            }
        }
        best.0
    };

    if threads <= 1 || sampled.len() < config.parallel_threshold {
        let st = state.read();
        return sampled.iter().map(|&v| best_of(&st, v, seq_scratch)).collect();
    }

    let groups = if config.disable_straggler_mitigation {
        straggler::round_robin_assignment(sampled, threads)
    } else {
        straggler::balanced_assignment(&geo.graph, sampled, threads)
    };
    let mut rho_by_vertex: Vec<DcId> = vec![0; geo.num_vertices()];
    if let Some(pool) = pool {
        debug_assert_eq!(pool.threads(), threads);
        let slots: Vec<Mutex<Vec<(VertexId, DcId)>>> =
            (0..threads).map(|_| Mutex::new(Vec::new())).collect();
        pool.run_on_all(&|worker, scratch| {
            let st = state.read();
            let mut out = slots[worker].lock();
            out.extend(groups[worker].iter().map(|&v| (v, best_of(&st, v, scratch))));
        })
        .unwrap_or_else(|e| panic!("score phase: {e}"));
        for slot in slots {
            for (v, d) in slot.into_inner() {
                rho_by_vertex[v as usize] = d;
            }
        }
    } else {
        let chunks: Vec<Vec<(VertexId, DcId)>> = std::thread::scope(|s| {
            let handles: Vec<_> = groups
                .iter()
                .map(|group| {
                    s.spawn(|| {
                        let mut scratch = MoveScratch::new();
                        let st = state.read();
                        group
                            .iter()
                            .map(|&v| (v, best_of(&st, v, &mut scratch)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("scoring worker panicked")).collect()
        });
        for (v, d) in chunks.into_iter().flatten() {
            rho_by_vertex[v as usize] = d;
        }
    }
    sampled.iter().map(|&v| rho_by_vertex[v as usize]).collect()
}

/// Applies move proposals batch-by-batch (§V-A): batch members are
/// evaluated in parallel against the frozen batch-start state and accepted
/// iff their Eq 10 score is positive; accepted moves apply atomically
/// before the next batch. Returns the number of applied migrations.
///
/// The frozen batch objective is computed **once** per batch by the leader
/// and shared read-only; before the pool every worker recomputed the
/// identical value from the identical frozen state. Sharing is bit-neutral
/// (it is the same number), so the applied-move count is unchanged — the
/// trainer bench cross-checks that across thread counts and dispatch
/// modes.
///
/// When `journal` is `Some`, the accepted moves are appended to it in
/// exact apply order. On the parallel paths only worker 0 applies, in
/// chunk order over the per-proposal accept flags, so the sequence is
/// reconstructed from those flags after the workers finish — the worker
/// closures stay untouched and the journaled order *is* the applied
/// order.
#[allow(clippy::too_many_arguments)]
fn migration_phase(
    env: &CloudEnv,
    state: &RwLock<HybridState<'_>>,
    proposals: &[(VertexId, DcId)],
    weights: Weights,
    threads: usize,
    pool: Option<&WorkerPool>,
    seq_scratch: &mut MoveScratch,
    config: &RlCutConfig,
    mut journal: Option<&mut Vec<(VertexId, DcId)>>,
) -> usize {
    if proposals.is_empty() {
        return 0;
    }
    let batch = config.batch_size.max(1);

    if threads <= 1 || batch == 1 {
        // Strictly sequential Fig 7 flow (also the batch=1 semantics: the
        // "frozen" state is simply the live state).
        let mut st = state.write();
        let scratch = seq_scratch;
        let mut applied = 0usize;
        for chunk in proposals.chunks(batch) {
            let obj = st.objective(env);
            let accepts: Vec<bool> = chunk
                .iter()
                .map(|&(v, to)| {
                    score(&obj, &st.evaluate_move_with(env, v, to, scratch), weights) > 0.0
                })
                .collect();
            for (&(v, to), ok) in chunk.iter().zip(accepts) {
                if ok {
                    st.apply_move_with(env, v, to, scratch);
                    applied += 1;
                    if let Some(j) = journal.as_deref_mut() {
                        j.push((v, to));
                    }
                }
            }
        }
        return applied;
    }

    let accept: Vec<AtomicBool> = (0..proposals.len()).map(|_| AtomicBool::new(false)).collect();
    let applied = AtomicUsize::new(0);
    let barrier = Barrier::new(threads);
    if let Some(pool) = pool {
        debug_assert_eq!(pool.threads(), threads);
        // Frozen batch-start objective, written by the leader (before the
        // first batch, then right after each apply) and read by everyone
        // after the next barrier — the two barriers that already fence
        // apply-vs-read also fence this slot.
        let shared_obj =
            RwLock::new(Objective { transfer_time: 0.0, movement_cost: 0.0, runtime_cost: 0.0 });
        pool.run_on_all(&|worker, scratch| {
            if worker == 0 {
                *shared_obj.write() = state.read().objective(env);
            }
            barrier.wait();
            for (bi, chunk) in proposals.chunks(batch).enumerate() {
                {
                    let st = state.read();
                    let obj = *shared_obj.read();
                    for (j, &(v, to)) in chunk.iter().enumerate() {
                        if j % threads != worker {
                            continue;
                        }
                        let ok =
                            score(&obj, &st.evaluate_move_with(env, v, to, scratch), weights) > 0.0;
                        accept[bi * batch + j].store(ok, Ordering::Relaxed);
                    }
                }
                barrier.wait();
                if worker == 0 {
                    {
                        let mut st = state.write();
                        for (j, &(v, to)) in chunk.iter().enumerate() {
                            if accept[bi * batch + j].load(Ordering::Relaxed) {
                                st.apply_move_with(env, v, to, scratch);
                                applied.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    *shared_obj.write() = state.read().objective(env);
                }
                // Keep later batches from reading a half-applied state (or
                // a stale frozen objective).
                barrier.wait();
            }
        })
        .unwrap_or_else(|e| panic!("migration phase: {e}"));
    } else {
        // Ablation baseline: per-step scope spawn, cold arenas, per-worker
        // objective recomputation — the historical cost profile the pool
        // is benchmarked against.
        std::thread::scope(|s| {
            for worker in 0..threads {
                let accept = &accept;
                let applied = &applied;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut scratch = MoveScratch::new();
                    for (bi, chunk) in proposals.chunks(batch).enumerate() {
                        {
                            let st = state.read();
                            let obj = st.objective(env);
                            for (j, &(v, to)) in chunk.iter().enumerate() {
                                if j % threads != worker {
                                    continue;
                                }
                                let ok = score(
                                    &obj,
                                    &st.evaluate_move_with(env, v, to, &mut scratch),
                                    weights,
                                ) > 0.0;
                                accept[bi * batch + j].store(ok, Ordering::Relaxed);
                            }
                        }
                        barrier.wait();
                        if worker == 0 {
                            let mut st = state.write();
                            for (j, &(v, to)) in chunk.iter().enumerate() {
                                if accept[bi * batch + j].load(Ordering::Relaxed) {
                                    st.apply_move_with(env, v, to, &mut scratch);
                                    applied.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        // Keep later batches from reading a half-applied
                        // state.
                        barrier.wait();
                    }
                });
            }
        });
    }
    if let Some(j) = journal {
        // Worker 0 applied accepted moves batch-by-batch in chunk order;
        // replaying the accept flags in that same order reconstructs the
        // exact apply sequence.
        for (bi, chunk) in proposals.chunks(batch).enumerate() {
            for (jj, &(v, to)) in chunk.iter().enumerate() {
                if accept[bi * batch + jj].load(Ordering::Relaxed) {
                    j.push((v, to));
                }
            }
        }
    }
    applied.into_inner()
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geosim::regions::ec2_eight_regions;
    use geosim::Heterogeneity;

    fn setup(seed: u64) -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(1024, 8192), seed);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed)), ec2_eight_regions())
    }

    fn default_config(geo: &GeoGraph, env: &CloudEnv) -> RlCutConfig {
        let budget = geosim::cost::default_budget(env, &geo.locations, &geo.data_sizes, 0.4);
        RlCutConfig::new(budget).with_seed(1).with_threads(2)
    }

    #[test]
    fn improves_transfer_time_over_natural() {
        let (geo, env) = setup(1);
        let config = default_config(&geo, &env);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let natural = HybridState::natural(&geo, &env, 8, profile.clone(), 10.0).objective(&env);
        let result = partition(&geo, &env, profile, 10.0, &config);
        let trained = result.final_objective(&env);
        assert!(
            trained.transfer_time < natural.transfer_time * 0.9,
            "trained {} vs natural {}",
            trained.transfer_time,
            natural.transfer_time
        );
        assert!(result.total_migrations() > 0);
    }

    #[test]
    fn respects_budget() {
        let (geo, env) = setup(2);
        let config = default_config(&geo, &env);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let result = partition(&geo, &env, profile, 10.0, &config);
        assert!(
            result.final_objective(&env).total_cost() <= config.budget,
            "cost {} budget {}",
            result.final_objective(&env).total_cost(),
            config.budget
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (geo, env) = setup(3);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let c1 = default_config(&geo, &env).with_threads(1);
        let c4 = default_config(&geo, &env).with_threads(4);
        let r1 = partition(&geo, &env, profile.clone(), 10.0, &c1);
        let r4 = partition(&geo, &env, profile, 10.0, &c4);
        assert_eq!(r1.state.core().masters(), r4.state.core().masters());
    }

    #[test]
    fn migration_deterministic_across_thread_counts_1_2_4_8() {
        // Full sampling with the paper's batch size drives both pool
        // phases hard: every step proposes and batch-applies many moves,
        // so this is the migration-phase determinism contract (the
        // original test mostly exercises scoring).
        let (geo, env) = setup(12);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let run = |threads: usize| {
            let c = default_config(&geo, &env)
                .with_threads(threads)
                .with_fixed_sample_rate(1.0)
                .with_max_steps(4);
            partition(&geo, &env, profile.clone(), 10.0, &c)
        };
        let baseline = run(1);
        assert!(baseline.total_migrations() > 0, "nothing migrated; test is vacuous");
        for threads in [2usize, 4, 8] {
            let r = run(threads);
            assert_eq!(
                baseline.state.core().masters(),
                r.state.core().masters(),
                "thread count {threads} diverged"
            );
            assert_eq!(
                baseline.total_migrations(),
                r.total_migrations(),
                "applied-move count changed at {threads} threads"
            );
        }
    }

    #[test]
    fn pool_and_scope_dispatch_bit_identical() {
        // The persistent pool replaces per-step thread::scope spawning;
        // both dispatch modes must train the same plan bit-for-bit.
        let (geo, env) = setup(13);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let base = default_config(&geo, &env)
            .with_threads(4)
            .with_fixed_sample_rate(1.0)
            .with_max_steps(3);
        let pooled = partition(&geo, &env, profile.clone(), 10.0, &base.clone());
        let scoped = partition(&geo, &env, profile, 10.0, &base.with_worker_pool(false));
        assert_eq!(pooled.state.core().masters(), scoped.state.core().masters());
        assert_eq!(pooled.total_migrations(), scoped.total_migrations());
    }

    #[test]
    fn oversized_scan_cap_is_bit_identical_to_uncapped() {
        // `max_scan: None` and a cap that never binds must both take the
        // untouched pre-knob path: same RNG stream, same masters, same
        // per-step telemetry.
        let (geo, env) = setup(16);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let base = default_config(&geo, &env).with_fixed_sample_rate(1.0).with_max_steps(3);
        let uncapped = partition(&geo, &env, profile.clone(), 10.0, &base.clone());
        let capped = partition(&geo, &env, profile, 10.0, &base.with_max_scan(usize::MAX));
        assert_eq!(uncapped.state.core().masters(), capped.state.core().masters());
        assert_eq!(uncapped.total_migrations(), capped.total_migrations());
    }

    #[test]
    fn scan_cap_bounds_every_step_and_blocks_convergence() {
        let (geo, env) = setup(17);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = default_config(&geo, &env)
            .with_fixed_sample_rate(1.0)
            .with_max_scan(100)
            .with_max_steps(6);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let state =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), theta, profile, 10.0);
        let mut session = TrainerSession::new(&geo, &env, state, config);
        while session.step(&env).is_some() {}
        assert_eq!(session.steps().len(), 6, "capped steps must not converge early");
        assert!(!session.converged(), "a capped scan sees only a window — no convergence claim");
        let mut starts = std::collections::HashSet::new();
        for stats in session.steps() {
            assert!(stats.num_agents <= 100, "step scanned {} agents", stats.num_agents);
            starts.insert(stats.num_agents);
        }
        // Full 1024-agent sample, cap 100: every window is exactly full.
        assert_eq!(starts.into_iter().collect::<Vec<_>>(), vec![100]);
    }

    #[test]
    fn pool_arenas_stay_warm_across_steps() {
        // With full sampling the per-worker score groups are identical
        // every step (LPT over the same agents), so worker arenas reach
        // their steady-state capacity during step 1 and must never regrow.
        // batch_size 1 keeps migration on the sequential path so the
        // only pool work is the (static) scoring assignment.
        let (geo, env) = setup(14);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = default_config(&geo, &env)
            .with_threads(4)
            .with_fixed_sample_rate(1.0)
            .with_batch_size(1)
            .with_max_steps(5);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let state =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), theta, profile, 10.0);
        let mut session = TrainerSession::new(&geo, &env, state, config);
        assert!(session.step(&env).is_some());
        let warm = session.pool_scratch_stats().expect("threads=4 builds a pool");
        assert!(warm.iter().all(|s| s.width == env.num_dcs()), "{warm:?}");
        assert!(warm.iter().all(|s| s.neighbor_capacity > 0), "{warm:?}");
        while session.step(&env).is_some() {}
        let steady = session.pool_scratch_stats().unwrap();
        assert_eq!(warm, steady, "arenas regrew after step 1");
    }

    #[test]
    fn resume_cycles_do_not_leak_pool_workers() {
        let (geo, env) = setup(15);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = default_config(&geo, &env).with_threads(4).with_max_steps(3);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let build_state = || {
            HybridState::from_masters(
                &geo,
                &env,
                geo.locations.clone(),
                theta,
                profile.clone(),
                10.0,
            )
        };
        let before = crate::pool::live_os_threads();
        let mut session = TrainerSession::new(&geo, &env, build_state(), config.clone());
        session.step(&env);
        let checkpoint = session.checkpoint();
        for _ in 0..5 {
            // Each resume builds a fresh pool; dropping the previous
            // session must join its workers.
            session = TrainerSession::resume(
                &geo,
                &env,
                &checkpoint,
                config.clone(),
                profile.clone(),
                10.0,
            );
            session.step(&env);
        }
        drop(session);
        let after = crate::pool::live_os_threads();
        // /proc probe returns 0 off-Linux; both sides are then 0.
        assert!(
            after <= before + 1,
            "pool workers leaked across resume cycles: {before} -> {after}"
        );
    }

    #[test]
    fn resources_carry_the_pool_across_sessions() {
        // The dynamic-window contract: finish_with_resources hands the
        // worker pool to the next session, which adopts it instead of
        // respawning — same OS threads before and after.
        let (geo, env) = setup(16);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = default_config(&geo, &env).with_threads(4).with_max_steps(2);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let state = HybridState::from_masters(
            &geo,
            &env,
            geo.locations.clone(),
            theta,
            profile.clone(),
            10.0,
        );
        let mut s1 = TrainerSession::new(&geo, &env, state, config.clone());
        while s1.step(&env).is_some() {}
        let ids_before = s1.pool_thread_ids().expect("threads=4 builds a pool");
        let (r1, resources) = s1.finish_with_resources(&env);
        assert_eq!(resources.pool_thread_ids().as_deref(), Some(ids_before.as_slice()));
        let state2 = HybridState::from_masters(
            &geo,
            &env,
            r1.state.core().masters().to_vec(),
            theta,
            profile,
            10.0,
        );
        let s2 = TrainerSession::with_resources(&geo, &env, state2, config, resources);
        assert_eq!(s2.pool_thread_ids().as_deref(), Some(ids_before.as_slice()));
    }

    #[test]
    fn mismatched_carried_pool_is_replaced() {
        let (geo, env) = setup(17);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let build_state = |p: TrafficProfile| {
            HybridState::from_masters(&geo, &env, geo.locations.clone(), theta, p, 10.0)
        };
        let donor = TrainerSession::new(
            &geo,
            &env,
            build_state(profile.clone()),
            default_config(&geo, &env).with_threads(4).with_max_steps(1),
        );
        let donor_ids = donor.pool_thread_ids().unwrap();
        let (_, resources) = donor.finish_with_resources(&env);
        // Next window wants 2 threads: the 4-worker pool must not be kept.
        let s = TrainerSession::with_resources(
            &geo,
            &env,
            build_state(profile),
            default_config(&geo, &env).with_threads(2).with_max_steps(1),
            resources,
        );
        let ids = s.pool_thread_ids().unwrap();
        assert_eq!(ids.len(), 2);
        assert!(ids.iter().all(|id| !donor_ids.contains(id)));
    }

    #[test]
    fn finish_with_resources_matches_finish() {
        // The move-based reconcile to the best plan must land on the same
        // masters as finish()'s from-scratch rebuild, with a consistent
        // incremental state.
        let (geo, env) = setup(18);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = default_config(&geo, &env).with_max_steps(6);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let build = || {
            let state = HybridState::from_masters(
                &geo,
                &env,
                geo.locations.clone(),
                theta,
                profile.clone(),
                10.0,
            );
            let mut s = TrainerSession::new(&geo, &env, state, config.clone());
            s.run(&env, &mut crate::observer::NoopObserver);
            s
        };
        let rebuilt = build().finish(&env);
        let (reconciled, _resources) = build().finish_with_resources(&env);
        assert_eq!(rebuilt.state.core().masters(), reconciled.state.core().masters());
        reconciled.state.check_consistency(&env);
    }

    #[test]
    fn focus_on_fronts_touched_neighborhoods() {
        let (geo, env) = setup(19);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let state =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), theta, profile, 10.0);
        let config = default_config(&geo, &env);
        let mut session = TrainerSession::new(&geo, &env, state, config);
        let seeds: Vec<VertexId> = vec![3, 99];
        let mut hot: Vec<VertexId> = seeds.clone();
        for &s in &seeds {
            hot.extend_from_slice(geo.graph.out_neighbors(s));
            hot.extend_from_slice(geo.graph.in_neighbors(s));
        }
        hot.sort_unstable();
        hot.dedup();
        hot.retain(|&v| geo.graph.degree(v) > 0);
        session.focus_on(&seeds);
        let order = &session.order;
        // Every trainable hot vertex sits in the prefix, in a stable
        // (degree-preserving) order within each half.
        let prefix: Vec<VertexId> = order[..hot.len()].to_vec();
        let mut sorted_prefix = prefix.clone();
        sorted_prefix.sort_unstable();
        assert_eq!(sorted_prefix, hot);
        for w in order[..hot.len()].windows(2) {
            assert!(
                (geo.graph.degree(w[0]), w[0]) < (geo.graph.degree(w[1]), w[1]),
                "hot prefix lost its degree order"
            );
        }
        // Out-of-range seeds are ignored, empty seeds are a no-op.
        let before = session.order.clone();
        session.focus_on(&[]);
        session.focus_on(&[u32::MAX]);
        assert_eq!(session.order, before);
    }

    #[test]
    fn incremental_state_stays_consistent() {
        let (geo, env) = setup(4);
        let config = default_config(&geo, &env);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let result = partition(&geo, &env, profile, 10.0, &config);
        result.state.check_consistency(&env);
    }

    #[test]
    fn fixed_sample_rate_trains_prefix_only() {
        let (geo, env) = setup(5);
        let config = default_config(&geo, &env).with_fixed_sample_rate(0.1);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let result = partition(&geo, &env, profile, 10.0, &config);
        let trainable =
            (0..geo.num_vertices() as VertexId).filter(|&v| geo.graph.degree(v) > 0).count();
        for s in &result.steps {
            assert_eq!(s.num_agents, (trainable as f64 * 0.1).ceil() as usize);
        }
    }

    #[test]
    fn more_agents_more_overhead() {
        // The Fig 8 mechanism: overhead grows with participating agents.
        let (geo, env) = setup(6);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let small = partition(
            &geo,
            &env,
            profile.clone(),
            10.0,
            &default_config(&geo, &env).with_fixed_sample_rate(0.05).with_threads(1),
        );
        let large = partition(
            &geo,
            &env,
            profile,
            10.0,
            &default_config(&geo, &env).with_fixed_sample_rate(1.0).with_threads(1),
        );
        let t_small: f64 = small.steps.iter().map(|s| s.duration.as_secs_f64()).sum();
        let t_large: f64 = large.steps.iter().map(|s| s.duration.as_secs_f64()).sum();
        let per_step_small = t_small / small.steps.len() as f64;
        let per_step_large = t_large / large.steps.len() as f64;
        assert!(
            per_step_large > 2.0 * per_step_small,
            "full sampling {per_step_large}s/step vs 5% {per_step_small}s/step"
        );
    }

    #[test]
    fn beats_natural_under_high_heterogeneity() {
        // The Fig 3 setting: more heterogeneity, more to win.
        let (geo, _) = setup(7);
        let env = Heterogeneity::High.ec2_environment();
        let config = {
            let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
            RlCutConfig::new(budget).with_seed(7).with_threads(2)
        };
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let natural = HybridState::natural(&geo, &env, 8, profile.clone(), 10.0).objective(&env);
        let result = partition(&geo, &env, profile, 10.0, &config);
        assert!(result.final_objective(&env).transfer_time < natural.transfer_time);
    }

    #[test]
    fn transfer_time_monotone_under_pure_performance_weights() {
        // While under budget every accepted move strictly improved the
        // frozen-state score; with batch_size 1 that means monotone
        // per-step transfer time.
        let (geo, env) = setup(8);
        let config = default_config(&geo, &env).with_batch_size(1).with_threads(1);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let result = partition(&geo, &env, profile, 10.0, &config);
        for w in result.steps.windows(2) {
            assert!(
                w[1].transfer_time <= w[0].transfer_time * (1.0 + 1e-9),
                "step regressed: {} -> {}",
                w[0].transfer_time,
                w[1].transfer_time
            );
        }
    }

    #[test]
    fn t_opt_bounds_overhead() {
        let (geo, env) = setup(9);
        let t_opt = std::time::Duration::from_millis(200);
        let config = default_config(&geo, &env).with_t_opt(t_opt);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let result = partition(&geo, &env, profile, 10.0, &config);
        // The schedule may overshoot by at most ~one step's duration.
        let total: f64 = result.steps.iter().map(|s| s.duration.as_secs_f64()).sum();
        assert!(total < 3.0 * t_opt.as_secs_f64(), "overhead {total}s vs T_opt 0.2s");
    }

    #[test]
    fn penalty_mode_runs_and_converges_slower_or_equal() {
        let (geo, env) = setup(10);
        let mut config = default_config(&geo, &env);
        config.use_penalty = true;
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let with_penalty = partition(&geo, &env, profile.clone(), 10.0, &config);
        config.use_penalty = false;
        let without = partition(&geo, &env, profile, 10.0, &config);
        // Same 10-step horizon: no-penalty must do at least as well (Fig 6).
        assert!(
            without.final_objective(&env).transfer_time
                <= with_penalty.final_objective(&env).transfer_time * 1.05
        );
    }
}
