//! Adaptive re-partitioning for dynamic graphs (§V-C, Exp#5).
//!
//! The paper's dynamic model: a base graph plus windows of inserted
//! vertices/edges; each window must be re-partitioned within the required
//! optimization overhead `T_opt` (60 s in Exp#5). [`AdaptiveRlCut`] keeps
//! the trained master vector across windows: new vertices start at their
//! natural location and the sampler decides how many agents the time
//! budget affords — *this* is what makes RLCut adaptive where Spinner is
//! best-effort (it converges regardless of `T_opt`, overshooting it under
//! fast updates and wasting effort under slow ones, Fig 15b).

use std::time::Duration;

use geograph::{DcId, GeoGraph};
use geopart::TrafficProfile;
use geosim::CloudEnv;

use crate::config::RlCutConfig;
use crate::trainer::partition_from;

/// Telemetry of one (re-)partitioning window.
#[derive(Clone, Copy, Debug)]
pub struct WindowReport {
    /// Wall-clock partitioning overhead of the window.
    pub overhead: Duration,
    /// Transfer time (Eq 1) of the plan after the window.
    pub transfer_time: f64,
    /// Total cost of the plan after the window.
    pub total_cost: f64,
    /// Accepted migrations during the window.
    pub migrations: usize,
}

/// RLCut across a stream of graph-growth windows.
#[derive(Clone, Debug)]
pub struct AdaptiveRlCut {
    config: RlCutConfig,
    /// Recompute the budget each window as this fraction of the current
    /// graph's centralization cost (`None` keeps `config.budget` fixed).
    budget_fraction: Option<f64>,
    masters: Vec<DcId>,
    /// Dead-DC flags of a fault observed since the last window, if any.
    pending_fault: Option<Vec<bool>>,
}

impl AdaptiveRlCut {
    /// Creates the adapter. `budget_fraction = Some(0.4)` reproduces the
    /// paper's default budget policy as the graph grows.
    pub fn new(config: RlCutConfig, budget_fraction: Option<f64>) -> Self {
        AdaptiveRlCut { config, budget_fraction, masters: Vec::new(), pending_fault: None }
    }

    /// The current master assignment (empty before the first window).
    pub fn masters(&self) -> &[DcId] {
        &self.masters
    }

    /// Notes a WAN fault (dead-DC flags) observed between windows. The next
    /// [`Self::on_window`] treats it as a dynamicity spike: masters
    /// stranded on dead DCs are re-seeded to a live location and the
    /// initial sample rate is boosted so the Eq 14 schedule re-trains the
    /// perturbed region aggressively instead of coasting on the converged
    /// schedule.
    pub fn note_fault(&mut self, dead: &[bool]) {
        if dead.iter().any(|&d| d) {
            self.pending_fault = Some(dead.to_vec());
        }
    }

    /// Partitions the current snapshot within `t_opt`, seeding from the
    /// previous window's masters (new vertices start at their natural
    /// DC). Call with the initial graph first, then once per window.
    pub fn on_window(
        &mut self,
        geo: &GeoGraph,
        env: &CloudEnv,
        profile: TrafficProfile,
        num_iterations: f64,
        t_opt: Duration,
    ) -> WindowReport {
        assert!(geo.num_vertices() >= self.masters.len(), "graphs only grow across windows");
        let mut masters = std::mem::take(&mut self.masters);
        masters.extend_from_slice(&geo.locations[masters.len()..]);

        let mut config = self.config.clone().with_t_opt(t_opt);
        if let Some(dead) = self.pending_fault.take() {
            // A fault is a dynamicity spike (§V-C): re-seed stranded
            // masters onto a live DC and widen the first sample so the
            // perturbed neighborhoods are re-trained this window.
            let fallback = dead.iter().position(|&d| !d).expect("at least one live DC") as DcId;
            for (v, m) in masters.iter_mut().enumerate() {
                if dead[*m as usize] {
                    let home = geo.locations[v];
                    *m = if dead[home as usize] { fallback } else { home };
                }
            }
            config.initial_sample_rate = (config.initial_sample_rate * 8.0).min(1.0);
        }
        if let Some(fraction) = self.budget_fraction {
            config.budget =
                geosim::cost::default_budget(env, &geo.locations, &geo.data_sizes, fraction);
        }
        let result = partition_from(geo, env, masters, profile, num_iterations, &config);
        let objective = result.final_objective(env);
        self.masters = result.state.core().masters().to_vec();
        WindowReport {
            overhead: result.total_duration,
            transfer_time: objective.transfer_time,
            total_cost: objective.total_cost(),
            migrations: result.total_migrations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::dynamic::{apply_events, split_for_dynamic};
    use geograph::generators::preferential::preferential_attachment_edges;
    use geograph::locality::{assign_locations, LocalityConfig};
    use geograph::{GeoGraph, GraphBuilder};
    use geosim::regions::ec2_eight_regions;

    /// Builds the Exp#5-style workload: 70 % of edges as the base graph,
    /// the rest arriving in one window.
    fn dynamic_workload() -> (GeoGraph, GeoGraph, Vec<geograph::VertexId>) {
        let n = 1000;
        let edges = preferential_attachment_edges(n, 4, 17);
        let (initial, stream) = split_for_dynamic(&edges, n, 0.7, 60_000);
        let full = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial.edges());
            let new_vertices = apply_events(&mut b, stream.events());
            (b.build(), new_vertices)
        };
        let cfg = LocalityConfig::paper_default(17);
        let locations = assign_locations(&full.0, &cfg);
        let sizes: Vec<u64> = (0..n).map(|_| 2048).collect();
        let geo_initial = GeoGraph::new(initial, locations.clone(), sizes.clone(), cfg.num_dcs);
        let geo_full = GeoGraph::new(full.0, locations, sizes, cfg.num_dcs);
        (geo_initial, geo_full, full.1)
    }

    #[test]
    fn windows_carry_state_forward() {
        let (geo_initial, geo_full, _) = dynamic_workload();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0).with_seed(3).with_threads(2);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let t_opt = Duration::from_millis(500);

        let p0 = TrafficProfile::uniform(geo_initial.num_vertices(), 8.0);
        let w0 = adaptive.on_window(&geo_initial, &env, p0, 10.0, t_opt);
        assert_eq!(adaptive.masters().len(), geo_initial.num_vertices());

        let p1 = TrafficProfile::uniform(geo_full.num_vertices(), 8.0);
        let w1 = adaptive.on_window(&geo_full, &env, p1, 10.0, t_opt);
        assert_eq!(adaptive.masters().len(), geo_full.num_vertices());
        assert!(w0.overhead.as_nanos() > 0);
        assert!(w1.transfer_time > 0.0);
    }

    #[test]
    fn window_overhead_respects_t_opt_roughly() {
        let (geo_initial, _, _) = dynamic_workload();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0).with_seed(4).with_threads(2);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let t_opt = Duration::from_millis(100);
        let p = TrafficProfile::uniform(geo_initial.num_vertices(), 8.0);
        let report = adaptive.on_window(&geo_initial, &env, p, 10.0, t_opt);
        assert!(
            report.overhead < t_opt * 5,
            "window took {:?} against T_opt {:?}",
            report.overhead,
            t_opt
        );
    }

    #[test]
    fn noted_fault_reseeds_stranded_masters() {
        let (geo_initial, _, _) = dynamic_workload();
        let env = ec2_eight_regions();
        // A zero sample rate isolates the fault-reseed path: the window
        // performs no training moves, so the final masters are the seeds.
        let config = RlCutConfig::new(1.0).with_seed(6).with_fixed_sample_rate(0.0);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let p = TrafficProfile::uniform(geo_initial.num_vertices(), 8.0);
        adaptive.on_window(&geo_initial, &env, p.clone(), 10.0, Duration::from_millis(200));
        let victim: DcId = adaptive.masters()[0];

        let mut dead = vec![false; env.num_dcs()];
        dead[victim as usize] = true;
        adaptive.note_fault(&dead);
        adaptive.on_window(&geo_initial, &env, p, 10.0, Duration::from_millis(200));
        assert!(
            adaptive.masters().iter().all(|&m| m != victim),
            "seeds after a noted fault must avoid the dead DC"
        );
    }

    #[test]
    #[should_panic(expected = "grow")]
    fn shrinking_graph_rejected() {
        let (_, geo_full, _) = dynamic_workload();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0).with_seed(5);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let p1 = TrafficProfile::uniform(geo_full.num_vertices(), 8.0);
        adaptive.on_window(&geo_full, &env, p1, 10.0, Duration::from_millis(50));
        // A snapshot with fewer vertices must be rejected.
        let small = GeoGraph::new(
            geograph::Graph::empty(10),
            vec![0; 10],
            vec![2048; 10],
            geo_full.num_dcs,
        );
        let p0 = TrafficProfile::uniform(10, 8.0);
        adaptive.on_window(&small, &env, p0, 10.0, Duration::from_millis(50));
    }
}
