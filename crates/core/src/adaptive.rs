//! Adaptive re-partitioning for dynamic graphs (§V-C, Exp#5).
//!
//! The paper's dynamic model: a base graph plus windows of inserted
//! vertices/edges; each window must be re-partitioned within the required
//! optimization overhead `T_opt` (60 s in Exp#5). [`AdaptiveRlCut`] keeps
//! the trained master vector across windows: new vertices start at their
//! natural location and the sampler decides how many agents the time
//! budget affords — *this* is what makes RLCut adaptive where Spinner is
//! best-effort (it converges regardless of `T_opt`, overshooting it under
//! fast updates and wasting effort under slow ones, Fig 15b).

use std::time::{Duration, Instant};

use geograph::{DcId, GeoGraph, GraphDelta};
use geopart::{DeltaApplyStats, HybridState, PlacementState, PlanError, TrafficProfile};
use geosim::CloudEnv;

use crate::config::RlCutConfig;
use crate::shard::{refresh_views, InProcessShuffle, ShardCarry, ShardError, ShardedTrainer};
use crate::trainer::{SessionResources, TrainerSession};
use geograph::{ShardSpec, ShardView};

/// Why a window could not be partitioned.
#[derive(Debug)]
pub enum WindowError {
    /// The snapshot has fewer vertices than the carried master vector —
    /// the dynamic model only grows across windows (deletions arrive as
    /// edge events inside a delta, never as vertex removal).
    ShrunkGraph {
        /// Masters carried from the previous window.
        carried: usize,
        /// Vertices in the offending snapshot.
        snapshot: usize,
    },
    /// The placement layer rejected the window (e.g. a delta that does
    /// not line up with the carried state).
    Plan(PlanError),
    /// The sharded runtime failed (shuffle transport or protocol error).
    Shard(ShardError),
}

impl std::fmt::Display for WindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WindowError::ShrunkGraph { carried, snapshot } => write!(
                f,
                "graphs only grow across windows: carried {carried} masters, \
                 snapshot has {snapshot} vertices"
            ),
            WindowError::Plan(e) => write!(f, "window rejected by the placement layer: {e}"),
            WindowError::Shard(e) => write!(f, "sharded runtime failed: {e}"),
        }
    }
}

impl std::error::Error for WindowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WindowError::Plan(e) => Some(e),
            WindowError::Shard(e) => Some(e),
            WindowError::ShrunkGraph { .. } => None,
        }
    }
}

impl From<PlanError> for WindowError {
    fn from(e: PlanError) -> Self {
        WindowError::Plan(e)
    }
}

impl From<ShardError> for WindowError {
    fn from(e: ShardError) -> Self {
        WindowError::Shard(e)
    }
}

/// Telemetry of one (re-)partitioning window.
#[derive(Clone, Copy, Debug)]
pub struct WindowReport {
    /// Wall-clock partitioning overhead of the window (state preparation
    /// plus training).
    pub overhead: Duration,
    /// State-preparation share of `overhead`: applying the graph delta to
    /// the carried placement state on the incremental path, or the
    /// from-scratch `from_masters` rebuild on the rebuild path.
    pub delta_apply: Duration,
    /// Training share of `overhead` (the Fig 5 loop).
    pub train: Duration,
    /// Transfer time (Eq 1) of the plan after the window.
    pub transfer_time: f64,
    /// Total cost of the plan after the window.
    pub total_cost: f64,
    /// Accepted migrations during the window.
    pub migrations: usize,
    /// Work counters of the incremental delta apply (`None` when the
    /// window rebuilt from scratch). The zero-rebuild probe: `work_items()`
    /// scales with the delta, not the graph.
    pub delta_stats: Option<DeltaApplyStats>,
}

/// RLCut across a stream of graph-growth windows.
///
/// Two per-window paths:
///
/// * **Incremental** ([`Self::on_window_delta`] with carried state) — the
///   previous window's [`PlacementState`] absorbs the [`GraphDelta`] in
///   work proportional to the touched vertices
///   ([`HybridState::resume_from_parts`]), the trainer session adopts the
///   previous window's worker pool and scratch ([`SessionResources`]),
///   sampling is re-focused on the delta's touched neighborhoods, and the
///   Eq 14 rate floor is raised so a converged schedule cannot starve
///   them. No full-graph state rebuild happens anywhere in the window.
/// * **Rebuild** ([`Self::on_window`], or forced via
///   [`Self::with_rebuild_per_window`] as the ablation baseline) — the
///   historical path: `from_masters` over the whole snapshot each window.
#[derive(Debug)]
pub struct AdaptiveRlCut {
    config: RlCutConfig,
    /// Recompute the budget each window as this fraction of the current
    /// graph's centralization cost (`None` keeps `config.budget` fixed).
    budget_fraction: Option<f64>,
    masters: Vec<DcId>,
    /// Dead-DC flags of a fault observed since the last window, if any.
    pending_fault: Option<Vec<bool>>,
    /// The previous window's placement state and theta, carried so the
    /// next delta resumes it instead of rebuilding (`None` before the
    /// first window and after a rebuild was forced).
    carried: Option<(PlacementState, usize)>,
    /// The previous window's worker pool and scratch arena, carried so
    /// pool workers survive across windows.
    resources: Option<SessionResources>,
    /// Ablation: force the from-scratch rebuild every window even when a
    /// delta and carried state are available.
    rebuild_per_window: bool,
    /// Train each window through the sharded runtime with this many
    /// shards (`None` keeps the single-process trainer).
    num_shards: Option<usize>,
    /// The previous window's shard topology (spec + built views), carried
    /// so a delta window refreshes only the affected views.
    shard_carry: Option<ShardCarry>,
    /// Shard views rebuilt by the last window (`None`: the last window
    /// was unsharded or built every view fresh).
    last_shard_refreshes: Option<usize>,
    /// Ask each window's session to journal its applied moves (the
    /// durable driver's WAL feed). Unsharded only.
    journal_moves: bool,
}

impl AdaptiveRlCut {
    /// Creates the adapter. `budget_fraction = Some(0.4)` reproduces the
    /// paper's default budget policy as the graph grows.
    pub fn new(config: RlCutConfig, budget_fraction: Option<f64>) -> Self {
        AdaptiveRlCut {
            config,
            budget_fraction,
            masters: Vec::new(),
            pending_fault: None,
            carried: None,
            resources: None,
            rebuild_per_window: false,
            num_shards: None,
            shard_carry: None,
            last_shard_refreshes: None,
            journal_moves: false,
        }
    }

    /// [`Self::new`] resuming from recovered state: `carried` is the
    /// placement + theta of the last committed window (e.g. out of a
    /// durable-store replay), adopted bit-for-bit — the next delta window
    /// takes the incremental path exactly as if this process had trained
    /// the previous window itself.
    pub fn with_carried(
        config: RlCutConfig,
        budget_fraction: Option<f64>,
        carried: (PlacementState, usize),
    ) -> Self {
        let mut adaptive = Self::new(config, budget_fraction);
        adaptive.masters = carried.0.masters().to_vec();
        adaptive.carried = Some(carried);
        adaptive
    }

    /// Journals every applied migration of each window's session, handed
    /// back through [`Self::take_window_journal`]. The durable driver's
    /// WAL feed. Incompatible with [`Self::with_shards`] (the sharded
    /// runtime applies moves shard-locally, outside the journaled path).
    pub fn with_move_journal(mut self) -> Self {
        self.journal_moves = true;
        self
    }

    /// Takes the applied-move journal of the last window: `(step, moves)`
    /// entries in exact apply order, the reconcile sweep last (under
    /// [`crate::trainer::RECONCILE_STEP`]). Empty when journaling is off
    /// or no window ran since the last take.
    pub fn take_window_journal(&mut self) -> Vec<(u32, Vec<(geograph::VertexId, DcId)>)> {
        self.resources.as_mut().and_then(|r| r.journal.take()).unwrap_or_default()
    }

    /// The carried placement + theta of the last window (`None` before
    /// the first window completes).
    pub fn carried_parts(&self) -> Option<&(PlacementState, usize)> {
        self.carried.as_ref()
    }

    /// Forces the from-scratch rebuild every window (the ablation baseline
    /// the incremental path is measured against).
    pub fn with_rebuild_per_window(mut self, rebuild: bool) -> Self {
        self.rebuild_per_window = rebuild;
        self
    }

    /// Trains every window through the sharded runtime
    /// ([`ShardedTrainer`]) over `num_shards` contiguous vertex ranges.
    /// Masters stay bit-identical to the unsharded trainer; delta windows
    /// route the [`GraphDelta`] to the owning shards and refresh only the
    /// affected views. `num_shards` must be at least 1.
    pub fn with_shards(mut self, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "at least one shard required");
        self.num_shards = Some(num_shards);
        self
    }

    /// Shard views rebuilt by the last window's delta routing (`None`
    /// before the first sharded window or after a full topology rebuild).
    pub fn last_shard_refreshes(&self) -> Option<usize> {
        self.last_shard_refreshes
    }

    /// The current master assignment (empty before the first window).
    pub fn masters(&self) -> &[DcId] {
        &self.masters
    }

    /// OS thread ids of the carried worker pool (`None` before the first
    /// window or when the config runs poolless). Stable ids across windows
    /// prove cross-window pool persistence.
    pub fn pool_thread_ids(&self) -> Option<Vec<std::thread::ThreadId>> {
        self.resources.as_ref().and_then(|r| r.pool_thread_ids())
    }

    /// Validates the carried placement state against the snapshot it is
    /// supposed to describe: every aggregate (loads, mirror maps, degree
    /// tables, movement cost) is recomputed from scratch and compared. The
    /// incremental ≡ rebuild gate for benches and CI — `Ok(true)` means a
    /// full rebuild of the carried state would be bit-for-bit identical on
    /// integer state (f64 aggregates within `validate_plan` tolerance);
    /// `Ok(false)` means nothing is carried yet.
    pub fn validate_carried(&self, geo: &GeoGraph, env: &CloudEnv) -> Result<bool, PlanError> {
        match &self.carried {
            None => Ok(false),
            Some((core, theta)) => {
                let view = HybridState::from_parts(core.clone(), *theta, geo);
                view.validate_plan(env)?;
                Ok(true)
            }
        }
    }

    /// Notes a WAN fault (dead-DC flags) observed between windows. The next
    /// window treats it as a dynamicity spike: masters stranded on dead
    /// DCs are re-seeded to a live location and the initial sample rate is
    /// boosted so the Eq 14 schedule re-trains the perturbed region
    /// aggressively instead of coasting on the converged schedule. (The
    /// re-seed rewrites masters wholesale, so the next window takes the
    /// rebuild path even when a delta is supplied.)
    pub fn note_fault(&mut self, dead: &[bool]) {
        if dead.iter().any(|&d| d) {
            self.pending_fault = Some(dead.to_vec());
        }
    }

    /// Partitions the current snapshot within `t_opt`, seeding from the
    /// previous window's masters (new vertices start at their natural
    /// DC). Call with the initial graph first, then once per window.
    ///
    /// This is the rebuild path: the placement state is reconstructed from
    /// the masters over the whole snapshot. When the window's change
    /// arrives as a [`GraphDelta`], use [`Self::on_window_delta`] instead.
    pub fn on_window(
        &mut self,
        geo: &GeoGraph,
        env: &CloudEnv,
        profile: TrafficProfile,
        num_iterations: f64,
        t_opt: Duration,
    ) -> Result<WindowReport, WindowError> {
        self.window_inner(geo, env, None, profile, num_iterations, t_opt)
    }

    /// [`Self::on_window`] consuming the window's [`GraphDelta`]: resumes
    /// the carried placement state incrementally (work proportional to the
    /// delta), re-focuses sampling on the touched neighborhoods, and
    /// reuses the carried worker pool. Falls back to the rebuild path on
    /// the first window, after a noted fault, or when
    /// [`Self::with_rebuild_per_window`] forces the ablation.
    pub fn on_window_delta(
        &mut self,
        geo: &GeoGraph,
        env: &CloudEnv,
        delta: &GraphDelta,
        profile: TrafficProfile,
        num_iterations: f64,
        t_opt: Duration,
    ) -> Result<WindowReport, WindowError> {
        self.window_inner(geo, env, Some(delta), profile, num_iterations, t_opt)
    }

    fn window_inner(
        &mut self,
        geo: &GeoGraph,
        env: &CloudEnv,
        delta: Option<&GraphDelta>,
        profile: TrafficProfile,
        num_iterations: f64,
        t_opt: Duration,
    ) -> Result<WindowReport, WindowError> {
        if geo.num_vertices() < self.masters.len() {
            return Err(WindowError::ShrunkGraph {
                carried: self.masters.len(),
                snapshot: geo.num_vertices(),
            });
        }
        assert!(
            !(self.journal_moves && self.num_shards.is_some()),
            "move journaling is unsharded-only: the sharded runtime applies moves outside \
             the journaled path"
        );
        let mut config = self.config.clone().with_t_opt(t_opt);
        if let Some(fraction) = self.budget_fraction {
            config.budget =
                geosim::cost::default_budget(env, &geo.locations, &geo.data_sizes, fraction);
        }
        let fault = self.pending_fault.take();
        let incremental = delta.is_some()
            && !self.rebuild_per_window
            && fault.is_none()
            && self.carried.is_some();

        let prep_start = Instant::now();
        let (state, delta_stats) = if incremental {
            let delta = delta.expect("checked by `incremental`");
            let (core, theta) = self.carried.take().expect("checked by `incremental`");
            let (state, stats) =
                HybridState::resume_from_parts(core, theta, geo, env, delta, &profile)?;
            (state, Some(stats))
        } else {
            // Rebuild path: from-scratch state over the whole snapshot. A
            // carried state (if any) no longer matches the rebuilt masters.
            self.carried = None;
            let mut masters = std::mem::take(&mut self.masters);
            masters.extend_from_slice(&geo.locations[masters.len()..]);
            if let Some(dead) = fault {
                // A fault is a dynamicity spike (§V-C): re-seed stranded
                // masters onto a live DC and widen the first sample so the
                // perturbed neighborhoods are re-trained this window.
                let fallback = dead.iter().position(|&d| !d).expect("at least one live DC") as DcId;
                for (v, m) in masters.iter_mut().enumerate() {
                    if dead[*m as usize] {
                        let home = geo.locations[v];
                        *m = if dead[home as usize] { fallback } else { home };
                    }
                }
                config.initial_sample_rate = (config.initial_sample_rate * 8.0).min(1.0);
            }
            let theta =
                config.theta.unwrap_or_else(|| geograph::degree::suggest_theta(&geo.graph, 0.05));
            let state =
                HybridState::from_masters(geo, env, masters, theta, profile, num_iterations);
            (state, None)
        };
        let delta_apply = prep_start.elapsed();

        let result = if let Some(num_shards) = self.num_shards {
            // Sharded runtime: carry the shard topology across windows —
            // a delta window routes the change to the owning shards and
            // refreshes only the affected views; everything else (no
            // delta, shrunk carry) rebuilds the topology from scratch.
            let carry = match (self.shard_carry.take(), delta) {
                (Some(mut carry), Some(delta))
                    if carry.spec.num_vertices() <= geo.num_vertices() =>
                {
                    self.last_shard_refreshes = Some(refresh_views(&mut carry, &geo.graph, delta));
                    carry
                }
                _ => {
                    self.last_shard_refreshes = None;
                    let spec = ShardSpec::contiguous(geo.num_vertices(), num_shards);
                    let views =
                        (0..num_shards).map(|s| ShardView::build(&geo.graph, &spec, s)).collect();
                    ShardCarry { spec, views }
                }
            };
            let transport = Box::new(InProcessShuffle::new(num_shards));
            let mut session = ShardedTrainer::with_parts(
                geo,
                env,
                state,
                config,
                self.resources.take().unwrap_or_default(),
                carry,
                transport,
            )?;
            if incremental {
                let touched = delta.expect("checked by `incremental`").touched();
                session.focus_on(touched);
                let floor =
                    (8.0 * touched.len() as f64 / session.num_trainable().max(1) as f64).min(1.0);
                session.boost_sampling(floor);
            }
            session.run(env)?;
            let (result, resources, carry) = session.finish_with_parts(env);
            self.resources = Some(resources);
            self.shard_carry = Some(carry);
            result
        } else {
            let mut session = TrainerSession::with_resources(
                geo,
                env,
                state,
                config,
                self.resources.take().unwrap_or_default(),
            );
            if self.journal_moves {
                session.enable_move_journal();
            }
            if incremental {
                // The delta's touched neighborhoods are where quality
                // degraded: front them in the sampling order and floor the
                // Eq 14 rate so even a converged schedule revisits them
                // (the generalization of the fault path's ×8 initial-rate
                // boost).
                let touched = delta.expect("checked by `incremental`").touched();
                session.focus_on(touched);
                let floor =
                    (8.0 * touched.len() as f64 / session.num_trainable().max(1) as f64).min(1.0);
                session.boost_sampling(floor);
            }
            session.run(env, &mut crate::observer::NoopObserver);
            let (result, resources) = session.finish_with_resources(env);
            self.resources = Some(resources);
            result
        };
        // Session wall-clock covers the training loop and the final
        // reconcile to the best plan.
        let train = result.total_duration;

        let objective = result.final_objective(env);
        let migrations = result.total_migrations();
        self.masters = result.state.core().masters().to_vec();
        self.carried = Some(result.state.into_parts());
        Ok(WindowReport {
            overhead: delta_apply + train,
            delta_apply,
            train,
            transfer_time: objective.transfer_time,
            total_cost: objective.total_cost(),
            migrations,
            delta_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::dynamic::{apply_events, split_for_dynamic};
    use geograph::generators::preferential::preferential_attachment_edges;
    use geograph::locality::{assign_locations, LocalityConfig};
    use geograph::{GeoGraph, GraphBuilder};
    use geosim::regions::ec2_eight_regions;

    /// Builds the Exp#5-style workload: 70 % of edges as the base graph,
    /// the rest arriving in one window.
    fn dynamic_workload() -> (GeoGraph, GeoGraph, Vec<geograph::VertexId>) {
        let n = 1000;
        let edges = preferential_attachment_edges(n, 4, 17);
        let (initial, stream) = split_for_dynamic(&edges, n, 0.7, 60_000);
        let full = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial.edges());
            let applied = apply_events(&mut b, stream.events());
            (b.build(), applied.new_vertices)
        };
        let cfg = LocalityConfig::paper_default(17);
        let locations = assign_locations(&full.0, &cfg);
        let sizes: Vec<u64> = (0..n).map(|_| 2048).collect();
        let geo_initial = GeoGraph::new(initial, locations.clone(), sizes.clone(), cfg.num_dcs);
        let geo_full = GeoGraph::new(full.0, locations, sizes, cfg.num_dcs);
        (geo_initial, geo_full, full.1)
    }

    #[test]
    fn windows_carry_state_forward() {
        let (geo_initial, geo_full, _) = dynamic_workload();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0).with_seed(3).with_threads(2);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let t_opt = Duration::from_millis(500);

        let p0 = TrafficProfile::uniform(geo_initial.num_vertices(), 8.0);
        let w0 = adaptive.on_window(&geo_initial, &env, p0, 10.0, t_opt).expect("window 0");
        assert_eq!(adaptive.masters().len(), geo_initial.num_vertices());

        let p1 = TrafficProfile::uniform(geo_full.num_vertices(), 8.0);
        let w1 = adaptive.on_window(&geo_full, &env, p1, 10.0, t_opt).expect("window 1");
        assert_eq!(adaptive.masters().len(), geo_full.num_vertices());
        assert!(w0.overhead.as_nanos() > 0);
        assert!(w1.transfer_time > 0.0);
        // The rebuild path reports its from_masters build as state prep
        // and no delta stats.
        assert!(w1.delta_stats.is_none());
        assert!(w1.overhead >= w1.train);
    }

    #[test]
    fn window_overhead_respects_t_opt_roughly() {
        let (geo_initial, _, _) = dynamic_workload();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0).with_seed(4).with_threads(2);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let t_opt = Duration::from_millis(100);
        let p = TrafficProfile::uniform(geo_initial.num_vertices(), 8.0);
        let report = adaptive.on_window(&geo_initial, &env, p, 10.0, t_opt).expect("window");
        assert!(
            report.overhead < t_opt * 5,
            "window took {:?} against T_opt {:?}",
            report.overhead,
            t_opt
        );
    }

    #[test]
    fn noted_fault_reseeds_stranded_masters() {
        let (geo_initial, _, _) = dynamic_workload();
        let env = ec2_eight_regions();
        // A zero sample rate isolates the fault-reseed path: the window
        // performs no training moves, so the final masters are the seeds.
        let config = RlCutConfig::new(1.0).with_seed(6).with_fixed_sample_rate(0.0);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let p = TrafficProfile::uniform(geo_initial.num_vertices(), 8.0);
        adaptive
            .on_window(&geo_initial, &env, p.clone(), 10.0, Duration::from_millis(200))
            .expect("window 0");
        let victim: DcId = adaptive.masters()[0];

        let mut dead = vec![false; env.num_dcs()];
        dead[victim as usize] = true;
        adaptive.note_fault(&dead);
        adaptive
            .on_window(&geo_initial, &env, p, 10.0, Duration::from_millis(200))
            .expect("window 1");
        assert!(
            adaptive.masters().iter().all(|&m| m != victim),
            "seeds after a noted fault must avoid the dead DC"
        );
    }

    #[test]
    fn shrinking_graph_rejected() {
        let (_, geo_full, _) = dynamic_workload();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0).with_seed(5);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));
        let p1 = TrafficProfile::uniform(geo_full.num_vertices(), 8.0);
        adaptive.on_window(&geo_full, &env, p1, 10.0, Duration::from_millis(50)).expect("window");
        let carried = adaptive.masters().len();
        // A snapshot with fewer vertices must be rejected with a typed
        // error, leaving the carried state untouched.
        let small = GeoGraph::new(
            geograph::Graph::empty(10),
            vec![0; 10],
            vec![2048; 10],
            geo_full.num_dcs,
        );
        let p0 = TrafficProfile::uniform(10, 8.0);
        let err = adaptive
            .on_window(&small, &env, p0, 10.0, Duration::from_millis(50))
            .expect_err("shrunk snapshot must be rejected");
        // The legacy contract's wording ("graphs only grow across
        // windows") stays reachable through Display.
        assert!(format!("{err}").contains("grow"), "{err}");
        match err {
            WindowError::ShrunkGraph { carried: c, snapshot } => {
                assert_eq!(c, carried);
                assert_eq!(snapshot, 10);
            }
            other => panic!("expected ShrunkGraph, got {other}"),
        }
        assert_eq!(adaptive.masters().len(), carried, "carried masters must survive rejection");
    }

    #[test]
    fn delta_windows_reuse_the_worker_pool() {
        // The cross-window persistence gate (also run by scripts/verify.sh):
        // pool thread ids must be identical across delta windows — the
        // pool is carried, not respawned.
        let n = 400;
        let edges = preferential_attachment_edges(n, 3, 23);
        let (initial, stream) = split_for_dynamic(&edges, n, 0.6, 10_000);
        let windows: Vec<_> = stream.windows(2_500).collect();
        assert!(windows.len() >= 3, "need several delta windows, got {}", windows.len());
        let full_graph = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial.edges());
            apply_events(&mut b, stream.events());
            b.build()
        };
        let cfg = LocalityConfig::paper_default(23);
        let locations = assign_locations(&full_graph, &cfg);
        let sizes: Vec<u64> = (0..full_graph.num_vertices()).map(|_| 2048).collect();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0)
            .with_seed(9)
            .with_threads(4)
            .with_fixed_sample_rate(0.05)
            .with_max_steps(2);
        let mut adaptive = AdaptiveRlCut::new(config, Some(0.4));

        let mut graph = initial;
        let geo0 = GeoGraph::new(
            graph.clone(),
            locations[..graph.num_vertices()].to_vec(),
            sizes[..graph.num_vertices()].to_vec(),
            cfg.num_dcs,
        );
        let p0 = TrafficProfile::uniform(geo0.num_vertices(), 8.0);
        adaptive.on_window(&geo0, &env, p0, 10.0, Duration::from_millis(200)).expect("window 0");
        let ids = adaptive.pool_thread_ids().expect("threads=4 builds a pool");
        assert_eq!(ids.len(), 4);

        for (i, window) in windows.iter().enumerate() {
            let delta = geograph::GraphDelta::from_events(&graph, window);
            graph = graph.apply_delta(&delta);
            let geo = GeoGraph::new(
                graph.clone(),
                locations[..graph.num_vertices()].to_vec(),
                sizes[..graph.num_vertices()].to_vec(),
                cfg.num_dcs,
            );
            let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            let report = adaptive
                .on_window_delta(&geo, &env, &delta, profile, 10.0, Duration::from_millis(200))
                .unwrap_or_else(|e| panic!("delta window {i}: {e}"));
            // The incremental path ran: delta stats present, and the work
            // was proportional to the delta, not the graph.
            let stats = report.delta_stats.expect("delta path must report stats");
            assert!(
                stats.work_items() <= 8 * (delta.num_edge_changes() + delta.touched().len()) + 8,
                "window {i}: delta work {} vs delta size {}",
                stats.work_items(),
                delta.num_edge_changes()
            );
            assert_eq!(
                adaptive.pool_thread_ids().as_deref(),
                Some(ids.as_slice()),
                "window {i} respawned the pool"
            );
        }
        assert_eq!(adaptive.masters().len(), graph.num_vertices());
    }

    #[test]
    fn sharded_windows_match_unsharded_across_deltas() {
        // The windowed half of the shard-determinism contract: an
        // AdaptiveRlCut trained through the sharded runtime must produce
        // bit-identical masters to the unsharded one on every window —
        // including incremental delta windows, where the sharded path
        // routes the delta to the owning shards and refreshes only the
        // affected views. theta pinned and the sample rate fixed so the
        // wall-clock scheduler cannot decide differently across runs.
        let n = 400;
        let edges = preferential_attachment_edges(n, 3, 23);
        let (initial, stream) = split_for_dynamic(&edges, n, 0.6, 10_000);
        let windows: Vec<_> = stream.windows(2_500).collect();
        assert!(windows.len() >= 3, "need several delta windows");
        let full_graph = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial.edges());
            apply_events(&mut b, stream.events());
            b.build()
        };
        let cfg = LocalityConfig::paper_default(23);
        let locations = assign_locations(&full_graph, &cfg);
        let sizes: Vec<u64> = (0..full_graph.num_vertices()).map(|_| 2048).collect();
        let env = ec2_eight_regions();
        let config = RlCutConfig::new(1.0)
            .with_seed(13)
            .with_threads(2)
            .with_theta(8)
            .with_fixed_sample_rate(0.2)
            .with_max_steps(2);
        let t_opt = Duration::from_secs(60);
        let mut plain = AdaptiveRlCut::new(config.clone(), Some(0.4));
        let mut sharded = AdaptiveRlCut::new(config, Some(0.4)).with_shards(3);

        let mut graph = initial;
        let geo0 = GeoGraph::new(
            graph.clone(),
            locations[..graph.num_vertices()].to_vec(),
            sizes[..graph.num_vertices()].to_vec(),
            cfg.num_dcs,
        );
        let p0 = TrafficProfile::uniform(geo0.num_vertices(), 8.0);
        plain.on_window(&geo0, &env, p0.clone(), 10.0, t_opt).expect("plain window 0");
        sharded.on_window(&geo0, &env, p0, 10.0, t_opt).expect("sharded window 0");
        assert_eq!(plain.masters(), sharded.masters(), "window 0 diverged");
        assert_eq!(sharded.last_shard_refreshes(), None, "window 0 builds the topology");

        for (i, window) in windows.iter().enumerate() {
            let delta = geograph::GraphDelta::from_events(&graph, window);
            graph = graph.apply_delta(&delta);
            let geo = GeoGraph::new(
                graph.clone(),
                locations[..graph.num_vertices()].to_vec(),
                sizes[..graph.num_vertices()].to_vec(),
                cfg.num_dcs,
            );
            let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            let rp = plain
                .on_window_delta(&geo, &env, &delta, profile.clone(), 10.0, t_opt)
                .unwrap_or_else(|e| panic!("plain window {i}: {e}"));
            let rs = sharded
                .on_window_delta(&geo, &env, &delta, profile, 10.0, t_opt)
                .unwrap_or_else(|e| panic!("sharded window {i}: {e}"));
            assert!(rp.delta_stats.is_some() && rs.delta_stats.is_some());
            assert_eq!(plain.masters(), sharded.masters(), "delta window {i} diverged");
            let refreshed =
                sharded.last_shard_refreshes().expect("delta window must route the delta");
            assert!(refreshed <= 3);
        }

        // A surgical one-edge delta confined to the first shard's range:
        // the other shards' views must be carried verbatim, and the plans
        // must still agree.
        use geograph::dynamic::{EdgeEvent, EventKind};
        let events =
            vec![EdgeEvent { src: 100, dst: 101, timestamp_ms: 0, kind: EventKind::Insert }];
        let delta = geograph::GraphDelta::from_events(&graph, &events);
        graph = graph.apply_delta(&delta);
        let geo = GeoGraph::new(
            graph.clone(),
            locations[..graph.num_vertices()].to_vec(),
            sizes[..graph.num_vertices()].to_vec(),
            cfg.num_dcs,
        );
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        plain
            .on_window_delta(&geo, &env, &delta, profile.clone(), 10.0, t_opt)
            .expect("plain tail window");
        sharded
            .on_window_delta(&geo, &env, &delta, profile, 10.0, t_opt)
            .expect("sharded tail window");
        assert_eq!(plain.masters(), sharded.masters(), "tail window diverged");
        assert!(
            sharded.last_shard_refreshes().expect("tail delta routed") < 3,
            "a one-edge delta must not refresh every shard view"
        );
    }

    #[test]
    fn rebuild_ablation_matches_incremental_masters() {
        // Incremental delta windows and the forced rebuild ablation train
        // over identical state (same masters, same theta, same profile) —
        // the trained plans must agree exactly.
        let n = 300;
        let edges = preferential_attachment_edges(n, 3, 29);
        let (initial, stream) = split_for_dynamic(&edges, n, 0.6, 10_000);
        let windows: Vec<_> = stream.windows(3_400).collect();
        let full_graph = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial.edges());
            apply_events(&mut b, stream.events());
            b.build()
        };
        let cfg = LocalityConfig::paper_default(29);
        let locations = assign_locations(&full_graph, &cfg);
        let sizes: Vec<u64> = (0..full_graph.num_vertices()).map(|_| 2048).collect();
        let env = ec2_eight_regions();
        // theta pinned: the delta path carries the first window's theta
        // forward, the rebuild path would otherwise re-derive it per
        // window from the grown degree distribution.
        let config = RlCutConfig::new(1.0)
            .with_seed(11)
            .with_threads(2)
            .with_theta(8)
            .with_fixed_sample_rate(0.1)
            .with_max_steps(2);
        let mut incremental = AdaptiveRlCut::new(config.clone(), Some(0.4));
        let mut rebuild = AdaptiveRlCut::new(config, Some(0.4)).with_rebuild_per_window(true);

        let mut graph = initial;
        let geo0 = GeoGraph::new(
            graph.clone(),
            locations[..graph.num_vertices()].to_vec(),
            sizes[..graph.num_vertices()].to_vec(),
            cfg.num_dcs,
        );
        let t_opt = Duration::from_millis(200);
        let p0 = TrafficProfile::uniform(geo0.num_vertices(), 8.0);
        incremental.on_window(&geo0, &env, p0.clone(), 10.0, t_opt).expect("inc window 0");
        rebuild.on_window(&geo0, &env, p0, 10.0, t_opt).expect("reb window 0");
        assert_eq!(incremental.masters(), rebuild.masters());

        for (i, window) in windows.iter().enumerate() {
            let delta = geograph::GraphDelta::from_events(&graph, window);
            graph = graph.apply_delta(&delta);
            let geo = GeoGraph::new(
                graph.clone(),
                locations[..graph.num_vertices()].to_vec(),
                sizes[..graph.num_vertices()].to_vec(),
                cfg.num_dcs,
            );
            let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            let ri = incremental
                .on_window_delta(&geo, &env, &delta, profile.clone(), 10.0, t_opt)
                .unwrap_or_else(|e| panic!("inc window {i}: {e}"));
            let rr = rebuild
                .on_window_delta(&geo, &env, &delta, profile, 10.0, t_opt)
                .unwrap_or_else(|e| panic!("reb window {i}: {e}"));
            assert!(ri.delta_stats.is_some(), "incremental path must be taken");
            assert!(rr.delta_stats.is_none(), "ablation must rebuild");
        }
        // Both trained on the same snapshots from the same seeds; the
        // focused sampling order differs, so compare final plan quality
        // rather than bitwise masters: both must be valid, full-length
        // plans over the final graph.
        assert_eq!(incremental.masters().len(), graph.num_vertices());
        assert_eq!(rebuild.masters().len(), graph.num_vertices());
    }
}
