//! Training observability: a callback interface the trainer reports to
//! after every step, for progress bars, live dashboards, or experiment
//! logging — without coupling the trainer to any output format.

use geosim::CloudEnv;

use crate::stats::StepStats;

/// Receives training progress. All methods have default no-op impls, so
/// implementors override only what they need.
pub trait TrainingObserver {
    /// Called before the first step with the training setup.
    fn on_start(&mut self, _num_agents: usize, _max_steps: usize) {}
    /// Called after every completed step.
    fn on_step(&mut self, _step: usize, _stats: &StepStats) {}
    /// Called once when training finishes.
    fn on_finish(&mut self, _converged: bool) {}
}

/// The default observer: does nothing.
#[derive(Default)]
pub struct NoopObserver;

impl TrainingObserver for NoopObserver {}

/// An observer that collects a human-readable progress log — handy in
/// examples and for debugging experiment runs.
#[derive(Default)]
pub struct LogObserver {
    pub lines: Vec<String>,
}

impl TrainingObserver for LogObserver {
    fn on_start(&mut self, num_agents: usize, max_steps: usize) {
        self.lines.push(format!("training: {num_agents} agents, up to {max_steps} steps"));
    }

    fn on_step(&mut self, step: usize, stats: &StepStats) {
        self.lines.push(format!(
            "step {step}: rate {:.3}, {} agents, {} migrations, T={:.3e}, cost=${:.4}, {:?}",
            stats.sample_rate,
            stats.num_agents,
            stats.migrations,
            stats.transfer_time,
            stats.total_cost,
            stats.duration
        ));
    }

    fn on_finish(&mut self, converged: bool) {
        self.lines.push(format!("finished (converged: {converged})"));
    }
}

/// Convenience wrapper: run a partition with an observer attached.
pub fn partition_observed<'g>(
    geo: &'g geograph::GeoGraph,
    env: &CloudEnv,
    profile: geopart::TrafficProfile,
    num_iterations: f64,
    config: &crate::RlCutConfig,
    observer: &mut dyn TrainingObserver,
) -> crate::RlCutResult<'g> {
    crate::trainer::partition_with_observer(geo, env, profile, num_iterations, config, observer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geograph::GeoGraph;
    use geosim::regions::ec2_eight_regions;

    #[test]
    fn log_observer_captures_every_step() {
        let g = rmat(&RmatConfig::social(512, 4096), 12);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(12));
        let env = ec2_eight_regions();
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = crate::RlCutConfig::new(budget).with_seed(1).with_threads(2);
        let mut log = LogObserver::default();
        let result = partition_observed(&geo, &env, profile, 10.0, &config, &mut log);
        // start + one per step + finish.
        assert_eq!(log.lines.len(), result.steps.len() + 2);
        assert!(log.lines[0].starts_with("training:"));
        assert!(log.lines.last().unwrap().starts_with("finished"));
    }

    #[test]
    fn observer_does_not_change_results() {
        let g = rmat(&RmatConfig::social(512, 4096), 13);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(13));
        let env = ec2_eight_regions();
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let config = crate::RlCutConfig::new(budget).with_seed(2).with_threads(2);
        let plain = crate::partition(&geo, &env, profile.clone(), 10.0, &config);
        let mut noop = NoopObserver;
        let observed = partition_observed(&geo, &env, profile, 10.0, &config, &mut noop);
        assert_eq!(plain.state.core().masters(), observed.state.core().masters());
    }
}
