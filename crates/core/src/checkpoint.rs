//! Versioned, checksummed trainer checkpoints.
//!
//! A checkpoint captures the trainer's *logical* state — the LA probability
//! vectors and UCB statistics, the master placement, the migration RNG
//! state, and the best-plan tracker — so training resumes exactly where it
//! stopped instead of restarting. Wall-clock-derived state (the Eq 14
//! sampling scheduler's per-step timings) is deliberately excluded: it is
//! not reproducible across runs, and including it would break the
//! "same seed ⇒ byte-identical checkpoint" guarantee. A restored session
//! restarts its overhead measurements, which only affects time-budgeted
//! (`t_opt`) schedules.
//!
//! ## Binary layout (version 1, all integers little-endian)
//!
//! ```text
//! magic    4 B   "RLCP"
//! version  u32   1
//! seed     u64   config seed the run was started with
//! step     u32   next training step index
//! theta    u64   hybrid-cut degree threshold
//! n        u64   number of vertices / agents
//! m        u32   number of DCs / actions
//! masters  n × u8
//! probs    n·m × f32     LA action probabilities (Eq 12)
//! plays    n·m × u32     UCB per-action play counts
//! mean_rw  n·m × f32     UCB mean realized rewards
//! total    n × u32       UCB per-agent total plays
//! rng      4 × u64       xoshiro256++ state of the migration RNG
//! mv_cost  f64           incrementally tracked Eq 4 movement cost
//! best     n × u8        best masters seen
//! best_obj 3 × f64       best objective (time, movement, runtime)
//! converged u8
//! checksum u64           FNV-1a over everything above
//! ```

use geograph::DcId;
use geopart::Objective;

/// Magic bytes identifying a checkpoint file.
pub const MAGIC: [u8; 4] = *b"RLCP";
/// Current format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint failed to load.
#[derive(Debug)]
pub enum CheckpointError {
    /// The blob does not start with the `RLCP` magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u32),
    /// The trailing FNV-1a checksum does not match the payload.
    ChecksumMismatch { stored: u64, computed: u64 },
    /// The blob ended before the declared arrays did.
    Truncated,
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a trainer checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (expected {VERSION})")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint corrupted: stored checksum {stored:#x} vs computed {computed:#x}"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The trainer's persisted logical state.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainerCheckpoint {
    /// Config seed the run was started with (sanity-checked on resume).
    pub seed: u64,
    /// Next training step index.
    pub step: u32,
    /// Hybrid-cut degree threshold θ.
    pub theta: u64,
    /// Number of DCs / actions.
    pub num_dcs: u32,
    /// Current master placement.
    pub masters: Vec<DcId>,
    /// LA action probabilities, `n × m` row-major.
    pub probs: Vec<f32>,
    /// UCB per-action play counts.
    pub plays: Vec<u32>,
    /// UCB mean realized rewards.
    pub mean_reward: Vec<f32>,
    /// UCB per-agent total plays.
    pub total_plays: Vec<u32>,
    /// Migration RNG (xoshiro256++) state.
    pub rng_state: [u64; 4],
    /// Incrementally tracked Eq 4 movement cost of `masters`.
    pub movement_cost: f64,
    /// Best masters seen so far.
    pub best_masters: Vec<DcId>,
    /// Objective of the best plan, as tracked at save time.
    pub best_objective: Objective,
    /// Whether training had already converged.
    pub converged: bool,
}

/// FNV-1a 64-bit over a byte slice — dependency-free integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        // Checked: a crafted length field must surface as a typed error,
        // never an arithmetic panic.
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, CheckpointError> {
        self.take(n.checked_mul(4).ok_or(CheckpointError::Truncated)?)?
            .chunks_exact(4)
            .map(|c| Ok(u32::from_le_bytes(c.try_into().unwrap())))
            .collect()
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        self.take(n.checked_mul(4).ok_or(CheckpointError::Truncated)?)?
            .chunks_exact(4)
            .map(|c| Ok(f32::from_le_bytes(c.try_into().unwrap())))
            .collect()
    }
}

impl TrainerCheckpoint {
    /// Serializes into the version-1 binary layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.masters.len();
        let m = self.num_dcs as usize;
        assert_eq!(self.probs.len(), n * m);
        assert_eq!(self.plays.len(), n * m);
        assert_eq!(self.mean_reward.len(), n * m);
        assert_eq!(self.total_plays.len(), n);
        assert_eq!(self.best_masters.len(), n);
        let mut out = Vec::with_capacity(64 + n * (2 + 4 + m * 12));
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&self.theta.to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&self.num_dcs.to_le_bytes());
        out.extend_from_slice(&self.masters);
        for p in &self.probs {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for p in &self.plays {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for r in &self.mean_reward {
            out.extend_from_slice(&r.to_le_bytes());
        }
        for t in &self.total_plays {
            out.extend_from_slice(&t.to_le_bytes());
        }
        for s in self.rng_state {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&self.movement_cost.to_bits().to_le_bytes());
        out.extend_from_slice(&self.best_masters);
        for x in [
            self.best_objective.transfer_time,
            self.best_objective.movement_cost,
            self.best_objective.runtime_cost,
        ] {
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        out.push(self.converged as u8);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Deserializes and verifies a version-1 blob.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        if payload.len() < 4 || payload[..4] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader { buf: payload, pos: 4 };
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let seed = r.u64()?;
        let step = r.u32()?;
        let theta = r.u64()?;
        let n = r.u64()? as usize;
        let m = r.u32()?;
        let per_agent = n.checked_mul(m as usize).ok_or(CheckpointError::Truncated)?;
        let masters = r.take(n)?.to_vec();
        let probs = r.f32s(per_agent)?;
        let plays = r.u32s(per_agent)?;
        let mean_reward = r.f32s(per_agent)?;
        let total_plays = r.u32s(n)?;
        let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let movement_cost = r.f64()?;
        let best_masters = r.take(n)?.to_vec();
        let best_objective =
            Objective { transfer_time: r.f64()?, movement_cost: r.f64()?, runtime_cost: r.f64()? };
        let converged = r.u8()? != 0;
        if r.pos != payload.len() {
            return Err(CheckpointError::Truncated); // trailing garbage
        }
        Ok(TrainerCheckpoint {
            seed,
            step,
            theta,
            num_dcs: m,
            masters,
            probs,
            plays,
            mean_reward,
            total_plays,
            rng_state,
            movement_cost,
            best_masters,
            best_objective,
            converged,
        })
    }

    /// Writes the checkpoint to `path` (atomic rename from a temp file, so
    /// a crash mid-write never leaves a half-written checkpoint behind).
    pub fn save(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and verifies a checkpoint from `path`.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainerCheckpoint {
        let n = 5;
        let m = 3u32;
        TrainerCheckpoint {
            seed: 42,
            step: 7,
            theta: 12,
            num_dcs: m,
            masters: vec![0, 1, 2, 0, 1],
            probs: (0..n * m as usize).map(|i| i as f32 * 0.01).collect(),
            plays: (0..n * m as usize).map(|i| i as u32).collect(),
            mean_reward: (0..n * m as usize).map(|i| 1.0 - i as f32 * 0.02).collect(),
            total_plays: vec![3; n],
            rng_state: [1, 2, 3, u64::MAX],
            movement_cost: 0.125,
            best_masters: vec![2, 2, 2, 0, 1],
            best_objective: Objective {
                transfer_time: 1.5,
                movement_cost: 0.25,
                runtime_cost: 0.5,
            },
            converged: false,
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let cp = sample();
        let restored = TrainerCheckpoint::from_bytes(&cp.to_bytes()).unwrap();
        assert_eq!(cp, restored);
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_bytes(), sample().to_bytes());
    }

    #[test]
    fn every_flipped_byte_is_caught() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            assert!(
                TrainerCheckpoint::from_bytes(&bad).is_err(),
                "flip at byte {i} loaded silently"
            );
        }
    }

    #[test]
    fn truncation_is_caught() {
        let bytes = sample().to_bytes();
        for len in [0, 3, 7, 20, bytes.len() - 9, bytes.len() - 1] {
            assert!(TrainerCheckpoint::from_bytes(&bytes[..len]).is_err(), "len {len} loaded");
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[4] = 99; // version field
                       // Recompute the checksum so only the version is wrong.
        let n = bytes.len();
        let checksum = super::fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&checksum.to_le_bytes());
        match TrainerCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::UnsupportedVersion(99)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn crafted_huge_lengths_error_instead_of_panicking() {
        // A checksum-valid blob whose length fields claim u64::MAX agents:
        // the reader's checked arithmetic must surface Truncated, never an
        // overflow panic or a giant allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&7u64.to_le_bytes()); // seed
        bytes.extend_from_slice(&0u32.to_le_bytes()); // step
        bytes.extend_from_slice(&8u64.to_le_bytes()); // theta
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // n
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // m
        let checksum = super::fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        match TrainerCheckpoint::from_bytes(&bytes) {
            Err(CheckpointError::Truncated) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rlcut_checkpoint_tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trainer.ckpt");
        let cp = sample();
        cp.save(&path).unwrap();
        assert_eq!(TrainerCheckpoint::load(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }
}
