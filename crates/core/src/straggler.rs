//! Straggler mitigation: degree-balanced agent→thread assignment (§V-B).
//!
//! The score-function computation dominates a training step and its cost
//! is proportional to the vertex degree (the `O(deg(v))` incremental
//! evaluator). Equal agent *counts* per thread therefore load-imbalances
//! badly on power-law graphs; the paper assigns agents to threads
//! minimizing the variance of per-thread degree sums with a greedy
//! longest-processing-time rule.

use geograph::{Graph, VertexId};

/// Assigns `agents` to `num_threads` groups balancing the per-group degree
/// sums (greedy LPT: heaviest agent first, to the lightest group).
pub fn balanced_assignment(
    graph: &Graph,
    agents: &[VertexId],
    num_threads: usize,
) -> Vec<Vec<VertexId>> {
    assert!(num_threads >= 1);
    let mut by_weight: Vec<VertexId> = agents.to_vec();
    // Heaviest first; stable tie-break by id for determinism.
    by_weight.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
    let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); num_threads];
    let mut loads = vec![0u64; num_threads];
    for v in by_weight {
        let lightest = loads.iter().enumerate().min_by_key(|&(_, &l)| l).map(|(i, _)| i).unwrap();
        // +1 so degree-0 agents still cost something (they run the loop).
        loads[lightest] += graph.degree(v) as u64 + 1;
        groups[lightest].push(v);
    }
    groups
}

/// The naive assignment (round-robin by position) — the ablation the
/// paper's §V-B argues against.
pub fn round_robin_assignment(agents: &[VertexId], num_threads: usize) -> Vec<Vec<VertexId>> {
    assert!(num_threads >= 1);
    let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); num_threads];
    for (i, &v) in agents.iter().enumerate() {
        groups[i % num_threads].push(v);
    }
    groups
}

/// Max/mean ratio of per-group degree sums — 1.0 is perfect balance.
pub fn load_imbalance(graph: &Graph, groups: &[Vec<VertexId>]) -> f64 {
    let loads: Vec<u64> =
        groups.iter().map(|g| g.iter().map(|&v| graph.degree(v) as u64 + 1).sum()).collect();
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    *loads.iter().max().unwrap() as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};

    #[test]
    fn covers_all_agents_once() {
        let g = rmat(&RmatConfig::social(512, 4096), 11);
        let agents: Vec<VertexId> = (0..512).collect();
        let groups = balanced_assignment(&g, &agents, 4);
        let mut all: Vec<VertexId> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, agents);
    }

    #[test]
    fn beats_round_robin_on_skewed_graphs() {
        let g = rmat(&RmatConfig::web(2048, 32768), 11);
        let agents: Vec<VertexId> = (0..2048).collect();
        let balanced = load_imbalance(&g, &balanced_assignment(&g, &agents, 8));
        let naive = load_imbalance(&g, &round_robin_assignment(&agents, 8));
        assert!(balanced <= naive, "LPT {balanced} should not lose to round-robin {naive}");
        assert!(balanced < 1.1, "LPT imbalance too high: {balanced}");
    }

    #[test]
    fn single_thread_degenerate() {
        let g = rmat(&RmatConfig::social(64, 256), 1);
        let agents: Vec<VertexId> = (0..64).collect();
        let groups = balanced_assignment(&g, &agents, 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 64);
        assert_eq!(load_imbalance(&g, &groups), 1.0);
    }

    #[test]
    fn more_threads_than_agents() {
        let g = rmat(&RmatConfig::social(64, 256), 2);
        let groups = balanced_assignment(&g, &[1, 2], 8);
        let non_empty = groups.iter().filter(|g| !g.is_empty()).count();
        assert_eq!(non_empty, 2);
    }

    #[test]
    fn deterministic() {
        let g = rmat(&RmatConfig::social(256, 2048), 3);
        let agents: Vec<VertexId> = (0..256).collect();
        assert_eq!(balanced_assignment(&g, &agents, 4), balanced_assignment(&g, &agents, 4));
    }
}
