//! Per-vertex learning automata: action probabilities (Eq 8/9/12) and UCB
//! statistics (Eq 13).
//!
//! State is stored in flat `n × M` arrays (struct-of-arrays) — the pool is
//! touched for every sampled agent every step, and row-contiguous layout
//! keeps that pass cache-friendly.

use geograph::{DcId, VertexId};

/// The pool of all agents' LA state.
#[derive(Clone, Debug)]
pub struct AgentPool {
    num_actions: usize,
    /// Action probabilities, row per agent, initialized uniform (§IV-B).
    probs: Vec<f32>,
    /// Times each action was selected (UCB `N_n(a)`).
    plays: Vec<u32>,
    /// Mean realized reward of each action when selected (UCB `Q_n(a)`);
    /// the reward is the binary reinforcement signal inverted (1 = the
    /// selected action was the score-optimal DC ρ_v).
    mean_reward: Vec<f32>,
    /// Per-agent total selections (the `n` in Eq 13).
    total_plays: Vec<u32>,
}

impl AgentPool {
    /// Uniform-initialized pool for `num_agents` agents over `num_actions`
    /// DCs.
    pub fn new(num_agents: usize, num_actions: usize) -> Self {
        assert!(num_actions >= 1);
        AgentPool {
            num_actions,
            probs: vec![1.0 / num_actions as f32; num_agents * num_actions],
            plays: vec![0; num_agents * num_actions],
            mean_reward: vec![0.0; num_agents * num_actions],
            total_plays: vec![0; num_agents],
        }
    }

    /// Number of agents in the pool.
    pub fn num_agents(&self) -> usize {
        self.total_plays.len()
    }

    /// Number of actions (DCs) per agent.
    pub fn num_actions(&self) -> usize {
        self.num_actions
    }

    /// Flat snapshot of the pool's arrays, in field order
    /// `(probs, plays, mean_reward, total_plays)` — the LA state a trainer
    /// checkpoint persists.
    pub fn snapshot(&self) -> (&[f32], &[u32], &[f32], &[u32]) {
        (&self.probs, &self.plays, &self.mean_reward, &self.total_plays)
    }

    /// Rebuilds a pool from a [`Self::snapshot`] — checkpoint restore.
    pub fn from_parts(
        num_actions: usize,
        probs: Vec<f32>,
        plays: Vec<u32>,
        mean_reward: Vec<f32>,
        total_plays: Vec<u32>,
    ) -> Self {
        assert!(num_actions >= 1);
        assert_eq!(probs.len(), total_plays.len() * num_actions);
        assert_eq!(plays.len(), probs.len());
        assert_eq!(mean_reward.len(), probs.len());
        AgentPool { num_actions, probs, plays, mean_reward, total_plays }
    }

    /// Grows the pool for dynamic graphs: new agents start uniform.
    pub fn grow(&mut self, num_agents: usize) {
        let old = self.num_agents();
        if num_agents <= old {
            return;
        }
        self.probs.resize(num_agents * self.num_actions, 1.0 / self.num_actions as f32);
        self.plays.resize(num_agents * self.num_actions, 0);
        self.mean_reward.resize(num_agents * self.num_actions, 0.0);
        self.total_plays.resize(num_agents, 0);
    }

    /// The probability row of agent `v`.
    pub fn probabilities(&self, v: VertexId) -> &[f32] {
        let base = v as usize * self.num_actions;
        &self.probs[base..base + self.num_actions]
    }

    /// Reward update (Eq 12 / Eq 8): boost `rewarded`, shrink the rest.
    pub fn reward(&mut self, v: VertexId, rewarded: DcId, alpha: f64) {
        let base = v as usize * self.num_actions;
        let row = &mut self.probs[base..base + self.num_actions];
        for (j, p) in row.iter_mut().enumerate() {
            if j == rewarded as usize {
                *p += (alpha * (1.0 - *p as f64)) as f32;
            } else {
                *p *= (1.0 - alpha) as f32;
            }
        }
    }

    /// Penalty update (Eq 9) for one punished action: shrink it and
    /// redistribute β to the others. The paper disables this by default
    /// (Fig 6: ~30× slower convergence for the same final quality).
    pub fn penalize(&mut self, v: VertexId, punished: DcId, beta: f64) {
        let m = self.num_actions;
        if m == 1 {
            return;
        }
        let base = v as usize * m;
        let row = &mut self.probs[base..base + m];
        for (j, p) in row.iter_mut().enumerate() {
            if j == punished as usize {
                *p *= (1.0 - beta) as f32;
            } else {
                *p = (*p as f64 * (1.0 - beta) + beta / (m - 1) as f64) as f32;
            }
        }
    }

    /// UCB action selection (Eq 13): the LA action probability plus a
    /// decaying exploration bonus, `P_v(a) + c·√(ln(n+1)/(N_n(a)+1))`.
    ///
    /// The probability vector learned by Eq 12 is the exploitation term —
    /// so reward/penalty dynamics (Fig 6) directly shape which actions get
    /// proposed — while the visit-count bonus restores the exploration the
    /// reward-only update sacrifices (§IV-C.4). The `+1` smoothing avoids
    /// the cold-start infinities of textbook UCB1, which would waste `M`
    /// of the paper's 10-step horizon on forced exploration.
    pub fn select_ucb(&self, v: VertexId, c: f64) -> DcId {
        let m = self.num_actions;
        let base = v as usize * m;
        let n = self.total_plays[v as usize] as f64;
        let ln_n = (n + 1.0).ln();
        let mut best: (DcId, f64) = (0, f64::NEG_INFINITY);
        for a in 0..m {
            let plays = self.plays[base + a] as f64;
            let value = self.probs[base + a] as f64 + c * (ln_n / (plays + 1.0)).sqrt();
            if value > best.1 {
                best = (a as DcId, value);
            }
        }
        best.0
    }

    /// Mean realized reward of `(v, action)` across its selections — a
    /// diagnostic for how often the automaton's choices matched ρ_v.
    pub fn mean_reward(&self, v: VertexId, action: DcId) -> f32 {
        self.mean_reward[v as usize * self.num_actions + action as usize]
    }

    /// Records that agent `v` selected `action` and observed `reward`
    /// (running-mean update of `Q_n(a)`).
    pub fn record_play(&mut self, v: VertexId, action: DcId, reward: f64) {
        let idx = v as usize * self.num_actions + action as usize;
        self.plays[idx] += 1;
        self.total_plays[v as usize] += 1;
        let n = self.plays[idx] as f64;
        let q = self.mean_reward[idx] as f64;
        self.mean_reward[idx] = (q + (reward - q) / n) as f32;
    }

    /// The most probable action of agent `v` — the converged policy.
    pub fn best_action(&self, v: VertexId) -> DcId {
        let row = self.probabilities(v);
        row.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(d, _)| d as DcId)
            .unwrap_or(0)
    }

    /// Maximum probability of agent `v` — a convergence indicator.
    pub fn confidence(&self, v: VertexId) -> f32 {
        self.probabilities(v).iter().copied().fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_initialization() {
        let pool = AgentPool::new(3, 4);
        for p in pool.probabilities(1) {
            assert!((p - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn reward_concentrates_probability() {
        let mut pool = AgentPool::new(1, 4);
        for _ in 0..20 {
            pool.reward(0, 2, 0.3);
        }
        assert_eq!(pool.best_action(0), 2);
        assert!(pool.confidence(0) > 0.99);
        let sum: f32 = pool.probabilities(0).iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "probabilities drifted: {sum}");
    }

    #[test]
    fn penalty_redistributes() {
        let mut pool = AgentPool::new(1, 4);
        pool.penalize(0, 0, 0.2);
        let row = pool.probabilities(0);
        assert!(row[0] < 0.25);
        assert!(row[1] > 0.25);
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exploration_bonus_rotates_unplayed_actions() {
        let mut pool = AgentPool::new(1, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3 {
            let a = pool.select_ucb(0, 1.0);
            seen.insert(a);
            pool.record_play(0, a, 0.0);
        }
        assert_eq!(seen.len(), 3, "with uniform P the bonus must rotate actions");
    }

    #[test]
    fn concentrated_probability_dominates_selection() {
        let mut pool = AgentPool::new(1, 3);
        for _ in 0..10 {
            pool.reward(0, 2, 0.3);
        }
        // Even with a fresh (unplayed) alternative, the near-1.0
        // probability of action 2 wins under a modest bonus.
        pool.record_play(0, 2, 1.0);
        assert_eq!(pool.select_ucb(0, 0.3), 2);
    }

    #[test]
    fn played_actions_lose_exploration_bonus() {
        let mut pool = AgentPool::new(1, 2);
        // Equal probabilities; action 0 played many times.
        for _ in 0..10 {
            pool.record_play(0, 0, 0.0);
        }
        assert_eq!(pool.select_ucb(0, 1.0), 1);
    }

    #[test]
    fn mean_reward_tracked() {
        let mut pool = AgentPool::new(1, 2);
        pool.record_play(0, 1, 1.0);
        pool.record_play(0, 1, 0.0);
        assert!((pool.mean_reward(0, 1) - 0.5).abs() < 1e-6);
        assert_eq!(pool.mean_reward(0, 0), 0.0);
    }

    #[test]
    fn grow_preserves_existing_state() {
        let mut pool = AgentPool::new(1, 2);
        pool.reward(0, 1, 0.5);
        let before = pool.probabilities(0).to_vec();
        pool.grow(3);
        assert_eq!(pool.num_agents(), 3);
        assert_eq!(pool.probabilities(0), &before[..]);
        assert!((pool.probabilities(2)[0] - 0.5).abs() < 1e-6);
    }
}
