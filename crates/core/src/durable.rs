//! The durable dynamic-window driver: [`AdaptiveRlCut`] behind a WAL.
//!
//! [`DurableAdaptive`] owns the evolving [`GeoGraph`] and a
//! [`geodur::DurableStore`], and wraps every window in the durable
//! transaction protocol:
//!
//! 1. the window's inputs (delta, new-vertex suffixes, profile suffix,
//!    fault flags) are logged and fsynced **before** training starts;
//! 2. the window trains through the inner [`AdaptiveRlCut`] with move
//!    journaling on;
//! 3. the journal's accepted-migration batches and a commit record
//!    (carried theta, final movement-cost bits, masters hash) are
//!    appended and fsynced together — one group commit seals the window.
//!
//! [`DurableAdaptive::recover`] is the other half: latest valid snapshot
//! plus WAL replay (see [`geodur::replay`]) reconstructs the pipeline
//! bit-exactly at the last committed window boundary and returns a driver
//! that continues as if the process had never died — the next window
//! resumes the recovered placement through the same incremental path,
//! with the same per-window config/RNG derivation, so the continued run's
//! masters match an uninterrupted run's bit for bit.

use std::path::Path;
use std::time::Duration;

use geodur::{
    env_fingerprint, masters_fnv, Batch, Commit, DurableError, DurableStore, RecoveryReport,
    Snapshot, WindowStart,
};
use geograph::{DcId, GeoGraph, GraphDelta};
use geopart::TrafficProfile;
use geosim::CloudEnv;

use crate::adaptive::{AdaptiveRlCut, WindowError, WindowReport};
use crate::config::RlCutConfig;

/// Why a durable window or recovery failed.
#[derive(Debug)]
pub enum DurableWindowError {
    /// The training window itself failed.
    Window(WindowError),
    /// The durability layer failed (I/O, corruption, replay divergence).
    Durable(DurableError),
    /// The caller's window inputs are inconsistent (e.g. suffix lengths
    /// that do not match the delta's vertex growth).
    Input(&'static str),
}

impl std::fmt::Display for DurableWindowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableWindowError::Window(e) => write!(f, "window failed: {e}"),
            DurableWindowError::Durable(e) => write!(f, "durability layer failed: {e}"),
            DurableWindowError::Input(what) => write!(f, "inconsistent window inputs: {what}"),
        }
    }
}

impl std::error::Error for DurableWindowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableWindowError::Window(e) => Some(e),
            DurableWindowError::Durable(e) => Some(e),
            DurableWindowError::Input(_) => None,
        }
    }
}

impl From<WindowError> for DurableWindowError {
    fn from(e: WindowError) -> Self {
        DurableWindowError::Window(e)
    }
}

impl From<DurableError> for DurableWindowError {
    fn from(e: DurableError) -> Self {
        DurableWindowError::Durable(e)
    }
}

/// What [`DurableAdaptive::recover`] found and rebuilt.
#[derive(Clone, Copy, Debug)]
pub struct RecoverySummary {
    /// Low-level scan report (torn bytes, skipped snapshots).
    pub report: RecoveryReport,
    /// Next window the driver expects (also how many windows are
    /// committed in total).
    pub next_window: u64,
    /// Windows replayed from the WAL on top of the snapshot.
    pub replayed_windows: u64,
    /// `true` when an uncommitted window was found and rolled back — the
    /// caller must re-feed that window's events.
    pub rolled_back: bool,
}

/// Called after every committed window with the committed window index
/// and the sealed placement state — the serving layer's plan-publish
/// hook ([`geoserve`-style daemons] snapshot a routing table from it).
pub type CommitHook = Box<dyn FnMut(u64, &geopart::PlacementState) + Send>;

/// [`AdaptiveRlCut`] wrapped in WAL + snapshot durability.
pub struct DurableAdaptive {
    inner: AdaptiveRlCut,
    store: DurableStore,
    geo: GeoGraph,
    window: u64,
    /// Fingerprint of the environment the last window trained under
    /// (stamped into window starts and snapshots).
    env_fp: u64,
    /// Fault flags noted since the last window, logged into the next
    /// window's start record.
    pending_dead: Option<Vec<bool>>,
    /// Cut a snapshot every this many committed windows (0 = only on
    /// explicit [`Self::snapshot_now`]).
    snapshot_every: u64,
    windows_since_snapshot: u64,
    /// Plan-publish hook, run strictly *after* the commit fsync so a
    /// published plan is always a durable plan.
    on_commit: Option<CommitHook>,
}

impl std::fmt::Debug for DurableAdaptive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableAdaptive")
            .field("window", &self.window)
            .field("snapshot_every", &self.snapshot_every)
            .field("has_commit_hook", &self.on_commit.is_some())
            .finish_non_exhaustive()
    }
}

impl DurableAdaptive {
    /// Initializes a fresh durable pipeline at `dir` starting from `geo`.
    /// The initial masters are the vertices' home locations (the paper's
    /// natural placement), which recovery re-derives from the logged
    /// geo — callers wanting a different seed placement train it in
    /// window 0.
    pub fn create(
        dir: &Path,
        config: RlCutConfig,
        budget_fraction: Option<f64>,
        geo: GeoGraph,
        env: &CloudEnv,
        snapshot_every: u64,
    ) -> Result<DurableAdaptive, DurableError> {
        let store = DurableStore::create(dir, &geo, env)?;
        let inner = AdaptiveRlCut::new(config, budget_fraction).with_move_journal();
        Ok(DurableAdaptive {
            inner,
            store,
            geo,
            window: 0,
            env_fp: env_fingerprint(env),
            pending_dead: None,
            snapshot_every,
            windows_since_snapshot: 0,
            on_commit: None,
        })
    }

    /// Recovers the pipeline from `dir` at its last committed window
    /// boundary. `config` and `budget_fraction` must match what the dead
    /// process ran with — they are the trainer's behavior, not logged
    /// state — and `env` must fingerprint-match the environment the store
    /// was written under.
    pub fn recover(
        dir: &Path,
        config: RlCutConfig,
        budget_fraction: Option<f64>,
        env: &CloudEnv,
        snapshot_every: u64,
    ) -> Result<(DurableAdaptive, RecoverySummary), DurableError> {
        let (recovered, report, store) = DurableStore::recover(dir, env)?;
        let summary = RecoverySummary {
            report,
            next_window: recovered.next_window,
            replayed_windows: recovered.replayed_windows,
            rolled_back: recovered.rolled_back,
        };
        let inner = match recovered.parts {
            Some(parts) => AdaptiveRlCut::with_carried(config, budget_fraction, parts),
            None => AdaptiveRlCut::new(config, budget_fraction),
        }
        .with_move_journal();
        let durable = DurableAdaptive {
            inner,
            store,
            geo: recovered.geo,
            window: recovered.next_window,
            env_fp: env_fingerprint(env),
            pending_dead: None,
            snapshot_every,
            windows_since_snapshot: 0,
            on_commit: None,
        };
        Ok((durable, summary))
    }

    /// Installs the plan-publish hook: called after every window's commit
    /// record is fsynced, with the committed window index and the sealed
    /// placement. Replaces any previous hook.
    pub fn set_commit_hook(&mut self, hook: CommitHook) {
        self.on_commit = Some(hook);
    }

    /// Notes a WAN fault (dead-DC flags) observed between windows; the
    /// next window logs the flags, takes the rebuild path, and re-seeds
    /// stranded masters — identically live and at replay.
    pub fn note_fault(&mut self, dead: &[bool]) {
        if dead.iter().any(|&d| d) {
            self.pending_dead = Some(dead.to_vec());
        }
    }

    /// Runs one durable window. `delta` + the suffixes describe the graph
    /// growth since the previous window (all empty/`None` for a
    /// stationary window, and for window 0, whose full graph is already
    /// in the genesis snapshot); `profile` is the full traffic profile
    /// over the grown graph, as in [`AdaptiveRlCut::on_window_delta`].
    #[allow(clippy::too_many_arguments)]
    pub fn window(
        &mut self,
        env: &CloudEnv,
        delta: Option<&GraphDelta>,
        loc_suffix: &[DcId],
        size_suffix: &[u64],
        profile: TrafficProfile,
        num_iterations: f64,
        t_opt: Duration,
    ) -> Result<WindowReport, DurableWindowError> {
        // 1. Evolve the owned geo-graph and validate the inputs line up.
        let old_n = self.geo.num_vertices();
        let new_n = match delta {
            Some(d) => {
                if d.old_num_vertices() != old_n {
                    return Err(DurableWindowError::Input("delta targets a different graph"));
                }
                d.new_num_vertices()
            }
            None => {
                if !loc_suffix.is_empty() || !size_suffix.is_empty() {
                    return Err(DurableWindowError::Input(
                        "vertex suffixes require a delta that grows the graph",
                    ));
                }
                old_n
            }
        };
        if old_n + loc_suffix.len() != new_n || old_n + size_suffix.len() != new_n {
            return Err(DurableWindowError::Input(
                "location/size suffixes do not cover the delta's new vertices",
            ));
        }
        if profile.len() != new_n {
            return Err(DurableWindowError::Input("profile does not cover the grown graph"));
        }
        if let Some(d) = delta {
            let graph = self.geo.graph.apply_delta(d);
            let mut locations = std::mem::take(&mut self.geo.locations);
            let mut sizes = std::mem::take(&mut self.geo.data_sizes);
            locations.extend_from_slice(loc_suffix);
            sizes.extend_from_slice(size_suffix);
            self.geo = GeoGraph::new(graph, locations, sizes, self.geo.num_dcs);
        }

        // 2. Log the window's inputs durably BEFORE training touches them.
        //    The profile suffix starts where the committed placement's
        //    profile ends (window 0 logs the whole profile).
        let dead = self.pending_dead.take();
        let profile_base = self.inner.masters().len();
        let ws = WindowStart {
            window: self.window,
            delta: delta.cloned(),
            loc_suffix: loc_suffix.to_vec(),
            size_suffix: size_suffix.to_vec(),
            gather_suffix: profile.gather_bytes[profile_base..].to_vec(),
            apply_suffix: profile.apply_bytes[profile_base..].to_vec(),
            num_iterations,
            dead: dead.clone(),
            env_fp: env_fingerprint(env),
        };
        self.env_fp = ws.env_fp;
        self.store.log_window_start(&ws)?;

        // 3. Train the window (journaling every applied move).
        if let Some(d) = &dead {
            self.inner.note_fault(d);
        }
        let report = match delta {
            Some(d) => {
                self.inner.on_window_delta(&self.geo, env, d, profile, num_iterations, t_opt)?
            }
            None => self.inner.on_window(&self.geo, env, profile, num_iterations, t_opt)?,
        };

        // 4. Seal it: batches + commit under one fsync.
        for (step, moves) in self.inner.take_window_journal() {
            self.store.log_batch(&Batch { window: self.window, step, moves })?;
        }
        let (core, theta) = self.inner.carried_parts().expect("window completed, state is carried");
        self.store.log_commit(&Commit {
            window: self.window,
            theta: *theta as u64,
            movement_cost_bits: core.movement_cost().to_bits(),
            masters_fnv: masters_fnv(core.masters()),
        })?;
        if let Some(hook) = &mut self.on_commit {
            hook(self.window, core);
        }
        self.window += 1;

        // 5. Snapshot cadence: cut at the committed boundary, prune behind.
        self.windows_since_snapshot += 1;
        if self.snapshot_every > 0 && self.windows_since_snapshot >= self.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(report)
    }

    /// Cuts a snapshot at the current committed boundary and prunes
    /// snapshots and WAL segments behind it. Returns the snapshot's
    /// encoded size.
    pub fn snapshot_now(&mut self) -> Result<u64, DurableError> {
        let placement = self.inner.carried_parts().cloned();
        let snap = Snapshot {
            lsn: self.store.next_lsn(),
            window: self.window,
            env_fp: self.env_fp,
            geo: self.geo.clone(),
            placement,
            trainer: None,
        };
        let bytes = self.store.write_snapshot(&snap)?;
        self.windows_since_snapshot = 0;
        Ok(bytes)
    }

    /// The current master assignment (home locations before window 0).
    pub fn masters(&self) -> &[DcId] {
        if self.inner.masters().is_empty() {
            &self.geo.locations
        } else {
            self.inner.masters()
        }
    }

    /// The geo-graph as of the last window.
    pub fn geo(&self) -> &GeoGraph {
        &self.geo
    }

    /// Index of the next window.
    pub fn next_window(&self) -> u64 {
        self.window
    }

    /// The underlying store (bench accounting: appended bytes, LSNs).
    pub fn store(&self) -> &DurableStore {
        &self.store
    }

    /// The inner adaptive trainer (read-only).
    pub fn inner(&self) -> &AdaptiveRlCut {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::dynamic::{apply_events, split_for_dynamic};
    use geograph::generators::preferential::preferential_attachment_edges;
    use geograph::locality::{assign_locations, LocalityConfig};
    use geograph::GraphBuilder;
    use geosim::regions::ec2_eight_regions;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rlcut_dur_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// theta pinned and the sample rate fixed so the wall-clock scheduler
    /// cannot decide differently across the reference and durable runs.
    fn pinned_config(seed: u64) -> RlCutConfig {
        RlCutConfig::new(1.0)
            .with_seed(seed)
            .with_threads(2)
            .with_theta(8)
            .with_fixed_sample_rate(0.2)
            .with_max_steps(2)
    }

    struct Workload {
        geo0: GeoGraph,
        /// Per delta window: the delta plus the new vertices' location and
        /// data-size suffixes.
        steps: Vec<(GraphDelta, Vec<DcId>, Vec<u64>)>,
    }

    fn workload() -> Workload {
        let n = 400;
        let edges = preferential_attachment_edges(n, 3, 23);
        let (initial, stream) = split_for_dynamic(&edges, n, 0.6, 10_000);
        let windows: Vec<_> = stream.windows(2_500).collect();
        assert!(windows.len() >= 3, "need several delta windows, got {}", windows.len());
        let full_graph = {
            let mut b = GraphBuilder::new(n);
            b.add_edges(initial.edges());
            apply_events(&mut b, stream.events());
            b.build()
        };
        let cfg = LocalityConfig::paper_default(23);
        let locations = assign_locations(&full_graph, &cfg);
        let sizes: Vec<u64> = (0..full_graph.num_vertices()).map(|_| 2048).collect();

        let mut graph = initial;
        let geo0 = GeoGraph::new(
            graph.clone(),
            locations[..graph.num_vertices()].to_vec(),
            sizes[..graph.num_vertices()].to_vec(),
            cfg.num_dcs,
        );
        let mut steps = Vec::new();
        for window in &windows {
            let delta = GraphDelta::from_events(&graph, window);
            let old_n = graph.num_vertices();
            graph = graph.apply_delta(&delta);
            let new_n = graph.num_vertices();
            steps.push((delta, locations[old_n..new_n].to_vec(), sizes[old_n..new_n].to_vec()));
        }
        Workload { geo0, steps }
    }

    fn evolve(geo: GeoGraph, delta: &GraphDelta, locs: &[DcId], sizes: &[u64]) -> GeoGraph {
        let num_dcs = geo.num_dcs;
        let graph = geo.graph.apply_delta(delta);
        let mut locations = geo.locations;
        let mut data_sizes = geo.data_sizes;
        locations.extend_from_slice(locs);
        data_sizes.extend_from_slice(sizes);
        GeoGraph::new(graph, locations, data_sizes, num_dcs)
    }

    /// The uninterrupted reference: a plain `AdaptiveRlCut` over window 0
    /// plus the first `upto` delta windows, with an optional fault noted
    /// before window `fault_before`.
    fn reference_after(
        w: &Workload,
        upto: usize,
        env: &CloudEnv,
        fault_before: Option<(usize, &[bool])>,
    ) -> (Vec<DcId>, u64) {
        let mut adaptive = AdaptiveRlCut::new(pinned_config(13), Some(0.4));
        let t_opt = Duration::from_secs(60);
        let p0 = TrafficProfile::uniform(w.geo0.num_vertices(), 8.0);
        adaptive.on_window(&w.geo0, env, p0, 10.0, t_opt).expect("reference window 0");
        let mut geo = w.geo0.clone();
        for (i, (delta, locs, sizes)) in w.steps.iter().take(upto).enumerate() {
            if let Some((at, dead)) = fault_before {
                if at == i + 1 {
                    adaptive.note_fault(dead);
                }
            }
            geo = evolve(geo, delta, locs, sizes);
            let p = TrafficProfile::uniform(geo.num_vertices(), 8.0);
            adaptive
                .on_window_delta(&geo, env, delta, p, 10.0, t_opt)
                .unwrap_or_else(|e| panic!("reference delta window {i}: {e}"));
        }
        let (core, _) = adaptive.carried_parts().expect("reference carried");
        (core.masters().to_vec(), core.movement_cost().to_bits())
    }

    #[test]
    fn kill_between_windows_recovers_and_continues_bit_exactly() {
        let w = workload();
        let env = ec2_eight_regions();
        let t_opt = Duration::from_secs(60);
        let dir = tmp_dir("continue");
        let split = 2; // "die" after window 0 + 2 delta windows

        {
            let mut durable = DurableAdaptive::create(
                &dir,
                pinned_config(13),
                Some(0.4),
                w.geo0.clone(),
                &env,
                2,
            )
            .expect("create");
            let p0 = TrafficProfile::uniform(w.geo0.num_vertices(), 8.0);
            durable.window(&env, None, &[], &[], p0, 10.0, t_opt).expect("window 0");
            for (delta, locs, sizes) in w.steps.iter().take(split) {
                let p = TrafficProfile::uniform(delta.new_num_vertices(), 8.0);
                durable.window(&env, Some(delta), locs, sizes, p, 10.0, t_opt).expect("delta");
            }
        } // everything committed is synced; dropping the driver = process death

        let (mut recovered, summary) =
            DurableAdaptive::recover(&dir, pinned_config(13), Some(0.4), &env, 2).expect("recover");
        assert_eq!(summary.next_window, 1 + split as u64);
        assert!(!summary.rolled_back, "all windows were committed");

        // Recovered state is bit-identical to the uninterrupted run at
        // the kill point...
        let (mid_masters, mid_cost) = reference_after(&w, split, &env, None);
        assert_eq!(recovered.masters(), &mid_masters[..], "recovered masters diverged");
        let (core, _) = recovered.inner().carried_parts().expect("recovered carried");
        assert_eq!(core.movement_cost().to_bits(), mid_cost, "movement cost not bit-exact");

        // ...and the continuation lands exactly where the uninterrupted
        // run lands.
        for (delta, locs, sizes) in w.steps.iter().skip(split) {
            let p = TrafficProfile::uniform(delta.new_num_vertices(), 8.0);
            recovered.window(&env, Some(delta), locs, sizes, p, 10.0, t_opt).expect("continued");
        }
        let (final_masters, final_cost) = reference_after(&w, w.steps.len(), &env, None);
        assert_eq!(recovered.masters(), &final_masters[..], "continuation diverged");
        let (core, _) = recovered.inner().carried_parts().expect("continued carried");
        assert_eq!(core.movement_cost().to_bits(), final_cost);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_window_recovers_identically() {
        let w = workload();
        let env = ec2_eight_regions();
        let t_opt = Duration::from_secs(60);
        let dir = tmp_dir("fault");
        let mut dead = vec![false; env.num_dcs()];
        dead[2] = true;

        {
            let mut durable = DurableAdaptive::create(
                &dir,
                pinned_config(13),
                Some(0.4),
                w.geo0.clone(),
                &env,
                0,
            )
            .expect("create");
            let p0 = TrafficProfile::uniform(w.geo0.num_vertices(), 8.0);
            durable.window(&env, None, &[], &[], p0, 10.0, t_opt).expect("window 0");
            durable.note_fault(&dead);
            let (delta, locs, sizes) = &w.steps[0];
            let p = TrafficProfile::uniform(delta.new_num_vertices(), 8.0);
            durable.window(&env, Some(delta), locs, sizes, p, 10.0, t_opt).expect("fault window");
        }

        let (recovered, summary) =
            DurableAdaptive::recover(&dir, pinned_config(13), Some(0.4), &env, 0).expect("recover");
        assert_eq!(summary.next_window, 2);
        let (masters, cost) = reference_after(&w, 1, &env, Some((1, &dead[..])));
        assert_eq!(recovered.masters(), &masters[..], "fault-window replay diverged");
        let (core, _) = recovered.inner().carried_parts().expect("carried");
        assert_eq!(core.movement_cost().to_bits(), cost);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inconsistent_window_inputs_are_typed_errors() {
        let w = workload();
        let env = ec2_eight_regions();
        let dir = tmp_dir("inputs");
        let mut durable =
            DurableAdaptive::create(&dir, pinned_config(13), Some(0.4), w.geo0.clone(), &env, 0)
                .expect("create");
        let t_opt = Duration::from_millis(50);
        let n = w.geo0.num_vertices();

        // Suffixes without a delta.
        let err = durable
            .window(&env, None, &[0], &[2048], TrafficProfile::uniform(n, 8.0), 10.0, t_opt)
            .expect_err("suffixes without delta");
        assert!(matches!(err, DurableWindowError::Input(_)), "{err}");

        // Profile over the wrong vertex count.
        let err = durable
            .window(&env, None, &[], &[], TrafficProfile::uniform(n + 1, 8.0), 10.0, t_opt)
            .expect_err("oversized profile");
        assert!(matches!(err, DurableWindowError::Input(_)), "{err}");

        // Suffixes that do not cover the delta's growth (one location too
        // many, whatever the actual growth is).
        let (delta, locs, sizes) = &w.steps[0];
        let mut long_locs = locs.clone();
        long_locs.push(0);
        let err = durable
            .window(
                &env,
                Some(delta),
                &long_locs,
                sizes,
                TrafficProfile::uniform(delta.new_num_vertices(), 8.0),
                10.0,
                t_opt,
            )
            .expect_err("mis-sized location suffix");
        assert!(matches!(err, DurableWindowError::Input(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
