//! Shard-oriented training runtime: shard workers over vertex-range CSR
//! shards, a transport-abstracted shuffle layer, and a coordinator that
//! preserves the Fig 7 sequential accept order.
//!
//! ## Architecture
//!
//! * **Shards** ([`geograph::ShardView`] + [`geopart::ShardPlacement`] +
//!   a shard-local [`AgentPool`]) own disjoint contiguous vertex ranges.
//!   Each holds bit-identical replicas of the placement rows of its owned
//!   vertices and its ghost fringe, so it scores its own agents — and runs
//!   their LA updates — without touching any global structure.
//! * **Shuffle layer** ([`ShuffleTransport`]) carries every cross-shard
//!   byte as an explicit [`ShuffleMsg`]: score requests and replies, row
//!   and load synchronization after migrations. The provided
//!   [`InProcessShuffle`] backs the trait with in-process queues; a
//!   process/socket transport plugs in at the same boundary (all message
//!   payloads are plain old data with a [`ShuffleMsg::wire_bytes`]
//!   accounting of their serialized size).
//! * **Coordinator** ([`ShardedTrainer`]) owns the authoritative
//!   [`HybridState`], the sampling order/scheduler, the migration RNG and
//!   the best-plan tracker. It reassembles per-shard score replies into
//!   the trainer's global proposal order and applies migrations through
//!   the **strictly sequential** Fig 7 loop, then ships the dirtied rows
//!   back to the owning and ghosting shards.
//!
//! ## Determinism
//!
//! Trained masters are bit-identical to [`TrainerSession`] at any shard
//! count because every divergence channel is closed: shard-local scoring
//! equals global scoring bit-for-bit (monotone local-id compaction — see
//! `geopart::shard`); LA updates are per-vertex independent, so sharded
//! pools evolve exactly like the global pool rows they partition; proposal
//! reassembly walks the global sampled order, so the proposal vector —
//! and hence the coordinator's shuffle — is byte-identical; and the
//! coordinator's migration is the trainer's own sequential path, already
//! proven bit-identical to its parallel dispatch.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use geograph::shard::ShardDelta;
use geograph::{
    BuildError, ChunkedEdges, DcId, GeoGraph, GraphDelta, IngestPool, ShardIngestReport, ShardSpec,
    ShardView, StreamConfig, VertexId,
};
use geopart::shard::{export_row, RowSync, ShardPlacement};
use geopart::{HybridState, MoveScratch, Objective, TrafficProfile};
use geosim::{CloudEnv, StageLoads};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::agent::AgentPool;
use crate::config::RlCutConfig;
use crate::pool::WorkerPool;
use crate::sampling::{sample_prefix, SampleScheduler};
use crate::score::{score, Weights};
use crate::stats::{RlCutResult, StepStats};
use crate::trainer::{SessionResources, TrainerSession};

/// Why the sharded runtime failed.
#[derive(Debug)]
pub enum ShardError {
    /// A transport endpoint is gone (a process transport's peer died; the
    /// in-process transport never produces this).
    Disconnected {
        /// The unreachable shard.
        shard: usize,
    },
    /// A message violated the coordinator/shard protocol (wrong type,
    /// misrouted vertex, missing or misaligned score decision).
    Protocol {
        /// The shard involved.
        shard: usize,
        /// What went wrong.
        detail: String,
    },
    /// The worker pool failed to dispatch shard work.
    Pool(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Disconnected { shard } => write!(f, "shard {shard} is unreachable"),
            ShardError::Protocol { shard, detail } => {
                write!(f, "shuffle protocol violation at shard {shard}: {detail}")
            }
            ShardError::Pool(e) => write!(f, "shard dispatch failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// A message on the shuffle layer. Everything that crosses a shard
/// boundary — score reads, count/row updates, migration proposals — is one
/// of these; payloads are plain old data so a process transport can
/// serialize them without touching the runtime.
#[derive(Clone, Debug)]
pub enum ShuffleMsg {
    /// Coordinator → shard: score these owned agents (global ids, in
    /// global sampled order) against the frozen step objective.
    ScoreAgents {
        /// Sampled agents owned by the receiving shard.
        agents: Vec<VertexId>,
        /// Frozen step-start objective (Eq 10's reference point).
        step_obj: Objective,
        /// The step's score weights.
        weights: Weights,
    },
    /// Shard → coordinator: one decision per requested agent, aligned with
    /// the request order: `(vertex, selected DC, proposes-migration)`.
    ScoreReply {
        /// The replying shard.
        shard: usize,
        /// Per-agent `(vertex, selected, proposed)` decisions.
        decisions: Vec<(VertexId, DcId, bool)>,
    },
    /// Coordinator → shard: verbatim row copies for local vertices whose
    /// counts/master changed (bootstrap and post-migration sync).
    SyncRows {
        /// `(global vertex, row)` pairs; every vertex is local to the
        /// receiving shard.
        rows: Vec<(VertexId, RowSync)>,
    },
    /// Coordinator → shard: the global load accumulators and movement
    /// cost, which every applied migration changes for all shards.
    SyncLoads {
        /// Gather-stage per-DC loads.
        gather: StageLoads,
        /// Apply-stage per-DC loads.
        apply: StageLoads,
        /// Accumulated Eq 4 movement cost.
        movement_cost: f64,
    },
}

impl ShuffleMsg {
    /// Serialized size of this message on a byte-oriented transport — the
    /// shuffle-volume accounting the bench reports. (The in-process
    /// transport moves pointers, but counts these bytes so the numbers
    /// predict a real wire.)
    pub fn wire_bytes(&self) -> u64 {
        match self {
            ShuffleMsg::ScoreAgents { agents, .. } => (agents.len() * 4 + 24 + 16) as u64,
            ShuffleMsg::ScoreReply { decisions, .. } => (8 + decisions.len() * 6) as u64,
            ShuffleMsg::SyncRows { rows } => {
                rows.iter().map(|(_, r)| 4 + r.wire_bytes()).sum::<u64>()
            }
            ShuffleMsg::SyncLoads { gather, apply, .. } => {
                let loads = gather.up_slice().len()
                    + gather.down_slice().len()
                    + apply.up_slice().len()
                    + apply.down_slice().len();
                (loads * 8 + 8) as u64
            }
        }
    }
}

/// The transport boundary of the shuffle layer. The runtime only ever
/// moves [`ShuffleMsg`]s through this trait, so swapping the in-process
/// queues for a process or socket transport is a drop-in implementation —
/// no runtime change.
pub trait ShuffleTransport: Send + Sync {
    /// Enqueues `msg` for `shard`.
    fn send_to_shard(&self, shard: usize, msg: ShuffleMsg) -> Result<(), ShardError>;
    /// Dequeues the next message addressed to `shard`, if any.
    fn try_recv_for_shard(&self, shard: usize) -> Result<Option<ShuffleMsg>, ShardError>;
    /// Enqueues `msg` from shard `from` for the coordinator.
    fn send_to_coordinator(&self, from: usize, msg: ShuffleMsg) -> Result<(), ShardError>;
    /// Dequeues the next message addressed to the coordinator, if any.
    fn try_recv_at_coordinator(&self) -> Result<Option<ShuffleMsg>, ShardError>;
    /// Total bytes shuffled so far (both directions, wire accounting).
    fn bytes_shuffled(&self) -> u64;
}

/// In-process shuffle: one FIFO queue per shard plus one for the
/// coordinator, with wire-byte accounting. The reference transport — and
/// the fast path when shards share an address space.
pub struct InProcessShuffle {
    inboxes: Vec<Mutex<VecDeque<ShuffleMsg>>>,
    coordinator: Mutex<VecDeque<ShuffleMsg>>,
    bytes: AtomicU64,
}

impl InProcessShuffle {
    /// A transport connecting `num_shards` shards to one coordinator.
    pub fn new(num_shards: usize) -> InProcessShuffle {
        InProcessShuffle {
            inboxes: (0..num_shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            coordinator: Mutex::new(VecDeque::new()),
            bytes: AtomicU64::new(0),
        }
    }
}

impl ShuffleTransport for InProcessShuffle {
    fn send_to_shard(&self, shard: usize, msg: ShuffleMsg) -> Result<(), ShardError> {
        let inbox = self.inboxes.get(shard).ok_or(ShardError::Disconnected { shard })?;
        self.bytes.fetch_add(msg.wire_bytes(), Ordering::Relaxed);
        inbox.lock().push_back(msg);
        Ok(())
    }

    fn try_recv_for_shard(&self, shard: usize) -> Result<Option<ShuffleMsg>, ShardError> {
        let inbox = self.inboxes.get(shard).ok_or(ShardError::Disconnected { shard })?;
        Ok(inbox.lock().pop_front())
    }

    fn send_to_coordinator(&self, _from: usize, msg: ShuffleMsg) -> Result<(), ShardError> {
        self.bytes.fetch_add(msg.wire_bytes(), Ordering::Relaxed);
        self.coordinator.lock().push_back(msg);
        Ok(())
    }

    fn try_recv_at_coordinator(&self) -> Result<Option<ShuffleMsg>, ShardError> {
        Ok(self.coordinator.lock().pop_front())
    }

    fn bytes_shuffled(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// One shard worker: the view, the placement replica, and the shard-local
/// learning automata of its local vertices.
struct ShardNode {
    index: usize,
    view: ShardView,
    placement: ShardPlacement,
    agents: AgentPool,
}

impl ShardNode {
    fn build(index: usize, view: ShardView, num_dcs: usize, num_iterations: f64) -> ShardNode {
        let placement = ShardPlacement::new(num_dcs, view.num_locals(), num_iterations);
        let agents = AgentPool::new(view.num_locals(), num_dcs);
        ShardNode { index, view, placement, agents }
    }

    /// Drains this shard's inbox: applies row/load syncs in arrival order
    /// and answers score requests.
    fn serve(
        &mut self,
        env: &CloudEnv,
        config: &RlCutConfig,
        transport: &dyn ShuffleTransport,
        scratch: &mut MoveScratch,
    ) -> Result<(), ShardError> {
        while let Some(msg) = transport.try_recv_for_shard(self.index)? {
            match msg {
                ShuffleMsg::SyncRows { rows } => {
                    for (v, row) in &rows {
                        let local = self.view.to_local(*v).ok_or_else(|| ShardError::Protocol {
                            shard: self.index,
                            detail: format!("sync for vertex {v} outside the local working set"),
                        })?;
                        self.placement.sync_row(local, row);
                    }
                }
                ShuffleMsg::SyncLoads { gather, apply, movement_cost } => {
                    self.placement.sync_loads(gather, apply, movement_cost);
                }
                ShuffleMsg::ScoreAgents { agents, step_obj, weights } => {
                    let decisions =
                        self.score_agents(env, config, &agents, &step_obj, weights, scratch)?;
                    transport.send_to_coordinator(
                        self.index,
                        ShuffleMsg::ScoreReply { shard: self.index, decisions },
                    )?;
                }
                ShuffleMsg::ScoreReply { .. } => {
                    return Err(ShardError::Protocol {
                        shard: self.index,
                        detail: "score reply routed to a shard".into(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The shard half of the trainer's Fig 5 phases 1–4: score every
    /// requested agent against the frozen step objective (phase 1+2), then
    /// run its LA probability update and UCB selection (phase 3+4) on the
    /// shard-local automaton. Per-agent decisions are returned in request
    /// order for the coordinator to reassemble.
    fn score_agents(
        &mut self,
        env: &CloudEnv,
        config: &RlCutConfig,
        agents: &[VertexId],
        step_obj: &Objective,
        weights: Weights,
        scratch: &mut MoveScratch,
    ) -> Result<Vec<(VertexId, DcId, bool)>, ShardError> {
        let m = env.num_dcs();
        let mut decisions = Vec::with_capacity(agents.len());
        for &v in agents {
            let lv = self.view.to_local(v).filter(|_| self.view.owns(v)).ok_or_else(|| {
                ShardError::Protocol {
                    shard: self.index,
                    detail: format!("asked to score vertex {v} it does not own"),
                }
            })?;
            let objs = self.placement.evaluate_all_moves(env, &self.view, v, scratch);
            let master = self.placement.master_local(lv);
            // Identical candidate walk to the trainer's `best_of`: the
            // master's slot stays pinned to the frozen step objective.
            let mut best = (0 as DcId, f64::NEG_INFINITY);
            for d in 0..m as DcId {
                let candidate = if d == master { step_obj } else { &objs[d as usize] };
                let s = score(step_obj, candidate, weights);
                if s > best.1 {
                    best = (d, s);
                }
            }
            let best_dc = best.0;
            self.agents.reward(lv, best_dc, config.alpha);
            if config.use_penalty {
                for d in 0..m as DcId {
                    if d != best_dc {
                        self.agents.penalize(lv, d, config.beta);
                    }
                }
            }
            let selected = self.agents.select_ucb(lv, config.ucb_c);
            self.agents.record_play(lv, selected, if selected == best_dc { 1.0 } else { 0.0 });
            decisions.push((v, selected, selected != master));
        }
        Ok(decisions)
    }
}

/// Shard topology carried across dynamic windows: the range spec and the
/// built views. [`ShardedTrainer::finish_with_parts`] hands it back;
/// [`refresh_views`] routes the next window's delta into it, rebuilding
/// only the affected views.
#[derive(Clone, Debug)]
pub struct ShardCarry {
    /// The contiguous range partition.
    pub spec: ShardSpec,
    /// One built view per shard, fringe included.
    pub views: Vec<ShardView>,
}

/// Routes `delta` through `carry`, growing the spec to the new vertex
/// count and rebuilding **only** the views the delta touches (a shard is
/// affected iff an owned vertex's adjacency changed or its range absorbed
/// appended vertices — an untouched shard's fringe is a function of its
/// owned adjacency, so its view is carried verbatim). Returns the number
/// of views rebuilt.
pub fn refresh_views(carry: &mut ShardCarry, graph: &geograph::Graph, delta: &GraphDelta) -> usize {
    carry.spec.grow(delta.new_num_vertices());
    let routed: Vec<ShardDelta> = geograph::route_delta(delta, &carry.spec);
    let mut rebuilt = 0;
    for (s, slice) in routed.iter().enumerate() {
        if slice.affects_view() {
            carry.views[s] = ShardView::build(graph, &carry.spec, s);
            rebuilt += 1;
        }
    }
    rebuilt
}

/// Builds a [`ShardCarry`] straight from a chunked edge stream, one
/// shard-resident ingest per shard — the global CSR is never
/// materialized, so the peak footprint is a single shard's view plus its
/// transient planes rather than the whole graph. The resulting views are
/// bit-identical to `ShardView::build` over the staged graph (see
/// [`ShardView::build_streamed`]), so a trainer constructed from this
/// carry via [`ShardedTrainer::with_parts`] trains the exact same
/// masters. Returns the per-shard ingest reports alongside the carry for
/// footprint accounting.
pub fn shard_carry_streamed<S: ChunkedEdges + ?Sized>(
    src: &S,
    cfg: StreamConfig,
    num_shards: usize,
    pool: &dyn IngestPool,
) -> Result<(ShardCarry, Vec<ShardIngestReport>), BuildError> {
    let spec = ShardSpec::contiguous(src.num_vertices(), num_shards);
    let mut views = Vec::with_capacity(num_shards);
    let mut reports = Vec::with_capacity(num_shards);
    for s in 0..num_shards {
        let (view, report) = ShardView::build_streamed(src, cfg, &spec, s, pool)?;
        views.push(view);
        reports.push(report);
    }
    Ok((ShardCarry { spec, views }, reports))
}

/// The sharded twin of [`TrainerSession`]: same Fig 5 loop, same Fig 7
/// accept order, with scoring and LA updates distributed over shard
/// workers behind the shuffle layer. Trains bit-identical masters at any
/// shard count (see the module docs for the argument).
pub struct ShardedTrainer<'g> {
    geo: &'g GeoGraph,
    config: RlCutConfig,
    order: Vec<VertexId>,
    scheduler: SampleScheduler,
    rng: SmallRng,
    /// Authoritative global state, coordinator-owned. Shards hold replicas.
    state: HybridState<'g>,
    spec: ShardSpec,
    shards: Vec<Mutex<ShardNode>>,
    transport: Box<dyn ShuffleTransport>,
    steps: Vec<StepStats>,
    best: (Vec<DcId>, Objective),
    step_index: usize,
    converged: bool,
    exhausted: bool,
    started: Instant,
    pool: Option<WorkerPool>,
    scratch: MoveScratch,
}

impl<'g> ShardedTrainer<'g> {
    /// Builds a sharded session over `num_shards` contiguous ranges with
    /// the in-process transport.
    pub fn new(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        state: HybridState<'g>,
        config: RlCutConfig,
        num_shards: usize,
    ) -> Result<Self, ShardError> {
        let spec = ShardSpec::contiguous(geo.num_vertices(), num_shards);
        let views =
            (0..num_shards).map(|s| ShardView::build(&geo.graph, &spec, s)).collect::<Vec<_>>();
        let transport = Box::new(InProcessShuffle::new(num_shards));
        Self::with_parts(
            geo,
            env,
            state,
            config,
            SessionResources::default(),
            ShardCarry { spec, views },
            transport,
        )
    }

    /// Full-control constructor: carried shard topology (possibly
    /// delta-refreshed), carried session resources (worker pool + scratch,
    /// adopted under the same rules as [`TrainerSession::with_resources`]),
    /// and an explicit transport. Placement replicas and shard automata
    /// are built fresh and bootstrapped through the transport, so the
    /// shuffle accounting covers the initial row distribution too.
    pub fn with_parts(
        geo: &'g GeoGraph,
        env: &CloudEnv,
        state: HybridState<'g>,
        config: RlCutConfig,
        resources: SessionResources,
        carry: ShardCarry,
        transport: Box<dyn ShuffleTransport>,
    ) -> Result<Self, ShardError> {
        let ShardCarry { spec, views } = carry;
        assert_eq!(spec.num_vertices(), geo.num_vertices(), "spec must cover the snapshot");
        assert_eq!(spec.num_shards(), views.len());
        let m = env.num_dcs();
        let order = TrainerSession::build_order(geo, &config);
        let scheduler = TrainerSession::build_scheduler(&config);
        let rng = SmallRng::seed_from_u64(config.seed ^ 0x0ddb_1a5e_5bad_5eed);
        let best = (state.core().masters().to_vec(), state.objective(env));
        let SessionResources { pool: carried, scratch, journal: _ } = resources;
        let wants_pool = config.use_worker_pool && config.threads() > 1;
        let pool = match carried {
            Some(pool) if wants_pool && pool.threads() == config.threads() => Some(pool),
            _ => TrainerSession::build_pool(&config),
        };
        let num_iterations = state.core().num_iterations();
        let shards: Vec<Mutex<ShardNode>> = views
            .into_iter()
            .enumerate()
            .map(|(i, view)| Mutex::new(ShardNode::build(i, view, m, num_iterations)))
            .collect();

        let mut trainer = ShardedTrainer {
            geo,
            config,
            order,
            scheduler,
            rng,
            state,
            spec,
            shards,
            transport,
            steps: Vec::new(),
            best,
            step_index: 0,
            converged: false,
            exhausted: false,
            started: Instant::now(),
            pool,
            scratch,
        };
        trainer.bootstrap_replicas(env)?;
        Ok(trainer)
    }

    /// Ships every shard its full working set (all local rows + the global
    /// loads) through the transport and has the shards apply it.
    fn bootstrap_replicas(&mut self, env: &CloudEnv) -> Result<(), ShardError> {
        let mut active = vec![false; self.shards.len()];
        for (i, node) in self.shards.iter().enumerate() {
            let node = node.lock();
            if node.view.num_locals() == 0 {
                continue;
            }
            let rows: Vec<(VertexId, RowSync)> = node
                .view
                .locals()
                .iter()
                .map(|&v| {
                    (
                        v,
                        export_row(
                            self.state.core(),
                            self.geo.locations[v as usize],
                            self.geo.data_sizes[v as usize],
                            v,
                        ),
                    )
                })
                .collect();
            drop(node);
            self.transport.send_to_shard(i, ShuffleMsg::SyncRows { rows })?;
            self.send_loads(i)?;
            active[i] = true;
        }
        self.dispatch(env, &active)
    }

    fn send_loads(&self, shard: usize) -> Result<(), ShardError> {
        self.transport.send_to_shard(
            shard,
            ShuffleMsg::SyncLoads {
                gather: self.state.core().gather_loads().clone(),
                apply: self.state.core().apply_loads().clone(),
                movement_cost: self.state.core().movement_cost(),
            },
        )
    }

    /// Runs `serve` on every active shard: on the worker pool when one
    /// exists (shard `i` handled by worker `i % threads`, each on its
    /// warm resident scratch), inline on the coordinator's scratch
    /// otherwise. Both paths drain the same queues in the same per-shard
    /// order, so they are interchangeable bit-for-bit.
    fn dispatch(&mut self, env: &CloudEnv, active: &[bool]) -> Result<(), ShardError> {
        let shards = &self.shards;
        let config = &self.config;
        let transport = &*self.transport;
        if let Some(pool) = &self.pool {
            let threads = pool.threads();
            let failure: Mutex<Option<ShardError>> = Mutex::new(None);
            pool.run_on_all(&|worker, scratch| {
                for (i, node) in shards.iter().enumerate() {
                    if !active[i] || i % threads != worker {
                        continue;
                    }
                    let mut node = node.lock();
                    if let Err(e) = node.serve(env, config, transport, scratch) {
                        let mut slot = failure.lock();
                        if slot.is_none() {
                            *slot = Some(e);
                        }
                    }
                }
            })
            .map_err(|e| ShardError::Pool(e.to_string()))?;
            if let Some(e) = failure.into_inner() {
                return Err(e);
            }
        } else {
            for (i, node) in shards.iter().enumerate() {
                if !active[i] {
                    continue;
                }
                node.lock().serve(env, config, transport, &mut self.scratch)?;
            }
        }
        Ok(())
    }

    /// Number of trainable (non-isolated) agents.
    pub fn num_trainable(&self) -> usize {
        self.order.len()
    }

    /// Shards in the topology (including empty ranges).
    pub fn num_shards(&self) -> usize {
        self.spec.num_shards()
    }

    /// Total ghost-fringe vertices over all shards — the cross-shard
    /// working-set overhead the bench reports.
    pub fn total_ghosts(&self) -> usize {
        self.shards.iter().map(|n| n.lock().view.num_ghosts()).sum()
    }

    /// Total bytes moved through the shuffle layer so far.
    pub fn shuffle_bytes(&self) -> u64 {
        self.transport.bytes_shuffled()
    }

    /// Whether the run has stopped (converged, horizon, or time budget).
    pub fn is_done(&self) -> bool {
        self.converged || self.exhausted || self.step_index >= self.config.max_steps
    }

    /// Whether training stopped on convergence.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Telemetry of the executed steps.
    pub fn steps(&self) -> &[StepStats] {
        &self.steps
    }

    /// Current master placement (authoritative state).
    pub fn masters(&self) -> Vec<DcId> {
        self.state.core().masters().to_vec()
    }

    /// Fronts `seeds` and their neighborhoods in the sampling order —
    /// verbatim [`TrainerSession::focus_on`].
    pub fn focus_on(&mut self, seeds: &[VertexId]) {
        if seeds.is_empty() {
            return;
        }
        let n = self.geo.num_vertices();
        let mut hot = vec![false; n];
        for &s in seeds {
            let Some(flag) = hot.get_mut(s as usize) else { continue };
            *flag = true;
            for &u in self.geo.graph.out_neighbors(s) {
                hot[u as usize] = true;
            }
            for &u in self.geo.graph.in_neighbors(s) {
                hot[u as usize] = true;
            }
        }
        let (mut front, back): (Vec<VertexId>, Vec<VertexId>) =
            self.order.iter().copied().partition(|&v| hot[v as usize]);
        front.extend(back);
        self.order = front;
    }

    /// Raises the Eq 14 sample-rate floor — verbatim
    /// [`TrainerSession::boost_sampling`].
    pub fn boost_sampling(&mut self, floor: f64) {
        self.scheduler.set_min_rate(floor.clamp(0.0, 1.0));
    }

    /// Executes one training step — the sharded twin of
    /// [`TrainerSession::step`]: shard-distributed scoring and LA updates,
    /// coordinator-sequential Fig 7 migration, post-migration row sync.
    pub fn step(&mut self, env: &CloudEnv) -> Result<Option<StepStats>, ShardError> {
        if self.is_done() {
            return Ok(None);
        }
        let step = self.step_index;
        let Some(rate) = self.scheduler.next_rate() else {
            self.exhausted = true;
            return Ok(None);
        };
        let sampled = sample_prefix(&self.order, rate);
        if sampled.is_empty() {
            self.exhausted = true;
            return Ok(None);
        }
        let step_start = Instant::now();
        let step_obj = self.state.objective(env);
        if step_obj.transfer_time == 0.0 && step_obj.total_cost() <= self.config.budget {
            self.converged = true;
            return Ok(None);
        }
        let over_budget = step_obj.total_cost() > self.config.budget;
        let weights = Weights::at(step, self.config.max_steps, over_budget);

        // Phases 1–4, sharded: route each sampled agent to its owner
        // (order-preserving within a shard), let the shards score and run
        // the LA updates, then reassemble the decisions in the global
        // sampled order — the proposal vector comes out byte-identical to
        // the single-process trainer's.
        let score_start = Instant::now();
        let num_shards = self.spec.num_shards();
        let mut per_shard: Vec<Vec<VertexId>> = vec![Vec::new(); num_shards];
        for &v in sampled {
            per_shard[self.spec.owner_of(v)].push(v);
        }
        let mut active = vec![false; num_shards];
        for (i, agents) in per_shard.iter_mut().enumerate() {
            if agents.is_empty() {
                continue;
            }
            active[i] = true;
            self.transport.send_to_shard(
                i,
                ShuffleMsg::ScoreAgents { agents: std::mem::take(agents), step_obj, weights },
            )?;
        }
        let sampled: Vec<VertexId> = sampled.to_vec();
        self.dispatch(env, &active)?;
        let mut queues: Vec<VecDeque<(VertexId, DcId, bool)>> =
            (0..num_shards).map(|_| VecDeque::new()).collect();
        while let Some(msg) = self.transport.try_recv_at_coordinator()? {
            match msg {
                ShuffleMsg::ScoreReply { shard, decisions } => queues[shard].extend(decisions),
                other => {
                    return Err(ShardError::Protocol {
                        shard: usize::MAX,
                        detail: format!("unexpected coordinator message {other:?}"),
                    });
                }
            }
        }
        let mut proposals: Vec<(VertexId, DcId)> = Vec::new();
        for &v in &sampled {
            let owner = self.spec.owner_of(v);
            let (rv, selected, proposed) =
                queues[owner].pop_front().ok_or_else(|| ShardError::Protocol {
                    shard: owner,
                    detail: format!("missing score decision for vertex {v}"),
                })?;
            if rv != v {
                return Err(ShardError::Protocol {
                    shard: owner,
                    detail: format!("decision for vertex {rv} where {v} was expected"),
                });
            }
            if proposed {
                proposals.push((v, selected));
            }
        }
        let score_duration = score_start.elapsed();

        // Phase 5 — the coordinator applies the trainer's strictly
        // sequential batched-migration flow (Fig 7) on the authoritative
        // state: frozen batch objective, all accepts decided before any
        // apply, accepted moves applied in shuffled-proposal order.
        proposals.shuffle(&mut self.rng);
        let migrate_start = Instant::now();
        let batch = self.config.batch_size.max(1);
        let mut applied: Vec<(VertexId, DcId)> = Vec::new();
        for chunk in proposals.chunks(batch) {
            let obj = self.state.objective(env);
            let accepts: Vec<bool> = chunk
                .iter()
                .map(|&(v, to)| {
                    score(
                        &obj,
                        &self.state.evaluate_move_with(env, v, to, &mut self.scratch),
                        weights,
                    ) > 0.0
                })
                .collect();
            for (&(v, to), ok) in chunk.iter().zip(accepts) {
                if ok {
                    self.state.apply_move_with(env, v, to, &mut self.scratch);
                    applied.push((v, to));
                }
            }
        }
        let migrations = applied.len();
        if migrations > 0 {
            self.sync_after_migration(env, &applied)?;
        }
        let migrate_duration = migrate_start.elapsed();

        let duration = step_start.elapsed();
        self.scheduler.record(rate, duration.as_secs_f64());
        let obj = self.state.objective(env);
        if TrainerSession::beats(&obj, &self.best.1, self.config.budget) {
            self.best = (self.state.core().masters().to_vec(), obj);
        }
        let stats = StepStats {
            duration,
            score_duration,
            migrate_duration,
            sample_rate: rate,
            num_agents: sampled.len(),
            migrations,
            transfer_time: obj.transfer_time,
            total_cost: obj.total_cost(),
        };
        self.steps.push(stats);
        self.step_index += 1;
        if rate >= 0.999
            && (migrations as f64) < self.config.convergence_fraction * sampled.len() as f64
        {
            self.converged = true;
        }
        Ok(Some(stats))
    }

    /// Ships the rows dirtied by `applied` moves — each moved vertex plus
    /// the neighbors whose counts its hybrid-cut staging touched — to
    /// every shard holding them (as owner or ghost), plus the new global
    /// loads to every populated shard, then has the shards apply the sync.
    fn sync_after_migration(
        &mut self,
        env: &CloudEnv,
        applied: &[(VertexId, DcId)],
    ) -> Result<(), ShardError> {
        let mut dirty: Vec<VertexId> = Vec::new();
        for &(v, _) in applied {
            dirty.push(v);
            if !self.state.core().is_high(v) {
                dirty.extend_from_slice(self.geo.graph.in_neighbors(v));
            }
            for &w in self.geo.graph.out_neighbors(v) {
                if self.state.core().is_high(w) {
                    dirty.push(w);
                }
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        let mut active = vec![false; self.shards.len()];
        for (i, node) in self.shards.iter().enumerate() {
            let node = node.lock();
            if node.view.num_locals() == 0 {
                continue;
            }
            let rows: Vec<(VertexId, RowSync)> = dirty
                .iter()
                .filter(|&&v| node.view.to_local(v).is_some())
                .map(|&v| {
                    (
                        v,
                        export_row(
                            self.state.core(),
                            self.geo.locations[v as usize],
                            self.geo.data_sizes[v as usize],
                            v,
                        ),
                    )
                })
                .collect();
            drop(node);
            if !rows.is_empty() {
                self.transport.send_to_shard(i, ShuffleMsg::SyncRows { rows })?;
            }
            self.send_loads(i)?;
            active[i] = true;
        }
        self.dispatch(env, &active)
    }

    /// Runs the loop to completion.
    pub fn run(&mut self, env: &CloudEnv) -> Result<(), ShardError> {
        while self.step(env)?.is_some() {}
        Ok(())
    }

    /// Finalizes the run: reconciles the authoritative state to the best
    /// plan seen (exactly like [`TrainerSession::finish`]).
    pub fn finish(self, env: &CloudEnv) -> RlCutResult<'g> {
        self.finish_with_parts(env).0
    }

    /// [`Self::finish`] for the dynamic-window path: also hands back the
    /// session resources (pool + scratch) and the shard topology so the
    /// next window refreshes only delta-affected views.
    pub fn finish_with_parts(
        mut self,
        env: &CloudEnv,
    ) -> (RlCutResult<'g>, SessionResources, ShardCarry) {
        let total_duration = self.started.elapsed();
        let best_masters = self.best.0;
        if self.state.core().masters() != best_masters.as_slice() {
            let diffs: Vec<(VertexId, DcId)> = self
                .state
                .core()
                .masters()
                .iter()
                .zip(&best_masters)
                .enumerate()
                .filter(|(_, (live, best))| live != best)
                .map(|(v, (_, &best))| (v as VertexId, best))
                .collect();
            for (v, to) in diffs {
                self.state.apply_move_with(env, v, to, &mut self.scratch);
            }
            debug_assert_eq!(self.state.core().masters(), best_masters.as_slice());
        }
        let views = self.shards.into_iter().map(|node| node.into_inner().view).collect::<Vec<_>>();
        let carry = ShardCarry { spec: self.spec, views };
        let resources = SessionResources { pool: self.pool, scratch: self.scratch, journal: None };
        let result = RlCutResult {
            state: self.state,
            steps: self.steps,
            total_duration,
            converged: self.converged,
        };
        (result, resources, carry)
    }
}

/// [`crate::trainer::partition`] through the sharded runtime: natural
/// initial masters, derived θ, `num_shards` contiguous shards over the
/// in-process shuffle. Bit-identical masters to the single-process
/// trainer at any shard count.
pub fn partition_sharded<'g>(
    geo: &'g GeoGraph,
    env: &CloudEnv,
    profile: TrafficProfile,
    num_iterations: f64,
    config: &RlCutConfig,
    num_shards: usize,
) -> Result<RlCutResult<'g>, ShardError> {
    let theta = config.theta.unwrap_or_else(|| geograph::degree::suggest_theta(&geo.graph, 0.05));
    let state =
        HybridState::from_masters(geo, env, geo.locations.clone(), theta, profile, num_iterations);
    let mut trainer = ShardedTrainer::new(geo, env, state, config.clone(), num_shards)?;
    trainer.run(env)?;
    Ok(trainer.finish(env))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::partition;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geograph::Graph;
    use geosim::regions::ec2_eight_regions;

    fn setup(seed: u64) -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), seed);
        (GeoGraph::from_graph(g, &LocalityConfig::paper_default(seed)), ec2_eight_regions())
    }

    fn config(geo: &GeoGraph, env: &CloudEnv) -> RlCutConfig {
        let budget = geosim::cost::default_budget(env, &geo.locations, &geo.data_sizes, 0.4);
        RlCutConfig::new(budget).with_seed(1).with_threads(2).with_max_steps(4)
    }

    #[test]
    fn sharded_masters_match_trainer_at_1_2_4_8_shards() {
        let (geo, env) = setup(21);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let cfg = config(&geo, &env);
        let baseline = partition(&geo, &env, profile.clone(), 10.0, &cfg);
        assert!(baseline.total_migrations() > 0, "vacuous without migrations");
        for shards in [1usize, 2, 4, 8] {
            let r = partition_sharded(&geo, &env, profile.clone(), 10.0, &cfg, shards)
                .unwrap_or_else(|e| panic!("{shards} shards: {e}"));
            assert_eq!(
                baseline.state.core().masters(),
                r.state.core().masters(),
                "{shards} shards diverged from the single-process trainer"
            );
            assert_eq!(baseline.total_migrations(), r.total_migrations());
        }
    }

    #[test]
    fn sharded_runtime_deterministic_across_thread_counts() {
        let (geo, env) = setup(22);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let run = |threads: usize| {
            let cfg = config(&geo, &env).with_threads(threads);
            partition_sharded(&geo, &env, profile.clone(), 10.0, &cfg, 4).expect("sharded run")
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.state.core().masters(), four.state.core().masters());
    }

    #[test]
    fn shuffle_bytes_are_accounted() {
        let (geo, env) = setup(23);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let cfg = config(&geo, &env);
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        let state =
            HybridState::from_masters(&geo, &env, geo.locations.clone(), theta, profile, 10.0);
        let mut t = ShardedTrainer::new(&geo, &env, state, cfg, 4).expect("build");
        let bootstrap = t.shuffle_bytes();
        assert!(bootstrap > 0, "bootstrap row distribution must be counted");
        t.run(&env).expect("run");
        assert!(t.shuffle_bytes() > bootstrap, "steps must add shuffle volume");
        assert!(t.total_ghosts() > 0, "rmat graph must produce cross-shard fringes");
    }

    #[test]
    fn more_shards_than_vertices_still_bit_identical() {
        // Edge case: 8-vertex path graph, 16 shards — half the ranges are
        // empty and every populated shard owns a single vertex whose whole
        // adjacency is ghost-referenced.
        let graph = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)]);
        let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(31));
        let env = ec2_eight_regions();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let cfg = RlCutConfig::new(budget)
            .with_seed(2)
            .with_threads(2)
            .with_fixed_sample_rate(1.0)
            .with_max_steps(3);
        let baseline = partition(&geo, &env, profile.clone(), 10.0, &cfg);
        let sharded = partition_sharded(&geo, &env, profile, 10.0, &cfg, 16)
            .expect("16 shards over 8 vertices");
        assert_eq!(baseline.state.core().masters(), sharded.state.core().masters());
    }

    #[test]
    fn shard_with_zero_proposals_stays_in_sync() {
        // A star graph trained at full sampling: leaves follow the hub
        // quickly, so later steps produce few or no proposals for most
        // shards — every shard must keep serving score requests (empty
        // reply queues are part of the protocol, not an error) and the
        // plan must still match the trainer.
        let mut edges = Vec::new();
        for v in 1..64u32 {
            edges.push((0, v));
        }
        let graph = Graph::from_edges(64, &edges);
        let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(33));
        let env = ec2_eight_regions();
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
        let cfg = RlCutConfig::new(budget)
            .with_seed(3)
            .with_threads(2)
            .with_fixed_sample_rate(1.0)
            .with_max_steps(5);
        let baseline = partition(&geo, &env, profile.clone(), 10.0, &cfg);
        let sharded = partition_sharded(&geo, &env, profile, 10.0, &cfg, 4).expect("sharded star");
        assert_eq!(baseline.state.core().masters(), sharded.state.core().masters());
        assert_eq!(baseline.total_migrations(), sharded.total_migrations());
    }

    #[test]
    fn refresh_views_rebuilds_only_affected_shards() {
        use geograph::dynamic::{EdgeEvent, EventKind};
        let graph = Graph::from_edges(16, &[(0, 1), (4, 5), (8, 9), (12, 13)]);
        let spec = ShardSpec::contiguous(16, 4);
        let views = (0..4).map(|s| ShardView::build(&graph, &spec, s)).collect::<Vec<_>>();
        let mut carry = ShardCarry { spec, views };
        // One insertion inside shard 1's range only.
        let events = vec![EdgeEvent { src: 5, dst: 6, timestamp_ms: 0, kind: EventKind::Insert }];
        let delta = GraphDelta::from_events(&graph, &events);
        let next = graph.apply_delta(&delta);
        let rebuilt = refresh_views(&mut carry, &next, &delta);
        assert_eq!(rebuilt, 1, "only the owning shard's view must refresh");
        assert_eq!(carry.views[1].out_neighbors_of(5).len(), 1);
    }

    /// Chunked replay of an in-memory edge list, for driving the
    /// shard-resident ingest path.
    struct VecSource {
        n: usize,
        chunk: usize,
        edges: Vec<(VertexId, VertexId)>,
    }

    impl geograph::ChunkedEdges for VecSource {
        fn num_vertices(&self) -> usize {
            self.n
        }

        fn num_chunks(&self) -> usize {
            self.edges.len().div_ceil(self.chunk).max(1)
        }

        fn emit(&self, chunk: usize, sink: &mut dyn FnMut(VertexId, VertexId)) {
            let lo = chunk * self.chunk;
            let hi = (lo + self.chunk).min(self.edges.len());
            for &(u, v) in &self.edges[lo..hi] {
                sink(u, v);
            }
        }
    }

    #[test]
    fn streamed_carry_trains_identical_masters_across_windows() {
        use geograph::dynamic::{EdgeEvent, EventKind};

        let (geo, env) = setup(37);
        let profile = TrafficProfile::uniform(geo.num_vertices(), 8.0);
        let cfg = config(&geo, &env);

        // Shard-resident ingest of the snapshot's edge multiset: the
        // global CSR is never rebuilt, yet every view must be bit-identical
        // to the staged build over `geo.graph`.
        let edges: Vec<(VertexId, VertexId)> = (0..geo.num_vertices() as VertexId)
            .flat_map(|u| geo.graph.out_neighbors(u).iter().map(move |&v| (u, v)))
            .collect();
        let src = VecSource { n: geo.num_vertices(), chunk: 97, edges };
        let (carry, reports) = shard_carry_streamed(
            &src,
            geograph::StreamConfig::verbatim(),
            4,
            &geograph::ScopedPool(2),
        )
        .expect("streamed carry");
        assert_eq!(reports.len(), 4);
        for (s, view) in carry.views.iter().enumerate() {
            assert_eq!(*view, ShardView::build(&geo.graph, &carry.spec, s), "shard {s} view");
            assert!(reports[s].peak_bytes() > 0);
        }

        let train = |geo: &GeoGraph, carry: ShardCarry| {
            let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
            let state = HybridState::from_masters(
                geo,
                &env,
                geo.locations.clone(),
                theta,
                profile.clone(),
                10.0,
            );
            let mut t = ShardedTrainer::with_parts(
                geo,
                &env,
                state,
                cfg.clone(),
                SessionResources::default(),
                carry,
                Box::new(InProcessShuffle::new(4)),
            )
            .expect("trainer");
            t.run(&env).expect("run");
            let (result, _resources, carry) = t.finish_with_parts(&env);
            (result.state.core().masters().to_vec(), result.total_migrations(), carry)
        };

        // Window 1: the streamed carry must train the exact masters the
        // staged pipeline trains.
        let staged = partition_sharded(&geo, &env, profile.clone(), 10.0, &cfg, 4).expect("staged");
        let (masters1, migrations1, mut carry) = train(&geo, carry);
        assert_eq!(staged.state.core().masters(), &masters1[..]);
        assert_eq!(staged.total_migrations(), migrations1);

        // Window 2: a delta refreshes only the affected views inside the
        // streamed-origin carry; retraining must still match a carry built
        // from scratch against the updated snapshot.
        let events = vec![
            EdgeEvent { src: 3, dst: 200, timestamp_ms: 0, kind: EventKind::Insert },
            EdgeEvent { src: 400, dst: 7, timestamp_ms: 0, kind: EventKind::Insert },
        ];
        let delta = GraphDelta::from_events(&geo.graph, &events);
        let next_graph = geo.graph.apply_delta(&delta);
        let next =
            GeoGraph::new(next_graph, geo.locations.clone(), geo.data_sizes.clone(), geo.num_dcs);
        refresh_views(&mut carry, &next.graph, &delta);
        let fresh_views =
            (0..4).map(|s| ShardView::build(&next.graph, &carry.spec, s)).collect::<Vec<_>>();
        let fresh = ShardCarry { spec: carry.spec.clone(), views: fresh_views };
        let (masters2, migrations2, _) = train(&next, carry);
        let (masters2_fresh, migrations2_fresh, _) = train(&next, fresh);
        assert_eq!(masters2_fresh, masters2, "window 2 diverged from a from-scratch carry");
        assert_eq!(migrations2_fresh, migrations2);
    }
}
