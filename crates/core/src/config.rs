//! RLCut configuration.

use std::time::Duration;

/// Which agents a sampling rate selects (§V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SampleStrategy {
    /// The lowest-degree prefix — the paper's important-agents heuristic
    /// (Fig 9): high-degree vertices have replicas everywhere regardless
    /// of master placement, so their agents contribute little.
    #[default]
    LowestDegree,
    /// A seeded uniform shuffle — the strategy-agnostic baseline used by
    /// the Fig 8 overhead-linearity study and the sampling ablation.
    Random,
}

/// All tuning knobs of the RLCut trainer, with the paper's defaults.
#[derive(Clone, Debug)]
pub struct RlCutConfig {
    /// Budget `B` on total inter-DC communication cost (movement + runtime),
    /// dollars (Eq 7). The evaluation defaults this to 40 % of the cost of
    /// centralizing the graph (§VI-A.4).
    pub budget: f64,
    /// Hybrid-cut degree threshold θ. `None` derives it from the degree
    /// distribution so ~5 % of vertices classify high-degree.
    pub theta: Option<usize>,
    /// LA reward learning rate α (Eq 12).
    pub alpha: f64,
    /// LA penalty learning rate β (Eq 9) — only used with
    /// [`RlCutConfig::use_penalty`].
    pub beta: f64,
    /// Enable penalty-signal probability updates. Off by default: the
    /// paper shows reward-only converges ~30× faster at equal quality
    /// (Fig 6).
    pub use_penalty: bool,
    /// UCB exploration constant `c` (Eq 13).
    pub ucb_c: f64,
    /// Maximum number of training steps (the paper's default horizon is
    /// 10).
    pub max_steps: usize,
    /// Migration batch size (§V-A). The paper defaults to 48 (its core
    /// count); batch 1 means strictly sequential global optimization.
    pub batch_size: usize,
    /// Worker threads for the parallel phases. `None` = available
    /// parallelism.
    pub num_threads: Option<usize>,
    /// Disable the degree-aware straggler mitigation (§V-B) — ablation
    /// hook; agents are then assigned to threads round-robin.
    pub disable_straggler_mitigation: bool,
    /// Minimum sampled-agent count before the score phase fans out to the
    /// worker pool; smaller samples run sequentially on the caller thread.
    ///
    /// Rationale: a parallel dispatch has a fixed cost — historically a
    /// full `thread::scope` spawn/join per step, now one condvar
    /// round-trip into the persistent [`crate::pool::WorkerPool`] plus the
    /// LPT group build. That cost amortizes only once the sampled agents
    /// carry enough `O(deg)` scoring work; below the threshold the
    /// sequential path (with the session-resident scratch) wins. The
    /// default of 64 was measured against the pool on the 8-DC
    /// Twitter-analog preset (`bench_trainer`): dispatch overhead is down
    /// ~an order of magnitude versus per-step spawning, but tiny adaptive
    /// early-step samples (1 % of agents) still finish faster inline.
    pub parallel_threshold: usize,
    /// Route the parallel phases through the persistent per-session
    /// [`crate::pool::WorkerPool`] (the default). `false` falls back to
    /// spawning a fresh `thread::scope` per phase per step with cold
    /// scratch arenas — kept as the ablation/bench baseline the pool is
    /// measured against.
    pub use_worker_pool: bool,
    /// Required optimization overhead `T_opt` (§V-C). `None` disables the
    /// adaptive sampler: every agent trains every step.
    pub t_opt: Option<Duration>,
    /// Initial sampling rate `SR_0` for the adaptive schedule (Eq 14).
    pub initial_sample_rate: f64,
    /// Pin the sampling rate (both Exp#3 and Fig 9 fix it). Overrides the
    /// adaptive schedule and `t_opt`-based stopping.
    pub fixed_sample_rate: Option<f64>,
    /// Which agents a sampling rate selects.
    pub sample_strategy: SampleStrategy,
    /// Recency weight λ for the adaptive schedule's rate-per-second
    /// estimate (the paper's Fig 14b future-work improvement). `None`
    /// uses Eq 14 verbatim; `Some(0.5)` is a good starting point.
    pub sampling_recency: Option<f64>,
    /// Stop when a step migrates fewer than this fraction of its sampled
    /// agents.
    pub convergence_fraction: f64,
    /// Working-set cap on the per-step candidate scan (CUTTANA-style).
    /// `Some(cap)` limits each step to at most `cap` of the sampled agents,
    /// rotating the window across steps so successive steps cover
    /// successive slices of the sampled prefix. Bounds per-step latency and
    /// the score phase's touched working set on paper-scale graphs where
    /// even a 1 % sample is hundreds of thousands of agents. `None` (the
    /// default) scans the whole sample — bit-identical to the pre-knob
    /// trainer, consuming the same RNG stream.
    pub max_scan: Option<usize>,
    pub seed: u64,
}

impl RlCutConfig {
    /// Paper defaults with the given budget.
    pub fn new(budget: f64) -> Self {
        RlCutConfig {
            budget,
            theta: None,
            alpha: 0.3,
            beta: 0.05,
            use_penalty: false,
            ucb_c: 0.5,
            max_steps: 10,
            batch_size: 48,
            num_threads: None,
            disable_straggler_mitigation: false,
            parallel_threshold: 64,
            use_worker_pool: true,
            t_opt: None,
            initial_sample_rate: 0.01,
            fixed_sample_rate: None,
            sample_strategy: SampleStrategy::default(),
            sampling_recency: None,
            convergence_fraction: 0.001,
            max_scan: None,
            seed: 42,
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style required-overhead override.
    pub fn with_t_opt(mut self, t_opt: Duration) -> Self {
        self.t_opt = Some(t_opt);
        self
    }

    /// Builder-style fixed sampling rate.
    pub fn with_fixed_sample_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate));
        self.fixed_sample_rate = Some(rate);
        self
    }

    /// Builder-style thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1);
        self.num_threads = Some(threads);
        self
    }

    /// Builder-style batch size.
    pub fn with_batch_size(mut self, batch: usize) -> Self {
        assert!(batch >= 1);
        self.batch_size = batch;
        self
    }

    /// Builder-style step horizon.
    pub fn with_max_steps(mut self, steps: usize) -> Self {
        assert!(steps >= 1);
        self.max_steps = steps;
        self
    }

    /// Builder-style pinned high-degree threshold. Dynamic drivers pin it
    /// so carried windows and per-window rebuilds classify vertices
    /// identically (the default re-derives theta from each snapshot's
    /// degree distribution).
    pub fn with_theta(mut self, theta: usize) -> Self {
        self.theta = Some(theta);
        self
    }

    /// Builder-style sequential-fallback threshold (see
    /// [`RlCutConfig::parallel_threshold`]).
    pub fn with_parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Builder-style worker-pool toggle (see
    /// [`RlCutConfig::use_worker_pool`]).
    pub fn with_worker_pool(mut self, enabled: bool) -> Self {
        self.use_worker_pool = enabled;
        self
    }

    /// Builder-style per-step scan cap (see [`RlCutConfig::max_scan`]).
    pub fn with_max_scan(mut self, cap: usize) -> Self {
        assert!(cap >= 1, "a zero scan cap would stall every step");
        self.max_scan = Some(cap);
        self
    }

    /// Effective worker-thread count.
    pub fn threads(&self) -> usize {
        self.num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = RlCutConfig::new(1.0);
        assert_eq!(c.max_steps, 10);
        assert_eq!(c.batch_size, 48);
        assert!(!c.use_penalty);
        assert_eq!(c.initial_sample_rate, 0.01);
        assert_eq!(c.parallel_threshold, 64);
        assert!(c.use_worker_pool);
        assert_eq!(c.max_scan, None);
    }

    #[test]
    fn max_scan_builder() {
        assert_eq!(RlCutConfig::new(1.0).with_max_scan(5000).max_scan, Some(5000));
    }

    #[test]
    #[should_panic]
    fn zero_scan_cap_rejected() {
        RlCutConfig::new(1.0).with_max_scan(0);
    }

    #[test]
    fn builders() {
        let c = RlCutConfig::new(1.0)
            .with_seed(9)
            .with_threads(2)
            .with_batch_size(4)
            .with_max_steps(3)
            .with_fixed_sample_rate(0.1);
        assert_eq!(c.seed, 9);
        assert_eq!(c.threads(), 2);
        assert_eq!(c.batch_size, 4);
        assert_eq!(c.max_steps, 3);
        assert_eq!(c.fixed_sample_rate, Some(0.1));
    }

    #[test]
    #[should_panic]
    fn invalid_rate_rejected() {
        RlCutConfig::new(1.0).with_fixed_sample_rate(1.5);
    }
}
