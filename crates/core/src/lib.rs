//! # rlcut — adaptive multi-agent RL graph partitioning for geo-distributed DCs
//!
//! Implementation of **RLCut** (Zhou et al., ICDE 2022): a Learning-Automata
//! multi-agent partitioner over the hybrid-cut model that minimizes the
//! inter-DC data transfer time of geo-distributed graph analytics subject
//! to a WAN cost budget, and adapts its own training overhead to graph
//! dynamicity.
//!
//! One learning agent per vertex; the environment state is the vector of
//! master locations (§IV-B). Each training step every sampled agent runs
//! the five-step loop of Fig 5:
//!
//! 1. **Score function** (Eq 10) — [`score`]: for every candidate DC,
//!    project the move with `geopart`'s `O(deg)` incremental evaluator and
//!    blend time/cost improvements with the adaptive `tw`/`cw` weights.
//! 2. **Reinforcement signal** (Eq 11) — reward the best-scoring DC,
//!    penalize the rest.
//! 3. **Probability update** (Eq 12) — [`agent`]: reward-only by default
//!    (the paper shows penalty updates converge ~30× slower, Fig 6);
//!    penalty updates (Eq 9) are available behind a flag.
//! 4. **Action selection** (Eq 13) — UCB over realized signals, with the
//!    LA probability vector breaking exploration ties.
//! 5. **Vertex migration** (Fig 7) — [`trainer`]: batched, globally
//!    checked: each batch is evaluated against a frozen snapshot, applied
//!    moves roll back if their Eq 10 score against the live state is
//!    negative.
//!
//! Overhead adaptation (§V): [`straggler`] assigns agents to threads by
//! degree (greedy LPT), [`sampling`] trains only the lowest-degree `k%` of
//! agents and retunes `k` per step from the remaining time budget (Eq 14).
//! [`adaptive`] wraps it all for dynamic graphs: each arrival window
//! re-partitions within the required optimization overhead `T_opt`.
//!
//! ## Quickstart
//!
//! ```
//! use geograph::{GeoGraph, locality::LocalityConfig, generators::{rmat, RmatConfig}};
//! use geosim::regions::ec2_eight_regions;
//! use rlcut::{partition, RlCutConfig};
//!
//! let graph = rmat(&RmatConfig::social(1024, 8192), 7);
//! let geo = GeoGraph::from_graph(graph, &LocalityConfig::paper_default(7));
//! let env = ec2_eight_regions();
//! let budget = geosim::cost::default_budget(&env, &geo.locations, &geo.data_sizes, 0.4);
//!
//! let config = RlCutConfig::new(budget).with_seed(1);
//! let profile = geopart::TrafficProfile::uniform(geo.num_vertices(), 8.0);
//! let result = partition(&geo, &env, profile, 10.0, &config);
//! assert!(result.final_objective(&env).total_cost() <= budget);
//! ```

pub mod adaptive;
pub mod agent;
pub mod checkpoint;
pub mod config;
pub mod durable;
pub mod observer;
pub mod pool;
pub mod recovery;
pub mod sampling;
pub mod score;
pub mod shard;
pub mod stats;
pub mod straggler;
pub mod trainer;

pub use adaptive::{AdaptiveRlCut, WindowError, WindowReport};
pub use checkpoint::{CheckpointError, TrainerCheckpoint};
pub use config::RlCutConfig;
pub use durable::{DurableAdaptive, DurableWindowError, RecoverySummary};
pub use pool::{PoolError, WorkerPool};
pub use recovery::{train_under_faults, FaultTrainReport};
pub use shard::{
    partition_sharded, refresh_views, shard_carry_streamed, InProcessShuffle, ShardCarry,
    ShardError, ShardedTrainer, ShuffleMsg, ShuffleTransport,
};
pub use stats::{RlCutResult, StepStats};
pub use trainer::{partition, partition_from, SessionResources, TrainerSession};
