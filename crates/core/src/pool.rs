//! Persistent training worker pool with step-resident scratch arenas.
//!
//! Both phases of every RLCut training step fan work out over `threads`
//! workers. Before this module existed each phase of each step paid for a
//! fresh `std::thread::scope` spawn/join **and** cold [`MoveScratch`]
//! arenas; on the small per-step work items of a converging trainer that
//! fixed cost dominates. A [`WorkerPool`] is spawned once per
//! [`crate::TrainerSession`] (and once per pool-enabled baseline refiner
//! run) and reused for every subsequent dispatch:
//!
//! * **Workers are pinned and persistent** — `threads` OS threads parked
//!   on a condvar between dispatches, so a dispatch is a mutex/condvar
//!   round-trip instead of `threads` clone/spawn/join cycles.
//! * **Scratch arenas are step-resident** — each worker owns one
//!   [`MoveScratch`] for its whole life. The arena warms up during the
//!   first pass over the workload and later passes run allocation-free
//!   ([`WorkerPool::scratch_stats`] exposes the capacities so tests can
//!   assert no regrowth).
//! * **Panics surface as typed errors** — a worker catches its job's
//!   panic, the pool reports [`PoolError::WorkerPanicked`] from
//!   [`WorkerPool::run_on_all`], and the pool stays usable. Workers never
//!   die with the job.
//!
//! ## Dispatch protocol
//!
//! `run_on_all(job)` publishes one type-erased job pointer under the state
//! mutex, bumps the epoch, and wakes all workers. Every worker runs the
//! *same* closure exactly once with its worker index (and its resident
//! scratch), then decrements the outstanding count; the last one out wakes
//! the dispatcher. `run_on_all` returns only after **all** workers
//! finished the epoch — that blocking wait is what makes the lifetime
//! erasure sound: the job borrows caller-stack state (the trainer's
//! `RwLock<HybridState>`, frozen proposal slices, …) and the caller cannot
//! touch or drop that state while `run_on_all` has not returned.
//!
//! Determinism: the pool adds no scheduling freedom beyond what
//! `thread::scope` had — work assignment is decided by the caller (LPT
//! groups, strided batches), workers only compute into disjoint slots, and
//! reductions happen on the caller thread in caller-chosen order.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use geopart::{MoveScratch, ScratchStats};
use parking_lot::{Condvar, Mutex};

/// Typed failure of a pool dispatch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// A worker's job panicked. The offending epoch still ran to
    /// completion on every other worker and the pool remains usable.
    WorkerPanicked {
        /// Index of the first worker (by index order) that panicked.
        worker: usize,
        /// Panic payload rendered to a string (`"<non-string panic>"` when
        /// the payload was neither `&str` nor `String`).
        message: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { worker, message } => {
                write!(f, "pool worker {worker} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// A job as workers see it: shared closure called with (worker index,
/// resident scratch).
type JobRef<'a> = &'a (dyn Fn(usize, &mut MoveScratch) + Sync);

/// Type-erased job pointer published to the workers. Soundness: the
/// pointee lives on the dispatcher's stack and `run_on_all` blocks until
/// every worker has finished with it.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize, &mut MoveScratch) + Sync));

// SAFETY: the pointee is `Sync` (shared `&`-calls from many threads are
// fine) and outlives every dereference per the dispatch protocol above.
unsafe impl Send for Job {}

#[derive(Default)]
struct Dispatch {
    /// Bumped once per dispatch; workers run each epoch exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current epoch.
    remaining: usize,
    /// Panics collected during the current epoch, by worker index.
    panics: Vec<(usize, String)>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<Dispatch>,
    /// Workers park here between epochs.
    work: Condvar,
    /// The dispatcher parks here until `remaining` drains to zero.
    done: Condvar,
}

/// Long-lived worker pool; see the module docs for the protocol.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Serializes dispatchers: `run_on_all` takes `&self`, so two callers
    /// could otherwise interleave epochs.
    dispatch_gate: Mutex<()>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("threads", &self.workers.len()).finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` persistent workers, each owning a fresh
    /// [`MoveScratch`] that lives until the pool is dropped.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(Dispatch::default()),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rlcut-pool-{index}"))
                    .spawn(move || worker_main(index, &shared))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool { shared, dispatch_gate: Mutex::new(()), workers }
    }

    /// Number of workers (== the trainer's effective thread count).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `job` once on **every** worker (with its worker index and its
    /// resident scratch) and blocks until all of them finished.
    ///
    /// Returns [`PoolError::WorkerPanicked`] if any job invocation
    /// panicked; the remaining workers still complete the epoch, so the
    /// pool is immediately reusable. Jobs that synchronize among
    /// themselves (e.g. via a [`std::sync::Barrier`] sized
    /// [`Self::threads`]) must not panic between barrier points — a
    /// deserter would strand its peers, exactly as under `thread::scope`.
    pub fn run_on_all(&self, job: JobRef<'_>) -> Result<(), PoolError> {
        let _gate = self.dispatch_gate.lock();
        // Erase the borrow lifetime; the completion wait below re-proves
        // it. (`Job` documents the contract.)
        let erased = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, &mut MoveScratch) + Sync + '_),
                *const (dyn Fn(usize, &mut MoveScratch) + Sync + 'static),
            >(job as *const _)
        });
        let mut state = self.shared.state.lock();
        debug_assert_eq!(state.remaining, 0, "dispatch gate must serialize epochs");
        state.epoch += 1;
        state.job = Some(erased);
        state.remaining = self.workers.len();
        state.panics.clear();
        self.shared.work.notify_all();
        state = self.shared.done.wait_while(state, |s| s.remaining > 0);
        state.job = None;
        if let Some((worker, message)) = state.panics.first().cloned() {
            return Err(PoolError::WorkerPanicked { worker, message });
        }
        Ok(())
    }

    /// OS-thread identities of the workers, by worker index — the probe
    /// behind the "one pool for the whole dynamic run" contract: a driver
    /// that silently rebuilds its pool between windows shows fresh ids
    /// here, while genuine reuse keeps them stable.
    pub fn thread_ids(&self) -> Vec<std::thread::ThreadId> {
        let slots: Vec<Mutex<Option<std::thread::ThreadId>>> =
            (0..self.threads()).map(|_| Mutex::new(None)).collect();
        self.run_on_all(&|worker, _| {
            *slots[worker].lock() = Some(std::thread::current().id());
        })
        .expect("thread_ids job cannot panic");
        slots.into_iter().map(|slot| slot.into_inner().expect("every worker reports")).collect()
    }

    /// Capacity snapshot of every worker's resident scratch, by worker
    /// index — the probe behind the "arenas stay warm across steps"
    /// contract.
    pub fn scratch_stats(&self) -> Vec<ScratchStats> {
        let slots: Vec<Mutex<Option<ScratchStats>>> =
            (0..self.threads()).map(|_| Mutex::new(None)).collect();
        self.run_on_all(&|worker, scratch| {
            *slots[worker].lock() = Some(scratch.stats());
        })
        .expect("scratch_stats job cannot panic");
        slots.into_iter().map(|slot| slot.into_inner().expect("every worker reports")).collect()
    }
}

/// The trainer's pool doubles as the ingest pool for streamed CSR builds:
/// graph construction and training then share one set of warm OS threads
/// instead of spawning a second fleet for the build phase. The ingest job
/// ignores the resident [`MoveScratch`] — scatter passes carry their own
/// state — so arenas stay warm for the training steps that follow.
impl geograph::IngestPool for WorkerPool {
    fn threads(&self) -> usize {
        WorkerPool::threads(self)
    }

    fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        self.run_on_all(&|worker, _scratch| job(worker))
            .expect("ingest jobs do not panic; build errors are returned, not thrown");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            // Workers catch job panics, so join only fails if the pool
            // machinery itself panicked — propagating is correct there.
            handle.join().expect("pool worker exited cleanly");
        }
    }
}

fn worker_main(index: usize, shared: &Shared) {
    let mut scratch = MoveScratch::new();
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock();
            state = shared
                .work
                .wait_while(state, |s| !s.shutdown && (s.epoch == seen_epoch || s.job.is_none()));
            if state.shutdown {
                return;
            }
            seen_epoch = state.epoch;
            state.job.expect("non-shutdown wakeup carries a job")
        };
        // SAFETY: the dispatcher blocks in `run_on_all` until this worker
        // (and all others) decrement `remaining`, so the pointee is alive
        // for the whole call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(index, &mut scratch) }));
        let mut state = shared.state.lock();
        if let Err(payload) = result {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".to_string());
            state.panics.push((index, message));
            state.panics.sort_by_key(|&(w, _)| w);
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Thread count of this process via /proc (Linux); falls back to 0 so
/// leak assertions degenerate harmlessly elsewhere. Test-only probe shared
/// with the trainer's pool-lifecycle tests.
#[cfg(test)]
pub(crate) fn live_os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1).map(str::to_string))
        })
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn every_worker_runs_each_dispatch_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..10 {
            pool.run_on_all(&|w, _| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 10);
        }
    }

    #[test]
    fn jobs_can_coordinate_through_a_barrier() {
        let pool = WorkerPool::new(3);
        let barrier = Barrier::new(3);
        let counter = AtomicUsize::new(0);
        pool.run_on_all(&|_, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            barrier.wait();
            // Everyone observes the full pre-barrier count.
            assert_eq!(counter.load(Ordering::SeqCst), 3);
        })
        .unwrap();
    }

    #[test]
    fn panic_surfaces_as_typed_error_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let err = pool
            .run_on_all(&|w, _| {
                if w == 2 {
                    panic!("boom on worker {w}");
                }
            })
            .unwrap_err();
        assert_eq!(
            err,
            PoolError::WorkerPanicked { worker: 2, message: "boom on worker 2".to_string() }
        );
        assert!(err.to_string().contains("worker 2 panicked"));
        // The pool dispatches fine afterwards.
        let ran = AtomicUsize::new(0);
        pool.run_on_all(&|_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn earliest_worker_index_wins_on_multi_panic() {
        let pool = WorkerPool::new(4);
        let err = pool
            .run_on_all(&|w, _| {
                if w >= 1 {
                    panic!("w{w}");
                }
            })
            .unwrap_err();
        let PoolError::WorkerPanicked { worker, .. } = err;
        assert_eq!(worker, 1);
    }

    #[test]
    fn scratch_is_resident_across_dispatches() {
        let pool = WorkerPool::new(2);
        // Warm the arenas through the public seal path: capacity grows on
        // first use, then a smaller second dispatch must not shrink or
        // move it.
        pool.run_on_all(&|_, scratch| {
            scratch.reserve_neighbors(64);
        })
        .unwrap();
        let warm = pool.scratch_stats();
        assert!(warm.iter().all(|s| s.neighbor_capacity >= 64), "{warm:?}");
        pool.run_on_all(&|_, scratch| {
            scratch.reserve_neighbors(8);
        })
        .unwrap();
        assert_eq!(pool.scratch_stats(), warm, "smaller job must not shrink warm arenas");
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let pool = WorkerPool::new(4);
        let first = pool.thread_ids();
        assert_eq!(first.len(), 4);
        let unique: std::collections::HashSet<_> = first.iter().copied().collect();
        assert_eq!(unique.len(), 4, "workers must be distinct OS threads");
        pool.run_on_all(&|_, _| {}).unwrap();
        assert_eq!(pool.thread_ids(), first, "ids must be stable across dispatches");
        assert_ne!(WorkerPool::new(4).thread_ids(), first, "a fresh pool has fresh ids");
    }

    #[test]
    fn pool_serves_as_ingest_pool_for_streamed_builds() {
        use geograph::generators::{rmat_streamed, RmatConfig};
        use geograph::ScopedPool;
        let config = RmatConfig::social(1 << 10, 4 << 10);
        let (reference, _) =
            rmat_streamed(&config, 7, 512, &ScopedPool(1)).expect("reference build");
        let pool = WorkerPool::new(4);
        let (streamed, report) = rmat_streamed(&config, 7, 512, &pool).expect("pooled build");
        assert_eq!(streamed, reference, "ingest through the trainer pool must be bit-identical");
        assert!(report.edges > 0);
        // The pool remains usable for training dispatches afterwards.
        let ran = AtomicUsize::new(0);
        pool.run_on_all(&|_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_all_workers() {
        let before = live_os_threads();
        {
            let pool = WorkerPool::new(8);
            pool.run_on_all(&|_, _| {}).unwrap();
            assert!(live_os_threads() >= before);
        }
        // All eight workers joined on drop; allow unrelated runtime threads
        // some slack in either direction.
        let after = live_os_threads();
        assert!(
            after <= before + 1,
            "worker threads leaked: {before} before pool, {after} after drop"
        );
    }
}
