//! # geoserve — the placement-serving daemon
//!
//! Long-running serving layer for the adaptive partitioner: analytics
//! frontends ask it *where a vertex's master lives* and *where an edge
//! is processed*, millions of times a second, while the trainer keeps
//! re-partitioning underneath.
//!
//! Three pieces:
//!
//! * [`RoutingTable`] — an immutable, read-optimized snapshot of one
//!   committed placement: vertex → master, vertex → replica set, and the
//!   hybrid-cut edge → placement rule, all batched
//!   ([`RoutingTable::lookup_many`]).
//! * [`PlanBoard`] — the lock-free publication point. A plan flip is one
//!   atomic pointer swap; readers pin tables through per-reader hazard
//!   slots and never take a lock, so a reader mid-batch keeps its table
//!   while the trainer commits the next window (see [`board`] for the
//!   reclamation argument).
//! * [`PlacementServer`] — the writer: boots the last committed plan
//!   straight out of a [`geodur::DurableStore`] (no retraining after a
//!   restart), attaches to a live [`rlcut::DurableAdaptive`] trainer as
//!   its commit hook, and evacuates dead DCs with the trainer's own
//!   reseed rule so service continues through a
//!   [`geosim::FaultSchedule`] outage.
//!
//! The consistency contract, end to end: **every response is served from
//! exactly one published epoch.** Readers racing a window commit or an
//! evacuation observe the previous table or the new one, never a blend
//! and never a torn read.

pub mod board;
pub mod server;
pub mod table;

pub use board::{PlanBoard, PlanReader, TableGuard};
pub use server::{BootReport, PlacementServer, ServeError};
pub use table::RoutingTable;
