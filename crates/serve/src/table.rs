//! The immutable routing table: a read-optimized snapshot of one
//! committed placement.
//!
//! A [`RoutingTable`] answers the two questions analytics frontends ask
//! the placement layer:
//!
//! * **vertex → master DC** — where a vertex's authoritative replica
//!   lives (writes, scatter targets);
//! * **edge → placement DC** — where an in-edge `(u, v)` is processed,
//!   which is the hybrid-cut rule the partitioner itself placed it
//!   under: at `v`'s master when `v` is low-degree, at `u`'s master when
//!   `v` is high-degree (the edge was cut on the source side).
//!
//! Tables are *immutable* once built — every field is plain owned data,
//! so a `&RoutingTable` is safely shared across any number of threads
//! with no interior locking. Live re-partitioning never mutates a
//! table; it builds a new one and flips it in through the
//! [`crate::board::PlanBoard`].

use geograph::{DcId, VertexId};
use geopart::PlacementState;

/// A read-only snapshot of one published placement.
#[derive(Clone, Debug, PartialEq)]
pub struct RoutingTable {
    /// Unique publication sequence number, assigned by the board at
    /// publish time (0 = never published).
    pub(crate) epoch: u64,
    /// Committed trainer window this table was snapshotted from (the
    /// table's *provenance*; evacuations re-publish the same window).
    window: u64,
    num_dcs: u8,
    /// Master DC per vertex.
    masters: Vec<DcId>,
    /// Full replica set per vertex as a DC bitmask (master bit included).
    replicas: Vec<u64>,
    /// Hybrid-cut degree class per vertex (drives [`Self::edge_placement`]).
    high: Vec<bool>,
}

impl RoutingTable {
    /// Snapshots a routing table from a sealed placement state.
    pub fn from_placement(window: u64, core: &PlacementState) -> RoutingTable {
        let n = core.num_vertices();
        let mut masters = Vec::with_capacity(n);
        let mut replicas = Vec::with_capacity(n);
        let mut high = Vec::with_capacity(n);
        for v in 0..n as VertexId {
            let m = core.master(v);
            masters.push(m);
            replicas.push(core.mirror_mask(v) | (1u64 << m));
            high.push(core.is_high(v));
        }
        RoutingTable { epoch: 0, window, num_dcs: core.num_dcs() as u8, masters, replicas, high }
    }

    /// A table for a pipeline with no committed placement yet: every
    /// vertex is served from its home location, single replica, all
    /// low-degree (no training ever classified them).
    pub fn from_homes(window: u64, homes: &[DcId], num_dcs: usize) -> RoutingTable {
        RoutingTable {
            epoch: 0,
            window,
            num_dcs: num_dcs as u8,
            masters: homes.to_vec(),
            replicas: homes.iter().map(|&d| 1u64 << d).collect(),
            high: vec![false; homes.len()],
        }
    }

    /// Publication sequence number (unique per published table).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Committed trainer window this table reflects.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Number of routable vertices.
    pub fn num_vertices(&self) -> usize {
        self.masters.len()
    }

    /// Number of data centers.
    pub fn num_dcs(&self) -> usize {
        self.num_dcs as usize
    }

    /// Master DC of every vertex.
    pub fn masters(&self) -> &[DcId] {
        &self.masters
    }

    /// Master DC of `v`.
    #[inline]
    pub fn master(&self, v: VertexId) -> DcId {
        self.masters[v as usize]
    }

    /// Replica set of `v` as a DC bitmask (master included).
    #[inline]
    pub fn replica_set(&self, v: VertexId) -> u64 {
        self.replicas[v as usize]
    }

    /// Where the in-edge `(src, dst)` is processed under the hybrid cut.
    #[inline]
    pub fn edge_placement(&self, src: VertexId, dst: VertexId) -> DcId {
        if self.high[dst as usize] {
            self.masters[src as usize]
        } else {
            self.masters[dst as usize]
        }
    }

    /// Batched vertex → master lookup: clears `out` and fills it with
    /// the master of every vertex in `vs`. One bounds-checked pass, no
    /// per-lookup allocation.
    pub fn lookup_many(&self, vs: &[VertexId], out: &mut Vec<DcId>) {
        out.clear();
        out.reserve(vs.len());
        out.extend(vs.iter().map(|&v| self.masters[v as usize]));
    }

    /// Batched edge → placement lookup over `(src, dst)` pairs.
    pub fn edge_placement_many(&self, edges: &[(VertexId, VertexId)], out: &mut Vec<DcId>) {
        out.clear();
        out.reserve(edges.len());
        out.extend(edges.iter().map(|&(u, v)| self.edge_placement(u, v)));
    }

    /// The table this one becomes when the DCs flagged in `dead` fail:
    /// every vertex mastered on a dead DC is re-routed with the *same*
    /// rule the trainer's fault-window reseed uses — its home location if
    /// alive, else the first live DC — so the evacuated table matches the
    /// placement the next fault window will resume from. Dead DCs are
    /// also stripped from every replica set.
    ///
    /// Resident heap bytes of this table: the three per-vertex planes
    /// (master `DcId`, replica bitmask `u64`, degree-class `bool`). This
    /// is what one published epoch pins while readers hold it — the
    /// serving daemon's steady-state footprint is `heap_bytes` times the
    /// number of epochs still referenced.
    pub fn heap_bytes(&self) -> usize {
        self.masters.capacity() * std::mem::size_of::<DcId>()
            + self.replicas.capacity() * std::mem::size_of::<u64>()
            + self.high.capacity() * std::mem::size_of::<bool>()
    }

    /// # Panics
    /// If `dead` does not cover the DC count, `homes` does not cover the
    /// vertices, or every DC is dead.
    pub fn evacuated(&self, dead: &[bool], homes: &[DcId]) -> RoutingTable {
        assert_eq!(dead.len(), self.num_dcs as usize, "dead flags must cover every DC");
        assert_eq!(homes.len(), self.masters.len(), "homes must cover every vertex");
        let fallback = dead.iter().position(|&d| !d).expect("at least one DC must survive") as DcId;
        let mut dead_mask = 0u64;
        for (d, &is_dead) in dead.iter().enumerate() {
            if is_dead {
                dead_mask |= 1u64 << d;
            }
        }
        let mut out = self.clone();
        for v in 0..out.masters.len() {
            if dead[out.masters[v] as usize] {
                let home = homes[v];
                out.masters[v] = if dead[home as usize] { fallback } else { home };
            }
            out.replicas[v] = (out.replicas[v] & !dead_mask) | (1u64 << out.masters[v]);
        }
        out.epoch = 0; // re-assigned at publish
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::{GeoGraph, GraphBuilder, LocalityConfig};
    use geopart::{HybridState, TrafficProfile};
    use geosim::regions::ec2_eight_regions;

    fn small_geo() -> GeoGraph {
        let n = 60;
        let mut b = GraphBuilder::new(n);
        for i in 0..n as u32 {
            // A hub at vertex 0 so the theta cut has high-degree vertices.
            b.add_edges([(i, 0), (i, (i + 1) % n as u32)]);
        }
        GeoGraph::from_graph(b.build(), &LocalityConfig::uniform(8, 5))
    }

    #[test]
    fn table_mirrors_the_placement_it_snapshots() {
        let geo = small_geo();
        let env = ec2_eight_regions();
        let n = geo.num_vertices();
        let state = HybridState::from_masters(
            &geo,
            &env,
            geo.locations.clone(),
            3,
            TrafficProfile::uniform(n, 8.0),
            10.0,
        );
        let t = RoutingTable::from_placement(7, state.core());
        assert_eq!(t.window(), 7);
        assert_eq!(t.num_vertices(), n);
        for v in 0..n as VertexId {
            assert_eq!(t.master(v), state.core().master(v));
            assert_eq!(t.replica_set(v), state.core().mirror_mask(v) | (1 << t.master(v)));
            // The edge rule matches the partitioner's placement rule.
            let u = (v + 1) % n as VertexId;
            let expect = if state.core().is_high(v) {
                state.core().master(u)
            } else {
                state.core().master(v)
            };
            assert_eq!(t.edge_placement(u, v), expect);
        }
        let vs: Vec<VertexId> = (0..n as VertexId).rev().collect();
        let mut out = Vec::new();
        t.lookup_many(&vs, &mut out);
        assert_eq!(out.len(), n);
        for (i, &v) in vs.iter().enumerate() {
            assert_eq!(out[i], t.master(v));
        }
    }

    #[test]
    fn evacuation_reroutes_exactly_like_the_trainer_reseed() {
        let geo = small_geo();
        let t = RoutingTable::from_homes(0, &geo.locations, geo.num_dcs);
        let mut dead = vec![false; geo.num_dcs];
        dead[2] = true;
        dead[5] = true;
        let evac = t.evacuated(&dead, &geo.locations);
        for v in 0..t.num_vertices() as VertexId {
            let m = evac.master(v);
            assert!(!dead[m as usize], "vertex {v} still mastered on a dead DC");
            // Home was dead, so the fallback is the first live DC (0).
            let home = geo.locations[v as usize];
            let expect = if dead[home as usize] { 0 } else { home };
            assert_eq!(m, expect);
            assert_eq!(evac.replica_set(v) & ((1 << 2) | (1 << 5)), 0, "dead replica kept");
            assert_ne!(evac.replica_set(v) & (1 << m), 0, "master missing from replica set");
        }
        // A healthy evacuation is the identity on masters.
        let all_live = vec![false; geo.num_dcs];
        let noop = t.evacuated(&all_live, &geo.locations);
        assert_eq!(noop.masters(), t.masters());
    }

    #[test]
    fn heap_bytes_covers_all_three_planes() {
        let geo = small_geo();
        let n = geo.num_vertices();
        let t = RoutingTable::from_homes(0, &geo.locations, geo.num_dcs);
        // masters: n × DcId, replicas: n × u64, high: n × bool — capacity
        // may exceed length, so the exact sizes are a floor.
        assert!(t.heap_bytes() >= n * std::mem::size_of::<DcId>() + n * 8 + n);
    }
}
