//! The placement server: boots a routing table from a durable store or a
//! live trainer, publishes every committed plan, and evacuates dead DCs.
//!
//! A [`PlacementServer`] is the writer side of the serving daemon; the
//! read side is any number of [`PlanReader`]s handed out by
//! [`PlacementServer::reader`]. Three ways a table gets published:
//!
//! * **Boot** — [`PlacementServer::boot_from_store`] recovers the last
//!   committed placement from a [`geodur::DurableStore`] (snapshot + WAL
//!   replay, bit-exact) and serves it immediately, *without retraining*.
//!   A restarted server answers with the same masters the dead one did.
//! * **Live re-partitioning** — [`PlacementServer::attach`] installs a
//!   commit hook on a [`DurableAdaptive`] trainer: each committed window
//!   flips a fresh table in. The hook runs after the commit fsync, so a
//!   published plan is always a durable plan.
//! * **Evacuation** — [`PlacementServer::evacuate`] re-routes every
//!   vertex off the DCs a fault killed (same reseed rule as the
//!   trainer's fault window) and flips the evacuated table in. Readers
//!   observe the pre-fault table or the post-evacuation table, never an
//!   in-between state.

use std::path::Path;
use std::sync::Arc;

use geodur::{DurableError, DurableStore};
use geograph::DcId;
use geosim::CloudEnv;
use rlcut::DurableAdaptive;

use crate::board::{PlanBoard, PlanReader};
use crate::table::RoutingTable;

/// Why the serving layer refused to boot or evacuate.
#[derive(Debug)]
pub enum ServeError {
    /// The durable store could not be recovered (including the typed
    /// [`DurableError::EnvMismatch`] when the wrong environment is
    /// offered).
    Durable(DurableError),
    /// An evacuation would leave no live DC to route to.
    AllDcsDead,
    /// Evacuation flags do not cover the served environment's DCs.
    BadDeadFlags { expected: usize, got: usize },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Durable(e) => write!(f, "serving boot failed: {e}"),
            ServeError::AllDcsDead => write!(f, "evacuation refused: every DC is flagged dead"),
            ServeError::BadDeadFlags { expected, got } => {
                write!(f, "evacuation flags cover {got} DCs, the served plan has {expected}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Durable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DurableError> for ServeError {
    fn from(e: DurableError) -> Self {
        ServeError::Durable(e)
    }
}

/// What a boot found in the durable store.
#[derive(Clone, Copy, Debug)]
pub struct BootReport {
    /// Committed windows the served table reflects.
    pub window: u64,
    /// Windows replayed from the WAL on top of the snapshot.
    pub replayed_windows: u64,
    /// An uncommitted window tail was found and ignored (the serving
    /// layer only ever publishes committed plans).
    pub rolled_back: bool,
    /// FNV-1a of the served master vector — comparable across restarts
    /// and against the trainer's commit records.
    pub masters_fnv: u64,
}

/// The writer half of the serving daemon. Cheap to share: readers hold
/// the board, not the server.
pub struct PlacementServer {
    board: Arc<PlanBoard>,
    /// Vertex home locations, the evacuation reseed target.
    homes: Vec<DcId>,
    num_dcs: usize,
}

impl PlacementServer {
    /// Serves `table` directly (publication epoch 1). `homes` are the
    /// vertex home locations evacuations re-route to.
    pub fn new(table: RoutingTable, homes: Vec<DcId>) -> PlacementServer {
        let num_dcs = table.num_dcs();
        PlacementServer { board: PlanBoard::new(table), homes, num_dcs }
    }

    /// Boots from the durable store at `dir`: latest snapshot + WAL
    /// replay, then serves the recovered placement as epoch 1. No
    /// training happens — a restart serves exactly the masters the
    /// previous process committed. `env` must fingerprint-match the
    /// store ([`DurableError::EnvMismatch`] otherwise).
    pub fn boot_from_store(
        dir: &Path,
        env: &CloudEnv,
    ) -> Result<(PlacementServer, BootReport), ServeError> {
        let (recovered, _report, _store) = DurableStore::recover(dir, env)?;
        let window = recovered.next_window;
        let table = match &recovered.parts {
            Some((core, _theta)) => RoutingTable::from_placement(window, core),
            // Nothing ever committed: serve the home placement.
            None => RoutingTable::from_homes(window, &recovered.geo.locations, env.num_dcs()),
        };
        let report = BootReport {
            window,
            replayed_windows: recovered.replayed_windows,
            rolled_back: recovered.rolled_back,
            masters_fnv: geodur::masters_fnv(table.masters()),
        };
        let server = PlacementServer::new(table, recovered.geo.locations);
        Ok((server, report))
    }

    /// Installs this server as `trainer`'s plan sink: every committed
    /// window is snapshotted into a routing table and flipped in. The
    /// trainer may grow the graph; the served home locations are
    /// extended from each committed placement's geo via the hook caller.
    pub fn attach(&self, trainer: &mut DurableAdaptive) {
        let board = Arc::clone(&self.board);
        trainer.set_commit_hook(Box::new(move |window, core| {
            board.publish(RoutingTable::from_placement(window + 1, core));
        }));
    }

    /// Publishes a table built by the caller (e.g. replaying an external
    /// feed). Returns its publication epoch.
    pub fn publish(&self, table: RoutingTable) -> u64 {
        self.board.publish(table)
    }

    /// Re-routes every vertex off the DCs flagged `dead` and publishes
    /// the evacuated table; returns its publication epoch. Uses the same
    /// reseed rule as the trainer's fault window, so the next trained
    /// plan continues from what is being served. Readers racing this
    /// call see the pre-fault or the post-evacuation table, whole.
    pub fn evacuate(&mut self, dead: &[bool]) -> Result<u64, ServeError> {
        if dead.len() != self.num_dcs {
            return Err(ServeError::BadDeadFlags { expected: self.num_dcs, got: dead.len() });
        }
        if dead.iter().all(|&d| d) {
            return Err(ServeError::AllDcsDead);
        }
        // The server is the only writer, so pinning via a throwaway
        // reader sees the latest published table.
        let mut reader = self.board.reader();
        let evacuated = {
            let current = reader.pin();
            // Served vertices beyond the recorded homes (graph growth
            // since boot) fall back to the first live DC.
            let fallback = dead.iter().position(|&d| !d).expect("checked above") as DcId;
            let mut homes = self.homes.clone();
            homes.resize(current.num_vertices(), fallback);
            current.evacuated(dead, &homes)
        };
        drop(reader);
        Ok(self.board.publish(evacuated))
    }

    /// Registers a reader against the served plan.
    pub fn reader(&self) -> PlanReader {
        self.board.reader()
    }

    /// The shared publication board (bench harnesses hand this to
    /// reader threads directly).
    pub fn board(&self) -> Arc<PlanBoard> {
        Arc::clone(&self.board)
    }

    /// Epoch of the most recently published table.
    pub fn published_epoch(&self) -> u64 {
        self.board.published_epoch()
    }
}

impl std::fmt::Debug for PlacementServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlacementServer")
            .field("num_dcs", &self.num_dcs)
            .field("board", &self.board)
            .finish_non_exhaustive()
    }
}
