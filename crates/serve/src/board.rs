//! Lock-free plan publication: single-writer atomic flips, wait-free
//! reader pins, hazard-pointer reclamation.
//!
//! The serving daemon's core constraint is that a lookup must never
//! block on the trainer committing a new window. A `RwLock<Arc<Table>>`
//! violates that the moment the writer grabs the write half; the usual
//! answer is the `arc-swap` crate, which is not available here, so the
//! board hand-rolls the same guarantee from `std` atomics:
//!
//! * the current table lives behind one [`AtomicPtr`]; a **flip** is a
//!   single `swap` — readers racing the flip see the old table or the
//!   new one, never a mix and never a lock;
//! * each reader owns a registered **hazard slot**. Pinning a table is
//!   two atomic ops (read pointer, publish it as a hazard) plus one
//!   validating re-read; the retry loop only spins when a flip lands
//!   between those instructions, so reads are wait-free in practice
//!   (flips are per training window, reads are per query batch);
//! * the writer retires the old table on flip and frees retired tables
//!   only when no hazard slot holds them — a reader mid-batch keeps its
//!   table alive, readers that pinned after the flip keep the new one.
//!
//! Safety rests on the classic hazard-pointer argument: a reader
//! publishes the pointer *before* re-validating it against `current`,
//! and the writer collects hazards *after* swapping `current`, so any
//! reader the writer's scan misses must have pinned the post-swap table.
//! Total ordering of the four operations is guaranteed by `SeqCst`.

use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::table::RoutingTable;

/// One reader's hazard slot: the table pointer it is currently using
/// (null = idle). Slots are recycled when a [`PlanReader`] drops.
struct Slot {
    hazard: AtomicPtr<RoutingTable>,
    claimed: AtomicBool,
}

/// The publication point: one current [`RoutingTable`] plus the
/// machinery to flip it without ever making a reader wait.
pub struct PlanBoard {
    current: AtomicPtr<RoutingTable>,
    slots: Mutex<Vec<Arc<Slot>>>,
    /// Tables unlinked from `current` but possibly still pinned.
    retired: Mutex<Vec<*mut RoutingTable>>,
    /// Publication sequence; the next published table gets `+ 1`.
    epoch: AtomicU64,
    flips: AtomicU64,
}

// Raw pointers make these !Send/!Sync by default; the hazard protocol
// (module docs) is what actually guarantees cross-thread safety.
unsafe impl Send for PlanBoard {}
unsafe impl Sync for PlanBoard {}

impl PlanBoard {
    /// Creates a board serving `initial` as publication epoch 1.
    pub fn new(mut initial: RoutingTable) -> Arc<PlanBoard> {
        initial.epoch = 1;
        Arc::new(PlanBoard {
            current: AtomicPtr::new(Box::into_raw(Box::new(initial))),
            slots: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(1),
            flips: AtomicU64::new(0),
        })
    }

    /// Publishes `table` as the new current plan and returns its
    /// publication epoch. Readers flip atomically: every response is
    /// served entirely from the old table or entirely from this one.
    ///
    /// Single-writer by design (the trainer's commit hook); concurrent
    /// publishers are memory-safe but their epoch order is unspecified.
    pub fn publish(self: &Arc<Self>, mut table: RoutingTable) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        table.epoch = epoch;
        let fresh = Box::into_raw(Box::new(table));
        let old = self.current.swap(fresh, Ordering::SeqCst);
        self.flips.fetch_add(1, Ordering::Relaxed);

        // Retire the unlinked table and reclaim whatever is unpinned.
        let mut retired = self.retired.lock().expect("retired list poisoned");
        retired.push(old);
        let hazards: Vec<*mut RoutingTable> = {
            let slots = self.slots.lock().expect("slot list poisoned");
            slots.iter().map(|s| s.hazard.load(Ordering::SeqCst)).collect()
        };
        retired.retain(|&p| {
            if hazards.contains(&p) {
                true
            } else {
                // SAFETY: `p` is unlinked from `current` (only ever
                // retired once, by the swap above or an earlier one) and
                // no hazard slot holds it. A reader that read `p` from
                // `current` but has not yet published its hazard will
                // fail its re-validation — `current` no longer equals
                // `p` — and retry on the new table.
                unsafe { drop(Box::from_raw(p)) };
                false
            }
        });
        epoch
    }

    /// Registers a reader. Each reader owns a hazard slot; slots are
    /// recycled across reader lifetimes, so the slot list stays bounded
    /// by the peak number of concurrent readers.
    pub fn reader(self: &Arc<Self>) -> PlanReader {
        let mut slots = self.slots.lock().expect("slot list poisoned");
        for slot in slots.iter() {
            if !slot.claimed.swap(true, Ordering::SeqCst) {
                return PlanReader { board: Arc::clone(self), slot: Arc::clone(slot), retries: 0 };
            }
        }
        let slot = Arc::new(Slot {
            hazard: AtomicPtr::new(std::ptr::null_mut()),
            claimed: AtomicBool::new(true),
        });
        slots.push(Arc::clone(&slot));
        PlanReader { board: Arc::clone(self), slot, retries: 0 }
    }

    /// Epoch of the most recently published table.
    pub fn published_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// How many plan flips have been published.
    pub fn flips(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }
}

impl Drop for PlanBoard {
    fn drop(&mut self) {
        // No PlanReader can outlive the board (each holds an Arc), so
        // nothing is pinned; free the current and any retired tables.
        let current = *self.current.get_mut();
        // SAFETY: exclusive access (drop), pointer came from Box::into_raw.
        unsafe { drop(Box::from_raw(current)) };
        for &p in self.retired.get_mut().expect("retired list poisoned").iter() {
            // SAFETY: retired tables are unlinked and unpinned here.
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

impl std::fmt::Debug for PlanBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanBoard")
            .field("published_epoch", &self.published_epoch())
            .field("flips", &self.flips())
            .finish_non_exhaustive()
    }
}

/// A registered reader: pins the current table for the duration of a
/// query batch. Cheap to move across threads, not shareable (one hazard
/// slot cannot protect two concurrent pins).
pub struct PlanReader {
    board: Arc<PlanBoard>,
    slot: Arc<Slot>,
    retries: u64,
}

impl PlanReader {
    /// Pins the current table and returns a guard dereferencing to it.
    /// The table cannot be freed while the guard lives; a flip during
    /// the batch leaves this reader on the table it pinned.
    pub fn pin(&mut self) -> TableGuard<'_> {
        loop {
            let p = self.board.current.load(Ordering::SeqCst);
            self.slot.hazard.store(p, Ordering::SeqCst);
            if self.board.current.load(Ordering::SeqCst) == p {
                return TableGuard { table: p, slot: &self.slot };
            }
            // A flip landed between the read and the hazard publish; the
            // pointer we hold may already be reclaimed-in-flight. Retry
            // against the new current.
            self.retries += 1;
        }
    }

    /// Batched vertex → master lookup against one consistent table;
    /// returns the epoch that served the batch.
    pub fn lookup_many(&mut self, vs: &[geograph::VertexId], out: &mut Vec<geograph::DcId>) -> u64 {
        let table = self.pin();
        table.lookup_many(vs, out);
        table.epoch()
    }

    /// How many pin attempts raced a flip and retried — the reader-side
    /// "flip stall" (each retry is two atomic ops, not a lock wait).
    pub fn flip_retries(&self) -> u64 {
        self.retries
    }
}

impl Drop for PlanReader {
    fn drop(&mut self) {
        self.slot.hazard.store(std::ptr::null_mut(), Ordering::SeqCst);
        self.slot.claimed.store(false, Ordering::SeqCst);
    }
}

impl std::fmt::Debug for PlanReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanReader").field("retries", &self.retries).finish_non_exhaustive()
    }
}

/// A pinned table: dereferences to the [`RoutingTable`] that was current
/// at pin time. Dropping the guard releases the pin.
pub struct TableGuard<'r> {
    table: *mut RoutingTable,
    slot: &'r Slot,
}

impl std::ops::Deref for TableGuard<'_> {
    type Target = RoutingTable;
    fn deref(&self) -> &RoutingTable {
        // SAFETY: the hazard slot holds `table`, so the writer's
        // reclamation pass keeps it retired-but-alive until the guard
        // drops and clears the slot.
        unsafe { &*self.table }
    }
}

impl Drop for TableGuard<'_> {
    fn drop(&mut self) {
        self.slot.hazard.store(std::ptr::null_mut(), Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::DcId;

    fn homes_table(window: u64, homes: &[DcId]) -> RoutingTable {
        RoutingTable::from_homes(window, homes, 4)
    }

    #[test]
    fn publish_flips_epoch_and_reclaims_unpinned_tables() {
        let board = PlanBoard::new(homes_table(0, &[0, 1, 2, 3]));
        assert_eq!(board.published_epoch(), 1);
        let mut reader = board.reader();
        assert_eq!(reader.pin().master(2), 2);

        let e2 = board.publish(homes_table(1, &[3, 3, 3, 3]));
        assert_eq!(e2, 2);
        assert_eq!(board.flips(), 1);
        let guard = reader.pin();
        assert_eq!(guard.epoch(), 2);
        assert_eq!(guard.master(0), 3);
        drop(guard);

        // Many flips with an idle reader: retired list must not leak
        // (every unpinned table is reclaimed on the next publish).
        for i in 0..100 {
            board.publish(homes_table(i + 2, &[0, 0, 0, 0]));
        }
        assert!(board.retired.lock().unwrap().len() <= 1, "retired tables leaked");
    }

    #[test]
    fn a_pinned_table_survives_the_flip_that_retires_it() {
        let board = PlanBoard::new(homes_table(0, &[1, 1, 1, 1]));
        let mut reader = board.reader();
        let guard = reader.pin();
        let pinned_epoch = guard.epoch();
        board.publish(homes_table(1, &[2, 2, 2, 2]));
        board.publish(homes_table(2, &[3, 3, 3, 3]));
        // The guard still reads the table it pinned, untouched.
        assert_eq!(guard.epoch(), pinned_epoch);
        assert_eq!(guard.master(0), 1);
        drop(guard);
        assert_eq!(reader.pin().master(0), 3);
    }

    #[test]
    fn reader_slots_are_recycled() {
        let board = PlanBoard::new(homes_table(0, &[0; 4]));
        for _ in 0..64 {
            let mut r = board.reader();
            let _ = r.pin();
        }
        assert_eq!(board.slots.lock().unwrap().len(), 1, "slots not recycled");
        let _r1 = board.reader();
        let _r2 = board.reader();
        assert_eq!(board.slots.lock().unwrap().len(), 2);
    }

    #[test]
    fn concurrent_readers_each_see_exactly_one_published_epoch() {
        use std::sync::atomic::AtomicBool;
        let board = PlanBoard::new(homes_table(0, &[0, 0, 0, 0]));
        // Published history: epoch e serves master e % 4 everywhere.
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut reader = board.reader();
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                let vs: Vec<u32> = (0..4).collect();
                let mut out = Vec::new();
                let mut batches = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let epoch = reader.lookup_many(&vs, &mut out);
                    for &m in &out {
                        assert_eq!(m as u64, (epoch - 1) % 4, "lookup mixed tables across a flip");
                    }
                    batches += 1;
                }
                batches
            }));
        }
        for e in 1..100u64 {
            let m = (e % 4) as DcId;
            board.publish(homes_table(e, &[m, m, m, m]));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = handles.into_iter().map(|h| h.join().expect("reader panicked")).sum();
        assert!(total > 0, "readers never ran");
        assert_eq!(board.flips(), 99);
    }
}
