//! The evaluation algorithms and their expected traffic profiles.

use geograph::{GeoGraph, VertexId};
use geopart::TrafficProfile;

/// Bytes of one vertex-value message (a rank, a distance, a match count).
pub const VALUE_BYTES: f32 = 8.0;

/// The three analytics workloads of the paper's evaluation (§VI-A.2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// PageRank: all vertices active every iteration, fixed-size messages.
    PageRank { iterations: usize, damping: f64 },
    /// Unit-weight SSSP: frontier-driven activation.
    Sssp { source: VertexId },
    /// Subgraph isomorphism (directed-triangle pattern): a few iterations
    /// with candidate-list messages proportional to vertex degree.
    SubgraphIso { iterations: usize },
    /// Weakly connected components (min-label propagation): shrinking
    /// per-round activity. An extension beyond the paper's three workloads.
    ConnectedComponents,
}

impl Algorithm {
    /// Default PageRank: 10 iterations, 0.85 damping (the paper's default
    /// training horizon uses 10 steps as well).
    pub fn pagerank() -> Self {
        Algorithm::PageRank { iterations: 10, damping: 0.85 }
    }

    /// Default SSSP from the highest-out-degree vertex.
    pub fn sssp(geo: &GeoGraph) -> Self {
        Algorithm::Sssp { source: crate::algorithms::sssp::default_source(&geo.graph) }
    }

    /// Default subgraph isomorphism: 3 pruning rounds.
    pub fn subgraph_iso() -> Self {
        Algorithm::SubgraphIso { iterations: 3 }
    }

    /// Weakly connected components.
    pub fn wcc() -> Self {
        Algorithm::ConnectedComponents
    }

    /// The paper's shorthand for the algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::PageRank { .. } => "PR",
            Algorithm::Sssp { .. } => "SSSP",
            Algorithm::SubgraphIso { .. } => "SI",
            Algorithm::ConnectedComponents => "WCC",
        }
    }

    /// Expected per-vertex per-iteration message sizes — what the offline
    /// partitioner optimizes against (it cannot know exact runtime
    /// activity; see `geopart::TrafficProfile`).
    pub fn profile(&self, geo: &GeoGraph) -> TrafficProfile {
        let n = geo.num_vertices();
        match self {
            Algorithm::PageRank { .. } => TrafficProfile::uniform(n, VALUE_BYTES),
            // SSSP: every vertex changes roughly once over the whole run,
            // so with `expected_iterations() = 1` a uniform per-run profile
            // is the right expectation.
            Algorithm::Sssp { .. } => TrafficProfile::uniform(n, VALUE_BYTES),
            // SI: candidate lists scale with degree (capped — systems chunk
            // huge candidate sets).
            Algorithm::SubgraphIso { .. } => {
                let weights: Vec<f32> = (0..n as VertexId)
                    .map(|v| (geo.graph.degree(v).min(64) as f32).max(1.0))
                    .collect();
                TrafficProfile::weighted(&weights, VALUE_BYTES)
            }
            // WCC: labels settle within a few rounds; expect roughly two
            // value syncs per vertex over the run.
            Algorithm::ConnectedComponents => TrafficProfile::uniform(n, VALUE_BYTES),
        }
    }

    /// Number of iterations the partitioner's cost model charges for
    /// (Eq 7 sums runtime cost over iterations).
    pub fn expected_iterations(&self) -> f64 {
        match self {
            Algorithm::PageRank { iterations, .. } => *iterations as f64,
            Algorithm::Sssp { .. } => 1.0,
            Algorithm::SubgraphIso { iterations } => *iterations as f64,
            Algorithm::ConnectedComponents => 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::erdos_renyi;
    use geograph::locality::LocalityConfig;

    fn geo() -> GeoGraph {
        GeoGraph::from_graph(erdos_renyi(100, 500, 1), &LocalityConfig::uniform(4, 1))
    }

    #[test]
    fn names() {
        let g = geo();
        assert_eq!(Algorithm::pagerank().name(), "PR");
        assert_eq!(Algorithm::sssp(&g).name(), "SSSP");
        assert_eq!(Algorithm::subgraph_iso().name(), "SI");
    }

    #[test]
    fn profiles_cover_all_vertices() {
        let g = geo();
        for algo in [Algorithm::pagerank(), Algorithm::sssp(&g), Algorithm::subgraph_iso()] {
            assert_eq!(algo.profile(&g).len(), g.num_vertices());
        }
    }

    #[test]
    fn si_profile_scales_with_degree() {
        let g = geo();
        let p = Algorithm::subgraph_iso().profile(&g);
        let (mut lo, mut hi) = (None, None);
        for v in 0..g.num_vertices() as VertexId {
            match g.graph.degree(v) {
                0 | 1 => lo = lo.or(Some(v)),
                d if d >= 8 => hi = hi.or(Some(v)),
                _ => {}
            }
        }
        if let (Some(lo), Some(hi)) = (lo, hi) {
            assert!(p.g(hi) > p.g(lo));
        }
    }

    #[test]
    fn expected_iterations() {
        let g = geo();
        assert_eq!(Algorithm::pagerank().expected_iterations(), 10.0);
        assert_eq!(Algorithm::sssp(&g).expected_iterations(), 1.0);
        assert_eq!(Algorithm::subgraph_iso().expected_iterations(), 3.0);
    }
}
