//! # geoengine — differentiated geo-distributed graph analytics engine
//!
//! Implements the execution substrate the paper measures partitioners with:
//! the PowerLyra differentiated computation model (§III-B) over the three
//! evaluation algorithms (§VI-A.2):
//!
//! * **PageRank** — all vertices active every iteration;
//! * **SSSP** — frontier-driven activation (label-correcting, unit weights);
//! * **Subgraph Isomorphism** — pattern matching with candidate-list
//!   messages proportional to vertex degree (we compute directed-triangle
//!   counts as the concrete pattern).
//!
//! The engine runs the algorithm on the *logical* graph (so results are
//! verifiable) while attributing every inter-DC message to the DCs the
//! partitioning plan places masters, mirrors and edges in:
//!
//! * high-degree vertices follow GAS — mirrors send one aggregated
//!   `g_v`-byte message per gather, masters send `a_v` bytes per mirror in
//!   apply;
//! * low-degree vertices compute locally at their master (all in-edges are
//!   co-located by construction) and only pay apply-stage synchronization.
//!
//! The per-iteration [`geosim::StageLoads`] feed Eq 1–3 for time and Eq 5
//! for cost, producing an [`ExecutionReport`].

pub mod algorithm;
pub mod algorithms;
pub mod runner;

pub use algorithm::Algorithm;
pub use runner::{
    execute_edgecut, execute_plan, execute_plan_under_faults, ExecutionReport,
    FaultedExecutionReport,
};
