//! Executes an algorithm over a partitioning plan, attributing every
//! inter-DC message to the DCs the plan chose.

use geograph::{DcId, GeoGraph, VertexId};
use geopart::state::PlacementState;
use geopart::EdgeCutState;
use geosim::faults::FaultSchedule;
use geosim::{CloudEnv, PairLoads, StageLoads};

use crate::algorithm::Algorithm;
use crate::algorithms::{bfs_levels, pagerank, triangle_count, wcc};

/// The computed result of the analytics job (verifiable against a
/// single-machine reference — same code path, so trivially equal here, but
/// exposed so tests can check plan-independence).
#[derive(Clone, Debug, PartialEq)]
pub enum AlgoOutput {
    Ranks(Vec<f64>),
    Distances(Vec<u32>),
    Triangles(u64),
    ComponentLabels(Vec<geograph::VertexId>),
}

/// What one execution cost: the paper's runtime metrics (Eq 1 summed over
/// iterations, Eq 5 summed, WAN bytes) plus the algorithm output.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    pub iterations: usize,
    /// Σ_i T(i): total inter-DC transfer time, seconds.
    pub transfer_time: f64,
    /// Σ_i C_rt(i): runtime upload cost, dollars.
    pub runtime_cost: f64,
    /// Total bytes uploaded to the WAN.
    pub wan_bytes: f64,
    /// T(i) per iteration.
    pub per_iteration_time: Vec<f64>,
    pub output: AlgoOutput,
}

/// Per-round activation sets: `senders[r]` updated their value in round
/// `r-1` (drive gather traffic), `changed[r]` updated in round `r` (drive
/// apply traffic).
struct Rounds {
    senders: Vec<Vec<VertexId>>,
    changed: Vec<Vec<VertexId>>,
    output: AlgoOutput,
}

fn plan_rounds(geo: &GeoGraph, algo: &Algorithm) -> Rounds {
    let all: Vec<VertexId> = (0..geo.num_vertices() as VertexId).collect();
    match algo {
        Algorithm::PageRank { iterations, damping } => {
            let ranks = pagerank(&geo.graph, *iterations, *damping);
            Rounds {
                senders: vec![all.clone(); *iterations],
                changed: vec![all; *iterations],
                output: AlgoOutput::Ranks(ranks),
            }
        }
        Algorithm::Sssp { source } => {
            let bfs = bfs_levels(&geo.graph, *source);
            let rounds = bfs.frontiers.len();
            // Round r: the previous frontier's new distances propagate
            // (gather), this round's frontier settles and syncs (apply).
            let mut senders = Vec::with_capacity(rounds);
            let mut changed = Vec::with_capacity(rounds);
            for r in 0..rounds {
                senders.push(if r == 0 { Vec::new() } else { bfs.frontiers[r - 1].clone() });
                changed.push(bfs.frontiers[r].clone());
            }
            Rounds { senders, changed, output: AlgoOutput::Distances(bfs.distances) }
        }
        Algorithm::SubgraphIso { iterations } => {
            let triangles = triangle_count(&geo.graph);
            Rounds {
                senders: vec![all.clone(); *iterations],
                changed: vec![all; *iterations],
                output: AlgoOutput::Triangles(triangles),
            }
        }
        Algorithm::ConnectedComponents => {
            let result = wcc(&geo.graph);
            let rounds = result.changed_per_round.len();
            let mut senders = Vec::with_capacity(rounds);
            let mut changed = Vec::with_capacity(rounds);
            for r in 0..rounds {
                senders.push(if r == 0 {
                    Vec::new()
                } else {
                    result.changed_per_round[r - 1].clone()
                });
                changed.push(result.changed_per_round[r].clone());
            }
            Rounds { senders, changed, output: AlgoOutput::ComponentLabels(result.labels) }
        }
    }
}

/// Per-round traffic accumulator for replica-based plans, shared by the
/// fixed-environment and fault-injected executors. Holds the reusable
/// scratch (sender flags, receiver stamps, DC dedup) across rounds.
struct ReplicaTraffic<'a> {
    geo: &'a GeoGraph,
    plan: &'a PlacementState,
    in_edge_dcs: Option<&'a [DcId]>,
    profile: geopart::TrafficProfile,
    gather: StageLoads,
    apply: StageLoads,
    /// Per-directed-pair byte matrices, tracked only by the fault-injected
    /// executor (a `PairDegrade` cannot be priced from per-DC rows alone).
    pair_loads: Option<(PairLoads, PairLoads)>,
    is_sender: Vec<bool>,
    receiver_stamp: Vec<u32>,
    dc_seen: Vec<bool>,
}

impl<'a> ReplicaTraffic<'a> {
    fn new(
        geo: &'a GeoGraph,
        plan: &'a PlacementState,
        in_edge_dcs: Option<&'a [DcId]>,
        profile: geopart::TrafficProfile,
        num_dcs: usize,
        track_pairs: bool,
    ) -> Self {
        let n = geo.num_vertices();
        ReplicaTraffic {
            geo,
            plan,
            in_edge_dcs,
            profile,
            gather: StageLoads::new(num_dcs),
            apply: StageLoads::new(num_dcs),
            pair_loads: track_pairs.then(|| (PairLoads::new(num_dcs), PairLoads::new(num_dcs))),
            is_sender: vec![false; n],
            receiver_stamp: vec![u32::MAX; n],
            dc_seen: vec![false; num_dcs],
        }
    }

    /// Accumulates one round's gather/apply loads into `self.gather` /
    /// `self.apply` and returns them.
    fn round(
        &mut self,
        round: usize,
        senders: &[VertexId],
        changed: &[VertexId],
    ) -> (&StageLoads, &StageLoads) {
        let plan = self.plan;
        let geo = self.geo;
        self.gather.clear();
        self.apply.clear();
        if let Some((gp, ap)) = self.pair_loads.as_mut() {
            gp.clear();
            ap.clear();
        }
        for &u in senders {
            self.is_sender[u as usize] = true;
        }
        // Gather: every high-degree vertex with an updated in-neighbor
        // receives one aggregated message per remote DC holding such
        // in-edges.
        let round_stamp = round as u32;
        for &u in senders {
            for &v in geo.graph.out_neighbors(u) {
                if !plan.is_high(v) || self.receiver_stamp[v as usize] == round_stamp {
                    continue;
                }
                self.receiver_stamp[v as usize] = round_stamp;
                let master = plan.master(v);
                let g = self.profile.g(v);
                let base = geo.graph.in_edge_offset(v);
                for (k, &src) in geo.graph.in_neighbors(v).iter().enumerate() {
                    if !self.is_sender[src as usize] {
                        continue;
                    }
                    let d = match self.in_edge_dcs {
                        Some(dcs) => dcs[base + k],
                        None => plan.master(src), // hybrid rule for high-degree v
                    };
                    if d != master && !self.dc_seen[d as usize] {
                        self.dc_seen[d as usize] = true;
                        self.gather.add_transfer(d, master, g);
                        if let Some((gp, _)) = self.pair_loads.as_mut() {
                            gp.add_transfer(d, master, g);
                        }
                    }
                }
                self.dc_seen.iter_mut().for_each(|s| *s = false);
            }
        }
        // Apply: every changed vertex syncs its mirrors.
        for &v in changed {
            let master = plan.master(v);
            let a = self.profile.a(v);
            let mut mask = plan.mirror_mask(v);
            while mask != 0 {
                let d = mask.trailing_zeros() as DcId;
                mask &= mask - 1;
                self.apply.add_transfer(master, d, a);
                if let Some((_, ap)) = self.pair_loads.as_mut() {
                    ap.add_transfer(master, d, a);
                }
            }
        }
        for &u in senders {
            self.is_sender[u as usize] = false;
        }
        (&self.gather, &self.apply)
    }
}

/// Executes `algo` over a replica-based plan (hybrid-cut or vertex-cut).
///
/// `in_edge_dcs`: per-in-edge DC assignment aligned with the in-CSR layout
/// (see [`geopart::vertexcut::VertexCutState::in_edge_dcs`]); `None` means
/// the hybrid-cut placement rule is derived from the plan's masters.
pub fn execute_plan(
    geo: &GeoGraph,
    env: &CloudEnv,
    plan: &PlacementState,
    in_edge_dcs: Option<&[DcId]>,
    algo: &Algorithm,
) -> ExecutionReport {
    assert_eq!(plan.num_vertices(), geo.num_vertices());
    let rounds = plan_rounds(geo, algo);
    let mut traffic =
        ReplicaTraffic::new(geo, plan, in_edge_dcs, algo.profile(geo), env.num_dcs(), false);

    let mut per_iteration_time = Vec::with_capacity(rounds.senders.len());
    let (mut total_time, mut total_cost, mut total_bytes) = (0.0, 0.0, 0.0);

    for (round, (senders, changed)) in rounds.senders.iter().zip(&rounds.changed).enumerate() {
        let (gather, apply) = traffic.round(round, senders, changed);
        let t = gather.transfer_time(env) + apply.transfer_time(env);
        per_iteration_time.push(t);
        total_time += t;
        total_cost += gather.upload_cost(env) + apply.upload_cost(env);
        total_bytes += gather.total_up() + apply.total_up();
    }

    ExecutionReport {
        iterations: per_iteration_time.len(),
        transfer_time: total_time,
        runtime_cost: total_cost,
        wan_bytes: total_bytes,
        per_iteration_time,
        output: rounds.output,
    }
}

/// Outcome of executing a plan while a fault schedule is active.
#[derive(Clone, Debug)]
pub struct FaultedExecutionReport {
    /// Metrics for the rounds that actually ran (all of them if the job
    /// completed; a prefix if it aborted).
    pub report: ExecutionReport,
    /// `Some((round, dc))` if the job aborted because `dc` — which hosts
    /// replicas of this plan — went dark at `round`. The caller is expected
    /// to evacuate the plan off the dead DC and re-run.
    pub aborted_at: Option<(usize, DcId)>,
    /// Rounds that ran under a degraded environment (bandwidth or price
    /// multipliers active), inflating Eq 1 / Eq 5 versus the base env.
    pub degraded_rounds: usize,
}

/// Executes `algo` over a replica-based plan while `schedule` injects
/// faults, one schedule step per analytics round starting at `start_step`.
///
/// Degraded links re-price each round's transfer time (Eq 1) and upload
/// cost (Eq 5) under the round's [`FaultSchedule::view_at`] environment. A
/// DC outage aborts the job at the first round where a dark DC hosts any
/// master or mirror of the plan — partial metrics for the completed prefix
/// are returned so recovery experiments can measure wasted work.
pub fn execute_plan_under_faults(
    geo: &GeoGraph,
    base_env: &CloudEnv,
    plan: &PlacementState,
    in_edge_dcs: Option<&[DcId]>,
    algo: &Algorithm,
    schedule: &FaultSchedule,
    start_step: u64,
) -> FaultedExecutionReport {
    assert_eq!(plan.num_vertices(), geo.num_vertices());
    let rounds = plan_rounds(geo, algo);
    let m = base_env.num_dcs();
    // DCs the plan occupies — an outage elsewhere doesn't touch the job.
    let mut used = vec![false; m];
    for v in 0..geo.num_vertices() as VertexId {
        used[plan.master(v) as usize] = true;
        let mut mask = plan.mirror_mask(v);
        while mask != 0 {
            used[mask.trailing_zeros() as usize] = true;
            mask &= mask - 1;
        }
    }
    let mut traffic = ReplicaTraffic::new(geo, plan, in_edge_dcs, algo.profile(geo), m, true);

    let mut per_iteration_time = Vec::with_capacity(rounds.senders.len());
    let (mut total_time, mut total_cost, mut total_bytes) = (0.0, 0.0, 0.0);
    let mut aborted_at = None;
    let mut degraded_rounds = 0;

    for (round, (senders, changed)) in rounds.senders.iter().zip(&rounds.changed).enumerate() {
        let view = schedule.view_at(base_env, start_step + round as u64);
        if let Some(dc) = (0..m as DcId).find(|&d| view.is_dead(d) && used[d as usize]) {
            aborted_at = Some((round, dc));
            break;
        }
        let env = view.env();
        if env != base_env || view.has_pair_faults() {
            degraded_rounds += 1;
        }
        let (gather_t, apply_t, cost, bytes) = {
            let (gather, apply) = traffic.round(round, senders, changed);
            (
                gather.transfer_time(env),
                apply.transfer_time(env),
                gather.upload_cost(env) + apply.upload_cost(env),
                gather.total_up() + apply.total_up(),
            )
        };
        // A degraded directed pair bottlenecks each stage independently of
        // the per-DC Eq 2/3 rows: the stage drains when its slowest
        // constraint — DC link or degraded pair — drains.
        let t = match view.pair_mults() {
            Some(mults) => {
                let (gp, ap) = traffic.pair_loads.as_ref().expect("fault executor tracks pairs");
                gather_t.max(gp.stage_time_under(env, mults))
                    + apply_t.max(ap.stage_time_under(env, mults))
            }
            None => gather_t + apply_t,
        };
        per_iteration_time.push(t);
        total_time += t;
        total_cost += cost;
        total_bytes += bytes;
    }

    FaultedExecutionReport {
        report: ExecutionReport {
            iterations: per_iteration_time.len(),
            transfer_time: total_time,
            runtime_cost: total_cost,
            wan_bytes: total_bytes,
            per_iteration_time,
            output: rounds.output,
        },
        aborted_at,
        degraded_rounds,
    }
}

/// Executes `algo` over an edge-cut plan: one Pregel superstep of combiner
/// messages per iteration, no replica synchronization.
pub fn execute_edgecut(
    geo: &GeoGraph,
    env: &CloudEnv,
    plan: &EdgeCutState,
    algo: &Algorithm,
) -> ExecutionReport {
    let rounds = plan_rounds(geo, algo);
    let profile = algo.profile(geo);
    let m = env.num_dcs();
    let n = geo.num_vertices();
    let assignment = plan.assignment();

    let mut loads = StageLoads::new(m);
    let mut is_sender = vec![false; n];
    let mut receiver_stamp = vec![u32::MAX; n];
    let mut dc_seen = vec![false; m];

    let mut per_iteration_time = Vec::with_capacity(rounds.senders.len());
    let (mut total_time, mut total_cost, mut total_bytes) = (0.0, 0.0, 0.0);

    for (round, senders) in rounds.senders.iter().enumerate() {
        loads.clear();
        for &u in senders {
            is_sender[u as usize] = true;
        }
        let stamp = round as u32;
        for &u in senders {
            for &v in geo.graph.out_neighbors(u) {
                if receiver_stamp[v as usize] == stamp {
                    continue;
                }
                receiver_stamp[v as usize] = stamp;
                let home = assignment[v as usize];
                let g = profile.g(v);
                for &src in geo.graph.in_neighbors(v) {
                    if !is_sender[src as usize] {
                        continue;
                    }
                    let d = assignment[src as usize];
                    if d != home && !dc_seen[d as usize] {
                        dc_seen[d as usize] = true;
                        loads.add_transfer(d, home, g);
                    }
                }
                dc_seen.iter_mut().for_each(|s| *s = false);
            }
        }
        for &u in senders {
            is_sender[u as usize] = false;
        }
        let t = loads.transfer_time(env);
        per_iteration_time.push(t);
        total_time += t;
        total_cost += loads.upload_cost(env);
        total_bytes += loads.total_up();
    }

    ExecutionReport {
        iterations: per_iteration_time.len(),
        transfer_time: total_time,
        runtime_cost: total_cost,
        wan_bytes: total_bytes,
        per_iteration_time,
        output: rounds.output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geograph::generators::{rmat, RmatConfig};
    use geograph::locality::LocalityConfig;
    use geopart::{HybridState, TrafficProfile};
    use geosim::regions::ec2_eight_regions;

    fn setup() -> (GeoGraph, CloudEnv) {
        let g = rmat(&RmatConfig::social(512, 4096), 33);
        let geo = GeoGraph::from_graph(g, &LocalityConfig::paper_default(33));
        (geo, ec2_eight_regions())
    }

    fn hybrid<'g>(geo: &'g GeoGraph, env: &CloudEnv, algo: &Algorithm) -> HybridState<'g> {
        let theta = geograph::degree::suggest_theta(&geo.graph, 0.05);
        HybridState::natural(geo, env, theta, algo.profile(geo), algo.expected_iterations())
    }

    #[test]
    fn pagerank_traffic_matches_static_plan_loads() {
        // With every vertex active every round, the engine's per-round
        // traffic must equal the plan's static Eq 1 loads exactly.
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let plan = hybrid(&geo, &env, &algo);
        let report = execute_plan(&geo, &env, plan.core(), None, &algo);
        let static_time = plan.objective(&env).transfer_time;
        for (i, &t) in report.per_iteration_time.iter().enumerate() {
            assert!(
                (t - static_time).abs() < 1e-9 * static_time.max(1e-12),
                "round {i}: engine {t} vs static {static_time}"
            );
        }
        assert_eq!(report.iterations, 10);
        let static_cost = plan.objective(&env).runtime_cost;
        assert!((report.runtime_cost - static_cost).abs() < 1e-9 * static_cost.max(1e-12));
    }

    #[test]
    fn algorithm_output_is_plan_independent() {
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let natural = hybrid(&geo, &env, &algo);
        let centralized = HybridState::from_masters(
            &geo,
            &env,
            vec![0; geo.num_vertices()],
            natural.theta(),
            algo.profile(&geo),
            algo.expected_iterations(),
        );
        let r1 = execute_plan(&geo, &env, natural.core(), None, &algo);
        let r2 = execute_plan(&geo, &env, centralized.core(), None, &algo);
        assert_eq!(r1.output, r2.output);
        // But the centralized plan moves no runtime data.
        assert_eq!(r2.transfer_time, 0.0);
        assert!(r1.transfer_time > 0.0);
    }

    #[test]
    fn sssp_cheaper_than_pagerank() {
        // Frontier activation touches each vertex once; PR touches all ten
        // times. Same plan, same message size.
        let (geo, env) = setup();
        let pr = Algorithm::pagerank();
        let sssp = Algorithm::sssp(&geo);
        let plan = hybrid(&geo, &env, &pr);
        let r_pr = execute_plan(&geo, &env, plan.core(), None, &pr);
        let r_sssp = execute_plan(&geo, &env, plan.core(), None, &sssp);
        assert!(r_sssp.wan_bytes < r_pr.wan_bytes);
        let AlgoOutput::Distances(d) = &r_sssp.output else { panic!() };
        assert!(d.iter().any(|&x| x != crate::algorithms::sssp::UNREACHABLE));
    }

    #[test]
    fn si_reports_triangles() {
        let (geo, env) = setup();
        let algo = Algorithm::subgraph_iso();
        let plan = hybrid(&geo, &env, &algo);
        let report = execute_plan(&geo, &env, plan.core(), None, &algo);
        assert_eq!(report.iterations, 3);
        let AlgoOutput::Triangles(t) = report.output else { panic!() };
        assert_eq!(t, triangle_count(&geo.graph));
    }

    #[test]
    fn quiet_schedule_execution_matches_plain() {
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let plan = hybrid(&geo, &env, &algo);
        let schedule = FaultSchedule::quiet(env.num_dcs(), 64);
        let faulted = execute_plan_under_faults(&geo, &env, plan.core(), None, &algo, &schedule, 0);
        let plain = execute_plan(&geo, &env, plan.core(), None, &algo);
        assert!(faulted.aborted_at.is_none());
        assert_eq!(faulted.degraded_rounds, 0);
        assert_eq!(faulted.report.per_iteration_time, plain.per_iteration_time);
        assert_eq!(faulted.report.wan_bytes, plain.wan_bytes);
    }

    #[test]
    fn degraded_link_inflates_transfer_time() {
        use geosim::faults::{FaultEvent, FaultKind};
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let plan = hybrid(&geo, &env, &algo);
        // Halve DC 0's bandwidth from round 4 onward.
        let schedule = FaultSchedule::from_events(
            env.num_dcs(),
            64,
            vec![FaultEvent { step: 4, dc: 0, kind: FaultKind::LinkDegrade { factor: 0.5 } }],
        );
        let faulted = execute_plan_under_faults(&geo, &env, plan.core(), None, &algo, &schedule, 0);
        let plain = execute_plan(&geo, &env, plan.core(), None, &algo);
        assert!(faulted.aborted_at.is_none());
        assert_eq!(faulted.degraded_rounds, 6, "rounds 4..10 run degraded");
        assert_eq!(faulted.report.per_iteration_time[3], plain.per_iteration_time[3]);
        assert!(
            faulted.report.per_iteration_time[4] > plain.per_iteration_time[4],
            "halved bandwidth must inflate Eq 1"
        );
    }

    #[test]
    fn pair_degrade_inflates_only_rounds_crossing_that_path() {
        use geosim::faults::{FaultEvent, FaultKind};
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let plan = hybrid(&geo, &env, &algo);
        // Find a directed pair the plan actually uses: some mirror of
        // vertex 0's master. Fall back to scanning vertices if 0 has none.
        let (src, dst) = (0..geo.num_vertices() as geograph::VertexId)
            .find_map(|v| {
                let m = plan.core().mirror_mask(v);
                (m != 0).then(|| (plan.core().master(v), m.trailing_zeros() as DcId))
            })
            .expect("plan should replicate something");
        let schedule = FaultSchedule::from_events(
            env.num_dcs(),
            64,
            vec![FaultEvent {
                step: 4,
                dc: src,
                kind: FaultKind::PairDegrade { dst, factor: 0.05 },
            }],
        );
        let faulted = execute_plan_under_faults(&geo, &env, plan.core(), None, &algo, &schedule, 0);
        let plain = execute_plan(&geo, &env, plan.core(), None, &algo);
        assert!(faulted.aborted_at.is_none());
        assert_eq!(faulted.degraded_rounds, 6, "rounds 4..10 run pair-degraded");
        assert_eq!(faulted.report.per_iteration_time[3], plain.per_iteration_time[3]);
        assert!(
            faulted.report.per_iteration_time[4] >= plain.per_iteration_time[4],
            "a degraded pair never speeds a round up"
        );
        assert!(
            faulted.report.per_iteration_time[4] > plain.per_iteration_time[4],
            "the apply stage syncs {src}→{dst} mirrors, so a 20× slower \
             pair must dominate the stage"
        );
        // Costs are unchanged: a slow path re-prices time, not Eq 5 uploads.
        assert_eq!(faulted.report.wan_bytes, plain.wan_bytes);
    }

    #[test]
    fn pair_degrade_is_deterministic_across_runs() {
        use geosim::faults::{FaultEvent, FaultKind};
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let plan = hybrid(&geo, &env, &algo);
        let schedule = FaultSchedule::from_events(
            env.num_dcs(),
            64,
            vec![FaultEvent {
                step: 2,
                dc: 0,
                kind: FaultKind::PairDegrade { dst: 1, factor: 0.3 },
            }],
        );
        let a = execute_plan_under_faults(&geo, &env, plan.core(), None, &algo, &schedule, 0);
        let b = execute_plan_under_faults(&geo, &env, plan.core(), None, &algo, &schedule, 0);
        let ta: Vec<u64> = a.report.per_iteration_time.iter().map(|t| t.to_bits()).collect();
        let tb: Vec<u64> = b.report.per_iteration_time.iter().map(|t| t.to_bits()).collect();
        assert_eq!(ta, tb, "pair-degraded execution must be bit-deterministic");
    }

    #[test]
    fn outage_of_hosting_dc_aborts_the_round() {
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let plan = hybrid(&geo, &env, &algo);
        let victim = plan.core().master(0);
        let schedule = FaultSchedule::single_outage(env.num_dcs(), 64, victim, 5);
        let faulted = execute_plan_under_faults(&geo, &env, plan.core(), None, &algo, &schedule, 0);
        assert_eq!(faulted.aborted_at, Some((5, victim)));
        assert_eq!(faulted.report.iterations, 5, "only the pre-outage prefix ran");
    }

    #[test]
    fn outage_of_unused_dc_is_harmless() {
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        // Centralize everything on DC 0, then kill DC 7.
        let plan = HybridState::from_masters(
            &geo,
            &env,
            vec![0; geo.num_vertices()],
            50,
            algo.profile(&geo),
            algo.expected_iterations(),
        );
        let schedule = FaultSchedule::single_outage(env.num_dcs(), 64, 7, 2);
        let faulted = execute_plan_under_faults(&geo, &env, plan.core(), None, &algo, &schedule, 0);
        assert!(faulted.aborted_at.is_none(), "the job never touches DC 7");
        assert_eq!(faulted.report.iterations, 10);
    }

    #[test]
    fn edgecut_pagerank_matches_static_loads() {
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let profile = algo.profile(&geo);
        let plan = EdgeCutState::from_assignment(&geo, &env, geo.locations.clone(), &profile, 10.0);
        let report = execute_edgecut(&geo, &env, &plan, &algo);
        let static_time = plan.objective(&env).transfer_time;
        assert!((report.per_iteration_time[0] - static_time).abs() < 1e-9 * static_time.max(1e-12));
    }

    #[test]
    fn vertexcut_uses_explicit_edge_placement() {
        use geopart::vertexcut::{MasterRule, VertexCutState};
        let (geo, env) = setup();
        let algo = Algorithm::pagerank();
        let profile = algo.profile(&geo);
        let edge_dcs: Vec<DcId> =
            (0..geo.num_edges()).map(|i| (geograph::fxhash::mix64(i as u64) % 8) as DcId).collect();
        let plan = VertexCutState::from_edge_assignment(
            &geo,
            &env,
            &edge_dcs,
            geopart::vertexcut::MasterRule::PreferNatural,
            profile.clone(),
            10.0,
        );
        let in_dcs = plan.in_edge_dcs(&geo);
        let report = execute_plan(&geo, &env, plan.core(), Some(&in_dcs), &algo);
        // All vertices are "high" under vertex-cut, everything active:
        // engine traffic equals the static plan loads.
        let static_time = plan.objective(&env).transfer_time;
        assert!(
            (report.per_iteration_time[0] - static_time).abs() < 1e-9 * static_time.max(1e-12),
            "engine {} vs static {}",
            report.per_iteration_time[0],
            static_time
        );
        let _ = MasterRule::HeaviestReplica; // silence unused import path
        let _ = TrafficProfile::uniform(1, 1.0);
    }
}
