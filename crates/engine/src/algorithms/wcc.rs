//! Weakly connected components via min-label propagation — a fourth
//! workload beyond the paper's three, with naturally *shrinking* per-round
//! activity (the mirror image of SSSP's expanding frontiers).

use geograph::Graph;
use geograph::VertexId;

/// Result of a WCC execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WccResult {
    /// Component label per vertex (the smallest vertex id in the
    /// component).
    pub labels: Vec<VertexId>,
    /// Vertices whose label changed in each round (round 0 = everyone
    /// initializing).
    pub changed_per_round: Vec<Vec<VertexId>>,
}

/// Min-label propagation over the undirected view of the graph.
pub fn wcc(graph: &Graph) -> WccResult {
    let n = graph.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    let mut changed_per_round = vec![(0..n as VertexId).collect::<Vec<_>>()];
    loop {
        let mut changed = Vec::new();
        for v in 0..n as VertexId {
            let mut best = labels[v as usize];
            for &u in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                best = best.min(labels[u as usize]);
            }
            if best < labels[v as usize] {
                labels[v as usize] = best;
                changed.push(v);
            }
        }
        if changed.is_empty() {
            break;
        }
        changed_per_round.push(changed);
    }
    WccResult { labels, changed_per_round }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let r = wcc(&g);
        assert_eq!(r.labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn direction_ignored() {
        let g = Graph::from_edges(3, &[(2, 1), (1, 0)]);
        let r = wcc(&g);
        assert!(r.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn matches_transform_wcc_up_to_relabeling() {
        let g = geograph::generators::erdos_renyi(200, 300, 5);
        let ours = wcc(&g).labels;
        let reference = geograph::transform::weakly_connected_components(&g);
        // Same partition of vertices: equal labels iff equal reference labels.
        for i in 0..200 {
            for j in (i + 1)..200 {
                assert_eq!(
                    ours[i] == ours[j],
                    reference[i] == reference[j],
                    "vertices {i},{j} disagree"
                );
            }
        }
    }

    #[test]
    fn activity_shrinks_over_rounds() {
        let g = geograph::generators::preferential_attachment(500, 3, 2);
        let r = wcc(&g);
        assert!(r.changed_per_round.len() >= 2);
        let first = r.changed_per_round[0].len();
        let last = r.changed_per_round.last().unwrap().len();
        assert!(last < first, "activity should shrink: {first} -> {last}");
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(wcc(&g).labels[2], 2);
    }
}
